"""Per-iteration operator graph construction for decoder LLM inference.

The simulator works at iteration granularity: each serving iteration runs the
whole model once over the current batch (prompts of requests in the
initiation phase plus one new token per request in the generation phase).
This module lowers a batch composition into the operator list of a *single*
transformer block, plus the embedding and LM-head operators.  Because every
transformer block of a decoder LLM has identical structure, downstream code
replicates the single-block description across ``num_layers`` blocks — this
is exactly the "model redundancy reuse" optimization of Section IV-C.

Selective batching (Orca) is reflected in the structure of the produced
operators: QKV generation, feed-forward and normalization operators are
batched over all tokens in the iteration, while attention operators (Score,
Softmax, Attend) are emitted per request, since their shapes depend on each
request's context length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from .architectures import ModelConfig
from .layers import Operator, OpType, Phase, gemm_flops, gemv_flops

__all__ = ["SequenceSpec", "BatchComposition", "IterationGraph", "build_iteration_graph"]


@dataclass(frozen=True)
class SequenceSpec:
    """One request's contribution to an iteration.

    Attributes
    ----------
    request_id:
        Identifier of the request.
    context_length:
        Number of tokens already present in the KV cache *before* this
        iteration (zero for a request entering its initiation phase).
    new_tokens:
        Tokens processed this iteration: the full prompt length during
        initiation, or 1 during generation.
    phase:
        The phase the request is in for this iteration.
    """

    request_id: int
    context_length: int
    new_tokens: int
    phase: Phase

    def __post_init__(self) -> None:
        if self.new_tokens <= 0:
            raise ValueError("new_tokens must be positive")
        if self.context_length < 0:
            raise ValueError("context_length must be non-negative")

    @property
    def total_context(self) -> int:
        """Tokens visible to attention after this iteration's tokens join."""
        return self.context_length + self.new_tokens


@dataclass(frozen=True)
class BatchComposition:
    """The set of sequences processed together in one iteration."""

    sequences: Sequence[SequenceSpec]

    def __post_init__(self) -> None:
        if not self.sequences:
            raise ValueError("a batch must contain at least one sequence")

    @property
    def total_new_tokens(self) -> int:
        """Total tokens flowing through the batched (non-attention) operators."""
        return sum(s.new_tokens for s in self.sequences)

    @property
    def num_sequences(self) -> int:
        return len(self.sequences)

    @property
    def initiation_sequences(self) -> List[SequenceSpec]:
        return [s for s in self.sequences if s.phase is Phase.INITIATION]

    @property
    def generation_sequences(self) -> List[SequenceSpec]:
        return [s for s in self.sequences if s.phase is Phase.GENERATION]

    @property
    def dominant_phase(self) -> Phase:
        """Phase contributing the majority of this iteration's new tokens."""
        init_tokens = sum(s.new_tokens for s in self.initiation_sequences)
        gen_tokens = sum(s.new_tokens for s in self.generation_sequences)
        return Phase.INITIATION if init_tokens >= gen_tokens else Phase.GENERATION


@dataclass
class IterationGraph:
    """Operator description of one serving iteration.

    ``block_operators`` describes a single representative transformer block;
    the full model repeats it ``num_blocks`` times.  ``embedding_operators``
    and ``head_operators`` run once, before and after the blocks.
    """

    model: ModelConfig
    batch: BatchComposition
    embedding_operators: List[Operator] = field(default_factory=list)
    block_operators: List[Operator] = field(default_factory=list)
    head_operators: List[Operator] = field(default_factory=list)

    @property
    def num_blocks(self) -> int:
        return self.model.num_layers

    @property
    def attention_operators(self) -> List[Operator]:
        """Attention operators of the representative block."""
        return [op for op in self.block_operators if op.is_attention]

    @property
    def non_attention_operators(self) -> List[Operator]:
        """Non-attention operators of the representative block."""
        return [op for op in self.block_operators if not op.is_attention]

    def operators_for_block(self, block_index: int) -> List[Operator]:
        """Materialize the operator list of a specific block by replication."""
        from dataclasses import replace

        prefix = f"block{block_index}."
        result = []
        for op in self.block_operators:
            base_name = op.name.split(".", 1)[1] if "." in op.name else op.name
            result.append(replace(op, name=prefix + base_name, block_index=block_index))
        return result

    def all_operators(self) -> List[Operator]:
        """Flatten the full model: embedding, every block, LM head."""
        ops: List[Operator] = list(self.embedding_operators)
        for block in range(self.num_blocks):
            ops.extend(self.operators_for_block(block))
        ops.extend(self.head_operators)
        return ops

    @property
    def total_flops(self) -> float:
        """Total FLOPs of the full iteration across every block."""
        block_flops = sum(op.flops for op in self.block_operators)
        other = sum(op.flops for op in self.embedding_operators + self.head_operators)
        return block_flops * self.num_blocks + other

    @property
    def total_bytes(self) -> float:
        """Total bytes moved by the full iteration across every block."""
        block_bytes = sum(op.total_bytes for op in self.block_operators)
        other = sum(op.total_bytes for op in self.embedding_operators + self.head_operators)
        return block_bytes * self.num_blocks + other


def _attention_operators(model: ModelConfig, seq: SequenceSpec) -> List[Operator]:
    """Score / Softmax / Attend operators for one request in one block."""
    d = model.hidden_size
    dtype = model.dtype_bytes
    ctx = seq.total_context
    new = seq.new_tokens
    ops: List[Operator] = []

    if seq.phase is Phase.INITIATION:
        # Prompt processing: Q (new x d) against K (ctx x d) -> GEMM.
        score_flops = gemm_flops(new, model.head_dim, ctx) * model.num_heads
        score_type = OpType.GEMM
    else:
        # Decode: a single query vector against the whole KV cache -> GEMV.
        score_flops = gemv_flops(d, ctx)
        score_type = OpType.GEMV

    q_bytes = new * d * dtype
    k_bytes = ctx * d * dtype
    v_bytes = ctx * d * dtype
    score_bytes = new * ctx * model.num_heads * dtype

    ops.append(Operator(
        name=f"block.score.r{seq.request_id}",
        op_type=score_type,
        flops=score_flops,
        input_bytes=q_bytes + k_bytes,
        weight_bytes=0.0,
        output_bytes=score_bytes,
        phase=seq.phase,
        block_index=0,
        is_attention=True,
        request_id=seq.request_id,
        m=new, k=d, n=ctx,
    ))

    softmax_elems = new * ctx * model.num_heads
    ops.append(Operator(
        name=f"block.softmax.r{seq.request_id}",
        op_type=OpType.SOFTMAX,
        flops=5.0 * softmax_elems,
        input_bytes=softmax_elems * dtype,
        weight_bytes=0.0,
        output_bytes=softmax_elems * dtype,
        phase=seq.phase,
        block_index=0,
        is_attention=True,
        request_id=seq.request_id,
        m=new, k=ctx, n=model.num_heads,
    ))

    if seq.phase is Phase.INITIATION:
        attend_flops = gemm_flops(new, ctx, model.head_dim) * model.num_heads
        attend_type = OpType.GEMM
    else:
        attend_flops = gemv_flops(ctx, d)
        attend_type = OpType.GEMV

    ops.append(Operator(
        name=f"block.attend.r{seq.request_id}",
        op_type=attend_type,
        flops=attend_flops,
        input_bytes=score_bytes + v_bytes,
        weight_bytes=0.0,
        output_bytes=new * d * dtype,
        phase=seq.phase,
        block_index=0,
        is_attention=True,
        request_id=seq.request_id,
        m=new, k=ctx, n=d,
    ))
    return ops


def build_iteration_graph(model: ModelConfig, batch: BatchComposition) -> IterationGraph:
    """Lower a batch composition into the iteration's operator graph.

    Parameters
    ----------
    model:
        The model architecture being served.
    batch:
        The composition of the iteration's batch, as decided by the
        iteration-level scheduler.

    Returns
    -------
    IterationGraph
        Operator description with a single representative transformer block.
    """
    d = model.hidden_size
    d_ff = model.ffn_hidden_size
    dtype = model.dtype_bytes
    tokens = batch.total_new_tokens
    phase = batch.dominant_phase

    graph = IterationGraph(model=model, batch=batch)

    # Embedding lookup: one row of the embedding table per new token.
    graph.embedding_operators.append(Operator(
        name="embedding",
        op_type=OpType.EMBEDDING,
        flops=float(tokens * d),
        input_bytes=float(tokens * d * dtype),
        weight_bytes=float(tokens * d * dtype),
        output_bytes=float(tokens * d * dtype),
        phase=phase,
        m=tokens, k=1, n=d,
    ))

    block_ops: List[Operator] = []

    # Pre-attention layer normalization (batched over all tokens).
    ln_elems = tokens * d
    block_ops.append(Operator(
        name="block.layernorm1",
        op_type=OpType.LAYERNORM,
        flops=8.0 * ln_elems,
        input_bytes=float(ln_elems * dtype),
        weight_bytes=float(2 * d * dtype),
        output_bytes=float(ln_elems * dtype),
        phase=phase,
        block_index=0,
        m=tokens, k=1, n=d,
    ))

    # QKV generation: batched GEMM over all tokens.
    block_ops.append(Operator(
        name="block.qkv_gen",
        op_type=OpType.GEMM if tokens > 1 else OpType.GEMV,
        flops=gemm_flops(tokens, d, 3 * d),
        input_bytes=float(tokens * d * dtype),
        weight_bytes=float(3 * d * d * dtype),
        output_bytes=float(tokens * 3 * d * dtype),
        phase=phase,
        block_index=0,
        m=tokens, k=d, n=3 * d,
    ))

    # Per-request multi-head attention (selective batching).
    for seq in batch.sequences:
        block_ops.extend(_attention_operators(model, seq))

    # Attention output projection: batched GEMM.
    block_ops.append(Operator(
        name="block.attn_out_proj",
        op_type=OpType.GEMM if tokens > 1 else OpType.GEMV,
        flops=gemm_flops(tokens, d, d),
        input_bytes=float(tokens * d * dtype),
        weight_bytes=float(d * d * dtype),
        output_bytes=float(tokens * d * dtype),
        phase=phase,
        block_index=0,
        m=tokens, k=d, n=d,
    ))

    # Post-attention layer normalization.
    block_ops.append(Operator(
        name="block.layernorm2",
        op_type=OpType.LAYERNORM,
        flops=8.0 * ln_elems,
        input_bytes=float(ln_elems * dtype),
        weight_bytes=float(2 * d * dtype),
        output_bytes=float(ln_elems * dtype),
        phase=phase,
        block_index=0,
        m=tokens, k=1, n=d,
    ))

    # Feed-forward network: up projection, activation, down projection.
    block_ops.append(Operator(
        name="block.ffn_up",
        op_type=OpType.GEMM if tokens > 1 else OpType.GEMV,
        flops=gemm_flops(tokens, d, d_ff),
        input_bytes=float(tokens * d * dtype),
        weight_bytes=float(d * d_ff * dtype),
        output_bytes=float(tokens * d_ff * dtype),
        phase=phase,
        block_index=0,
        m=tokens, k=d, n=d_ff,
    ))
    block_ops.append(Operator(
        name="block.ffn_activation",
        op_type=OpType.VECTOR,
        flops=8.0 * tokens * d_ff,
        input_bytes=float(tokens * d_ff * dtype),
        weight_bytes=0.0,
        output_bytes=float(tokens * d_ff * dtype),
        phase=phase,
        block_index=0,
        m=tokens, k=1, n=d_ff,
    ))
    block_ops.append(Operator(
        name="block.ffn_down",
        op_type=OpType.GEMM if tokens > 1 else OpType.GEMV,
        flops=gemm_flops(tokens, d_ff, d),
        input_bytes=float(tokens * d_ff * dtype),
        weight_bytes=float(d_ff * d * dtype),
        output_bytes=float(tokens * d * dtype),
        phase=phase,
        block_index=0,
        m=tokens, k=d_ff, n=d,
    ))

    graph.block_operators = block_ops

    # LM head: logits for the last token of each sequence.
    seqs = batch.num_sequences
    graph.head_operators.append(Operator(
        name="lm_head",
        op_type=OpType.GEMM if seqs > 1 else OpType.GEMV,
        flops=gemm_flops(seqs, d, model.vocab_size),
        input_bytes=float(seqs * d * dtype),
        weight_bytes=float(d * model.vocab_size * dtype),
        output_bytes=float(seqs * model.vocab_size * dtype),
        phase=phase,
        m=seqs, k=d, n=model.vocab_size,
    ))

    return graph
