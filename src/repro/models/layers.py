"""Operator-level description of decoder-based LLM layers.

Every layer of a decoder transformer is lowered into :class:`Operator`
instances that carry analytical cost metadata (floating point operations,
bytes read and written, the inference phase they belong to, and whether they
are part of the attention computation).  The execution engines
(:mod:`repro.engine`) turn these descriptions into latencies; the scheduler
and graph converter only ever look at the metadata, never at tensor values.

The operator taxonomy follows Figure 1 of the paper: embedding lookup, QKV
generation, multi-head attention (Score, Softmax, Attend, output projection),
feed-forward network, layer normalization, and the LM head.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional, Tuple

__all__ = [
    "OpType",
    "Phase",
    "Operator",
    "gemm_flops",
    "gemv_flops",
    "DTYPE_BYTES",
]

#: Bytes per element for the default (half precision) datatype used throughout
#: the simulator.  The paper's systems run FP16 inference.
DTYPE_BYTES = 2


class OpType(enum.Enum):
    """Computational class of an operator.

    The distinction that matters for the simulator is compute-bound matrix
    multiplication (``GEMM``) versus memory-bound matrix-vector work
    (``GEMV``) versus elementwise / reduction vector work, because operator
    mapping onto heterogeneous accelerators is decided on this basis
    (Section IV-B of the paper).
    """

    GEMM = "gemm"
    GEMV = "gemv"
    VECTOR = "vector"
    SOFTMAX = "softmax"
    LAYERNORM = "layernorm"
    EMBEDDING = "embedding"
    ALLREDUCE = "allreduce"
    SEND = "send"
    RECV = "recv"
    MEM_LOAD = "mem_load"
    MEM_STORE = "mem_store"


class Phase(enum.Enum):
    """Inference phase an operator belongs to.

    The initiation (prefill) phase processes the whole prompt with GEMMs,
    while the generation (decode) phase processes one new token per request
    and is dominated by GEMV attention against the KV cache.
    """

    INITIATION = "initiation"
    GENERATION = "generation"


@dataclass(frozen=True)
class Operator:
    """A single operator in an iteration's computation.

    Attributes
    ----------
    name:
        Human readable operator name, e.g. ``"block3.qkv_gen"``.
    op_type:
        Computational class used for engine mapping.
    flops:
        Floating point operations performed by the operator.
    input_bytes:
        Activation bytes read.
    weight_bytes:
        Parameter bytes read (zero for attention score/attend, which read the
        KV cache instead and account for it in ``input_bytes``).
    output_bytes:
        Activation bytes written.
    phase:
        Whether the operator belongs to the initiation or generation phase of
        the requests it processes.
    block_index:
        Index of the transformer block the operator belongs to, or ``None``
        for embedding / LM-head operators.
    is_attention:
        True for Score / Softmax / Attend operators.  Attention operators are
        the only ones whose shape changes between phases and across
        iterations, so the computation-reuse cache treats them separately.
    request_id:
        For selectively-batched attention operators, the request the operator
        belongs to; ``None`` for batched (shared) operators.
    m, k, n:
        GEMM/GEMV dimensions when applicable (``m`` rows, ``k`` reduction,
        ``n`` columns); used by the engines' tiling models.
    """

    name: str
    op_type: OpType
    flops: float
    input_bytes: float
    weight_bytes: float
    output_bytes: float
    phase: Phase
    block_index: Optional[int] = None
    is_attention: bool = False
    request_id: Optional[int] = None
    m: int = 0
    k: int = 0
    n: int = 0

    @property
    def total_bytes(self) -> float:
        """Total bytes moved (inputs + weights + outputs)."""
        return self.input_bytes + self.weight_bytes + self.output_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte moved; the x-axis of the roofline plot."""
        bytes_moved = self.total_bytes
        if bytes_moved <= 0:
            return 0.0
        return self.flops / bytes_moved

    @property
    def is_memory_bound_class(self) -> bool:
        """Whether the operator class is conventionally memory bound.

        GEMV, softmax and layer normalization have low arithmetic intensity
        and are the operators the paper maps onto PIM devices.
        """
        return self.op_type in (OpType.GEMV, OpType.SOFTMAX, OpType.LAYERNORM)

    def signature(self) -> Tuple:
        """Key identifying operators with identical hardware behaviour.

        Two operators with the same signature take the same time on the same
        engine, so the simulation cache (:mod:`repro.engine.cache`) can reuse
        results between them even across iterations.
        """
        return (
            self.op_type,
            self.phase,
            self.is_attention,
            self.m,
            self.k,
            self.n,
            round(self.flops, 3),
            round(self.total_bytes, 3),
        )

    def scaled(self, compute_factor: float, bytes_factor: Optional[float] = None) -> "Operator":
        """Return a copy with FLOPs (and optionally bytes) scaled.

        Used by the parallelism strategies: tensor parallelism divides each
        operator's work across the participating devices.
        """
        if bytes_factor is None:
            bytes_factor = compute_factor
        return replace(
            self,
            flops=self.flops * compute_factor,
            input_bytes=self.input_bytes * bytes_factor,
            weight_bytes=self.weight_bytes * bytes_factor,
            output_bytes=self.output_bytes * bytes_factor,
            m=self.m,
            k=self.k,
            n=max(1, int(round(self.n * compute_factor))) if self.n else self.n,
        )


def gemm_flops(m: int, k: int, n: int) -> float:
    """FLOPs of a dense ``m x k`` by ``k x n`` matrix multiplication."""
    return 2.0 * m * k * n


def gemv_flops(k: int, n: int) -> float:
    """FLOPs of a matrix-vector product with a ``k x n`` matrix."""
    return 2.0 * k * n
