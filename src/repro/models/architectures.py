"""Model architecture configurations for the LLM families used in the paper.

The evaluation uses GPT-3 (7B, 13B, 30B, 175B) and LLaMA (7B, 30B), all
decoder-based transformers.  A :class:`ModelConfig` captures the
hyperparameters needed to derive per-operator FLOPs and byte counts as well
as total parameter and KV-cache memory footprints, which drive the paged
memory model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from .layers import DTYPE_BYTES

__all__ = ["ModelConfig", "get_model", "register_model", "available_models"]


@dataclass(frozen=True)
class ModelConfig:
    """Hyperparameters of a decoder-based transformer.

    Attributes
    ----------
    name:
        Canonical model name, e.g. ``"gpt3-7b"``.
    num_layers:
        Number of transformer (decoder) blocks.
    hidden_size:
        Model embedding dimension (``d_model``).
    num_heads:
        Number of attention heads.
    ffn_hidden_size:
        Inner dimension of the feed-forward network.
    vocab_size:
        Vocabulary size (embedding + LM head dimension).
    max_seq_len:
        Maximum supported sequence length.
    dtype_bytes:
        Bytes per parameter / activation element.
    """

    name: str
    num_layers: int
    hidden_size: int
    num_heads: int
    ffn_hidden_size: int
    vocab_size: int = 50257
    max_seq_len: int = 2048
    dtype_bytes: int = DTYPE_BYTES

    @property
    def head_dim(self) -> int:
        """Dimension of a single attention head."""
        return self.hidden_size // self.num_heads

    @property
    def params_per_block(self) -> int:
        """Parameter count of one transformer block.

        QKV projection (3 * d^2) + output projection (d^2) + two FFN matrices
        (2 * d * d_ff) + layer-norm scales/biases (4 * d).
        """
        d = self.hidden_size
        return 4 * d * d + 2 * d * self.ffn_hidden_size + 4 * d

    @property
    def embedding_params(self) -> int:
        """Parameters of the token embedding table (shared with the LM head)."""
        return self.vocab_size * self.hidden_size

    @property
    def total_params(self) -> int:
        """Total parameter count of the model."""
        return self.num_layers * self.params_per_block + self.embedding_params

    @property
    def param_bytes(self) -> int:
        """Total parameter footprint in bytes."""
        return self.total_params * self.dtype_bytes

    def kv_bytes_per_token(self) -> int:
        """KV-cache bytes stored per token across all transformer blocks.

        One key and one value vector of ``hidden_size`` elements per block.
        """
        return 2 * self.hidden_size * self.num_layers * self.dtype_bytes

    def kv_bytes_per_token_per_block(self) -> int:
        """KV-cache bytes stored per token for a single transformer block."""
        return 2 * self.hidden_size * self.dtype_bytes

    def param_bytes_per_device(self, tensor_parallel: int, pipeline_parallel: int) -> int:
        """Approximate per-device parameter footprint under model parallelism.

        Tensor parallelism shards every block's matrices; pipeline parallelism
        assigns ``num_layers / pipeline_parallel`` blocks to each stage.  The
        embedding table lives on the first stage and is sharded by tensor
        parallelism.
        """
        if tensor_parallel < 1 or pipeline_parallel < 1:
            raise ValueError("parallel degrees must be >= 1")
        blocks_per_stage = max(1, self.num_layers // pipeline_parallel)
        block_bytes = blocks_per_stage * self.params_per_block * self.dtype_bytes
        embed_bytes = self.embedding_params * self.dtype_bytes
        return (block_bytes + embed_bytes) // tensor_parallel


_REGISTRY: Dict[str, ModelConfig] = {}


def register_model(config: ModelConfig) -> ModelConfig:
    """Add a model configuration to the global registry.

    Raises
    ------
    ValueError
        If a different configuration is already registered under the name.
    """
    existing = _REGISTRY.get(config.name)
    if existing is not None and existing != config:
        raise ValueError(f"model {config.name!r} already registered with different parameters")
    _REGISTRY[config.name] = config
    return config


def get_model(name: str) -> ModelConfig:
    """Look up a registered model configuration by (case-insensitive) name."""
    key = name.lower()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown model {name!r}; known models: {known}")
    return _REGISTRY[key]


def available_models() -> Iterable[str]:
    """Names of all registered model configurations."""
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# Built-in model zoo: the GPT-3 and LLaMA variants used in the evaluation.
# Hyperparameters follow the published GPT-3 (Brown et al., 2020) and LLaMA
# (Touvron et al., 2023) configurations.
# ---------------------------------------------------------------------------

register_model(ModelConfig("gpt2", num_layers=12, hidden_size=768, num_heads=12,
                           ffn_hidden_size=3072, vocab_size=50257, max_seq_len=1024))
register_model(ModelConfig("gpt3-7b", num_layers=32, hidden_size=4096, num_heads=32,
                           ffn_hidden_size=16384, vocab_size=50257))
register_model(ModelConfig("gpt3-13b", num_layers=40, hidden_size=5140, num_heads=40,
                           ffn_hidden_size=20560, vocab_size=50257))
register_model(ModelConfig("gpt3-30b", num_layers=48, hidden_size=7168, num_heads=56,
                           ffn_hidden_size=28672, vocab_size=50257))
register_model(ModelConfig("gpt3-175b", num_layers=96, hidden_size=12288, num_heads=96,
                           ffn_hidden_size=49152, vocab_size=50257))
register_model(ModelConfig("llama-7b", num_layers=32, hidden_size=4096, num_heads=32,
                           ffn_hidden_size=11008, vocab_size=32000))
register_model(ModelConfig("llama-13b", num_layers=40, hidden_size=5120, num_heads=40,
                           ffn_hidden_size=13824, vocab_size=32000))
register_model(ModelConfig("llama-30b", num_layers=60, hidden_size=6656, num_heads=52,
                           ffn_hidden_size=17920, vocab_size=32000))
