"""Roofline analysis of LLM inference operators (Figure 2(b) of the paper).

The roofline model bounds an operator's attainable performance by
``min(peak_flops, arithmetic_intensity * peak_bandwidth)``.  The paper uses
it to motivate heterogeneity: QKV generation and the FFN are compute bound
while attention Score/Attend and layer normalization are memory bound,
especially in the generation phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from .architectures import ModelConfig
from .graph import BatchComposition, SequenceSpec, build_iteration_graph
from .layers import Operator, Phase

__all__ = ["DevicePeaks", "RooflinePoint", "analyze_operators", "analyze_phase", "RTX3090_PEAKS"]


@dataclass(frozen=True)
class DevicePeaks:
    """Peak compute throughput and memory bandwidth of a device.

    Attributes
    ----------
    name:
        Device name used in reports.
    peak_tflops:
        Peak dense throughput in TFLOPS for the serving datatype.
    peak_bandwidth_gbs:
        Peak DRAM bandwidth in GB/s.
    """

    name: str
    peak_tflops: float
    peak_bandwidth_gbs: float

    @property
    def ridge_point(self) -> float:
        """Arithmetic intensity (FLOP/byte) where compute and memory bounds meet."""
        return (self.peak_tflops * 1e12) / (self.peak_bandwidth_gbs * 1e9)

    def attainable_tflops(self, arithmetic_intensity: float) -> float:
        """Roofline-attainable performance at a given arithmetic intensity."""
        memory_bound = arithmetic_intensity * self.peak_bandwidth_gbs * 1e9 / 1e12
        return min(self.peak_tflops, memory_bound)


#: NVIDIA RTX 3090 peaks (FP16 tensor-core throughput, GDDR6X bandwidth), the
#: device used for the paper's roofline analysis.
RTX3090_PEAKS = DevicePeaks(name="rtx-3090", peak_tflops=142.0, peak_bandwidth_gbs=936.0)


@dataclass(frozen=True)
class RooflinePoint:
    """One operator's position on the roofline plot."""

    operator: str
    phase: str
    arithmetic_intensity: float
    attainable_tflops: float
    compute_bound: bool


def analyze_operators(operators: Iterable[Operator], device: DevicePeaks = RTX3090_PEAKS) -> List[RooflinePoint]:
    """Place each operator on the device's roofline.

    Operators with arithmetic intensity above the device ridge point are
    classified as compute bound, the rest as memory bound.
    """
    points: List[RooflinePoint] = []
    for op in operators:
        ai = op.arithmetic_intensity
        points.append(RooflinePoint(
            operator=op.name,
            phase=op.phase.value,
            arithmetic_intensity=ai,
            attainable_tflops=device.attainable_tflops(ai),
            compute_bound=ai >= device.ridge_point,
        ))
    return points


def analyze_phase(model: ModelConfig, batch_size: int, seq_len: int,
                  phase: Phase, device: DevicePeaks = RTX3090_PEAKS) -> Dict[str, RooflinePoint]:
    """Roofline of one block's operator classes for a whole phase.

    Builds a synthetic batch of ``batch_size`` requests of length ``seq_len``
    that are all in the given phase and aggregates operators by class
    (layernorm, qkv_gen, score, attend, ffn) as in Figure 2(b).
    """
    if phase is Phase.INITIATION:
        seqs = [SequenceSpec(i, 0, seq_len, Phase.INITIATION) for i in range(batch_size)]
    else:
        seqs = [SequenceSpec(i, seq_len, 1, Phase.GENERATION) for i in range(batch_size)]
    graph = build_iteration_graph(model, BatchComposition(seqs))

    groups: Dict[str, List[Operator]] = {
        "layernorm": [], "qkv_gen": [], "score": [], "attend": [], "ffn": [],
    }
    for op in graph.block_operators:
        base = op.name.split(".", 1)[1] if "." in op.name else op.name
        if base.startswith("layernorm"):
            groups["layernorm"].append(op)
        elif base.startswith("qkv_gen"):
            groups["qkv_gen"].append(op)
        elif base.startswith("score") or base.startswith("softmax"):
            groups["score"].append(op)
        elif base.startswith("attend"):
            groups["attend"].append(op)
        elif base.startswith("ffn"):
            groups["ffn"].append(op)

    result: Dict[str, RooflinePoint] = {}
    for group, ops in groups.items():
        if not ops:
            continue
        flops = sum(op.flops for op in ops)
        bytes_moved = sum(op.total_bytes for op in ops)
        ai = flops / bytes_moved if bytes_moved else 0.0
        result[group] = RooflinePoint(
            operator=group,
            phase=phase.value,
            arithmetic_intensity=ai,
            attainable_tflops=device.attainable_tflops(ai),
            compute_bound=ai >= device.ridge_point,
        )
    return result
