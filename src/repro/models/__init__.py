"""Model substrate: LLM architectures, operator graphs and roofline analysis."""

from .architectures import ModelConfig, available_models, get_model, register_model
from .graph import BatchComposition, IterationGraph, SequenceSpec, build_iteration_graph
from .layers import DTYPE_BYTES, Operator, OpType, Phase
from .roofline import DevicePeaks, RooflinePoint, RTX3090_PEAKS, analyze_operators, analyze_phase

__all__ = [
    "ModelConfig", "available_models", "get_model", "register_model",
    "BatchComposition", "IterationGraph", "SequenceSpec", "build_iteration_graph",
    "DTYPE_BYTES", "Operator", "OpType", "Phase",
    "DevicePeaks", "RooflinePoint", "RTX3090_PEAKS", "analyze_operators", "analyze_phase",
]
