"""Network and interconnect model: links, collectives and host transfers.

The paper's Table I specifies PCIe-4.0-class inter-device links (64 GB/s,
100 ns) and the analytical ASTRA-sim backend models collectives with
bandwidth/latency terms.  This module reproduces those models: point-to-point
transfer time, ring all-reduce / all-gather cost across a device group, and
host<->device page-migration time.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LinkSpec", "NetworkConfig", "NetworkModel",
           "PCIE_GEN4_X16", "HIGH_BANDWIDTH_INTERCONNECT", "NVLINK_LIKE"]


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point link characterized by bandwidth and latency.

    Attributes
    ----------
    name:
        Label used in reports.
    bandwidth_gbs:
        Sustained bandwidth in GB/s.
    latency_s:
        Per-message latency in seconds.
    """

    name: str
    bandwidth_gbs: float
    latency_s: float

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0:
            raise ValueError("bandwidth_gbs must be positive")
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")

    def transfer_time(self, num_bytes: float) -> float:
        """Time to move ``num_bytes`` over this link."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return self.latency_s + num_bytes / (self.bandwidth_gbs * 1e9)


#: Table I inter-device link: PCIe 4.0 x16 at 64 GB/s, 100 ns latency.
PCIE_GEN4_X16 = LinkSpec(name="pcie-4.0-x16", bandwidth_gbs=64.0, latency_s=100e-9)

#: CXL-class high-bandwidth interconnect used between accelerator pools.
HIGH_BANDWIDTH_INTERCONNECT = LinkSpec(name="cxl-like", bandwidth_gbs=256.0, latency_s=300e-9)

#: An NVLink-like intra-group link for GPU reference configurations.
NVLINK_LIKE = LinkSpec(name="nvlink-like", bandwidth_gbs=300.0, latency_s=700e-9)


@dataclass(frozen=True)
class NetworkConfig:
    """Links used in a serving system.

    Attributes
    ----------
    device_link:
        Link between accelerators (intra- and inter-group).
    host_link:
        Link between accelerators and the host (used for KV-page eviction and
        reload).
    pool_link:
        Link between heterogeneous accelerator pools (NPU pool <-> PIM pool).
    sync_overhead_s:
        Fixed per-collective software synchronization overhead, modeling the
        kernel-launch / barrier cost the paper attributes to system-level
        synchronization.
    """

    device_link: LinkSpec = PCIE_GEN4_X16
    host_link: LinkSpec = PCIE_GEN4_X16
    pool_link: LinkSpec = HIGH_BANDWIDTH_INTERCONNECT
    sync_overhead_s: float = 10e-6


class NetworkModel:
    """Analytical timing model for communication operations."""

    def __init__(self, config: NetworkConfig = NetworkConfig()) -> None:
        self.config = config

    # -- point-to-point ------------------------------------------------------

    def p2p_time(self, num_bytes: float) -> float:
        """Activation transfer between two accelerators (pipeline stage hop)."""
        return self.config.device_link.transfer_time(num_bytes)

    def pool_transfer_time(self, num_bytes: float) -> float:
        """Intermediate-result transfer between accelerator pools."""
        return self.config.pool_link.transfer_time(num_bytes)

    def host_transfer_time(self, num_bytes: float) -> float:
        """KV-page migration between device memory and host memory."""
        return self.config.host_link.transfer_time(num_bytes)

    # -- collectives ---------------------------------------------------------

    def allreduce_time(self, num_bytes: float, num_devices: int) -> float:
        """Ring all-reduce across ``num_devices`` devices.

        Uses the standard ring model: ``2 * (n-1)/n * bytes / bw`` plus
        ``2 * (n-1)`` link-latency hops and a fixed synchronization overhead.
        A single participant costs nothing.
        """
        if num_devices <= 0:
            raise ValueError("num_devices must be positive")
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_devices == 1:
            return 0.0
        link = self.config.device_link
        bandwidth_term = 2.0 * (num_devices - 1) / num_devices * num_bytes / (link.bandwidth_gbs * 1e9)
        latency_term = 2.0 * (num_devices - 1) * link.latency_s
        return bandwidth_term + latency_term + self.config.sync_overhead_s

    def allgather_time(self, num_bytes: float, num_devices: int) -> float:
        """Ring all-gather across ``num_devices`` devices."""
        if num_devices <= 0:
            raise ValueError("num_devices must be positive")
        if num_devices == 1:
            return 0.0
        link = self.config.device_link
        bandwidth_term = (num_devices - 1) / num_devices * num_bytes / (link.bandwidth_gbs * 1e9)
        latency_term = (num_devices - 1) * link.latency_s
        return bandwidth_term + latency_term + self.config.sync_overhead_s
