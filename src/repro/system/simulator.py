"""System-level discrete-event simulator (the ASTRA-sim substitute).

Takes the execution graph produced by the graph converter, the system
topology and the network model, and plays the graph forward with a
discrete-event engine: every device executes its nodes in dependency order,
one at a time; collectives occupy every participating device; point-to-point
and host transfers occupy the endpoints for the duration computed by the
network model.

The output is the iteration's end-to-end latency (makespan) plus per-device
utilization and a communication/computation breakdown — the statistics the
LLMServingSim scheduler feeds back into its clock to schedule the next
iteration.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..graph.execgraph import ExecutionGraph, GraphNode, GraphNodeType
from .events import EventQueue
from .network import NetworkModel
from .topology import SystemTopology

__all__ = ["NodeTiming", "SystemSimulationResult", "SystemSimulator"]


@dataclass(frozen=True)
class NodeTiming:
    """Start / end time assigned to one graph node during system simulation."""

    node_id: int
    name: str
    node_type: GraphNodeType
    start: float
    end: float
    devices: Tuple[int, ...]

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class SystemSimulationResult:
    """Outcome of simulating one execution graph.

    Attributes
    ----------
    makespan:
        End-to-end latency of the graph in seconds.
    compute_time:
        Total device-seconds spent in compute nodes.
    comm_time:
        Total device-seconds spent in communication (collective, P2P) nodes.
    memory_time:
        Total device-seconds spent in host<->device memory transfers.
    device_busy_time:
        Busy seconds per device id.
    node_timings:
        Per-node start/end times in completion order.
    num_events:
        Number of discrete events processed.
    """

    makespan: float = 0.0
    compute_time: float = 0.0
    comm_time: float = 0.0
    memory_time: float = 0.0
    device_busy_time: Dict[int, float] = field(default_factory=dict)
    node_timings: List[NodeTiming] = field(default_factory=list)
    num_events: int = 0

    def utilization(self, device_id: int) -> float:
        """Fraction of the makespan a device spent busy."""
        if self.makespan <= 0:
            return 0.0
        return self.device_busy_time.get(device_id, 0.0) / self.makespan

    def mean_utilization(self) -> float:
        """Average utilization across devices that did any work."""
        busy = [t for t in self.device_busy_time.values() if t > 0]
        if not busy or self.makespan <= 0:
            return 0.0
        return sum(busy) / (len(busy) * self.makespan)


class SystemSimulator:
    """Discrete-event execution of an :class:`ExecutionGraph`.

    Parameters
    ----------
    topology:
        The system topology (used for validation and utilization reporting).
    network:
        Timing model for communication nodes.
    """

    def __init__(self, topology: SystemTopology, network: Optional[NetworkModel] = None) -> None:
        self.topology = topology
        self.network = network or NetworkModel()

    # -- public API ----------------------------------------------------------

    def simulate(self, graph: ExecutionGraph, start_time: float = 0.0) -> SystemSimulationResult:
        """Run the graph to completion and return timing statistics.

        ``start_time`` offsets all reported times (the serving scheduler
        passes its current clock so node timings are absolute).
        """
        graph.validate()
        result = SystemSimulationResult()
        if len(graph) == 0:
            return result

        queue = EventQueue()
        remaining_deps: Dict[int, int] = {}
        dependents: Dict[int, List[int]] = {}
        for node in graph:
            remaining_deps[node.node_id] = len(node.deps)
            for dep in node.deps:
                dependents.setdefault(dep, []).append(node.node_id)

        device_busy: Dict[int, bool] = {}
        # FIFO of ready single-device nodes per busy device.  A deque keeps
        # the pop-from-the-front O(1); with a plain list the per-device
        # queues of a large graph (every node of a pipeline stage lands on
        # one device) turn the simulation O(n^2).
        ready_per_device: Dict[int, Deque[int]] = {}
        # Ready multi-device nodes (collectives, P2P) waiting for endpoints:
        # node id -> number of its devices currently busy.  A reverse index
        # maps each device to the waiting nodes that include it, so finishing
        # a node only touches the waiters of the devices it releases.
        waiting_multi_busy: Dict[int, int] = {}
        multi_waiters_by_device: Dict[int, List[int]] = {}
        finished: Set[int] = set()

        def devices_of(node: GraphNode) -> Tuple[int, ...]:
            if node.node_type is GraphNodeType.COLLECTIVE:
                return tuple(node.comm_group)
            if node.node_type is GraphNodeType.P2P and node.peer_device is not None:
                return (node.device, node.peer_device)
            return (node.device,)

        def node_duration(node: GraphNode) -> float:
            if node.node_type is GraphNodeType.COMPUTE:
                return node.duration
            if node.node_type is GraphNodeType.COLLECTIVE:
                return self.network.allreduce_time(node.comm_bytes, len(node.comm_group))
            if node.node_type is GraphNodeType.P2P:
                if node.metadata.get("pool_transfer"):
                    return self.network.pool_transfer_time(node.comm_bytes)
                return self.network.p2p_time(node.comm_bytes)
            if node.node_type is GraphNodeType.MEMORY:
                return self.network.host_transfer_time(node.comm_bytes)
            raise ValueError(f"unknown node type {node.node_type}")

        def start_node(node: GraphNode, devices: Tuple[int, ...]) -> None:
            duration = node_duration(node)
            start = queue.now
            for d in devices:
                device_busy[d] = True
            queue.schedule_after(duration, lambda n=node, s=start, devs=devices: finish(n, s, devs),
                                 label=node.name)

        def make_ready(node_id: int) -> None:
            node = graph.node(node_id)
            devices = devices_of(node)
            if len(devices) > 1:
                busy_count = sum(1 for d in devices if device_busy.get(d, False))
                if busy_count == 0:
                    start_node(node, devices)
                else:
                    waiting_multi_busy[node_id] = busy_count
                    for d in devices:
                        multi_waiters_by_device.setdefault(d, []).append(node_id)
            else:
                device = devices[0]
                if device_busy.get(device, False):
                    ready_per_device.setdefault(device, deque()).append(node_id)
                else:
                    start_node(node, devices)

        def release_device(device: int) -> None:
            """Hand a freed device to the next waiter (multi-device first)."""
            device_busy[device] = False
            # Multi-device waiters that include this device lose one busy count.
            waiters = multi_waiters_by_device.get(device)
            if waiters:
                still_waiting: List[int] = []
                for node_id in waiters:
                    if node_id not in waiting_multi_busy:
                        continue
                    waiting_multi_busy[node_id] -= 1
                    if waiting_multi_busy[node_id] <= 0:
                        node = graph.node(node_id)
                        devices = devices_of(node)
                        # All endpoints reported free; start unless a race
                        # re-occupied one (then it re-enters waiting).
                        busy_count = sum(1 for d in devices if device_busy.get(d, False))
                        if busy_count == 0:
                            del waiting_multi_busy[node_id]
                            start_node(node, devices)
                            continue
                        waiting_multi_busy[node_id] = busy_count
                    still_waiting.append(node_id)
                multi_waiters_by_device[device] = [n for n in still_waiting
                                                   if n in waiting_multi_busy]
            # Single-device queue of this device.
            if not device_busy.get(device, False):
                ready = ready_per_device.get(device)
                if ready:
                    node_id = ready.popleft()
                    node = graph.node(node_id)
                    start_node(node, devices_of(node))

        def finish(node: GraphNode, start: float, devices: Tuple[int, ...]) -> None:
            end = queue.now
            duration = end - start
            for d in devices:
                result.device_busy_time[d] = result.device_busy_time.get(d, 0.0) + duration
            if node.node_type is GraphNodeType.COMPUTE:
                result.compute_time += duration
            elif node.node_type is GraphNodeType.MEMORY:
                result.memory_time += duration
            else:
                result.comm_time += duration * len(devices)
            result.node_timings.append(NodeTiming(
                node_id=node.node_id, name=node.name, node_type=node.node_type,
                start=start_time + start, end=start_time + end, devices=devices))
            finished.add(node.node_id)
            for child in dependents.get(node.node_id, ()):  # release dependents
                remaining_deps[child] -= 1
                if remaining_deps[child] == 0:
                    make_ready(child)
            for d in devices:
                release_device(d)

        # Seed: every node with no dependencies is ready at time zero.
        for node in graph:
            if remaining_deps[node.node_id] == 0:
                make_ready(node.node_id)

        result.num_events = queue.run()
        if len(finished) != len(graph):
            missing = len(graph) - len(finished)
            raise RuntimeError(f"system simulation deadlocked with {missing} unfinished nodes")
        result.makespan = queue.now
        return result
