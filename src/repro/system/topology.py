"""System topology: devices, device groups and their interconnect layout.

LLMServingSim simulates scale-out serving systems made of a host CPU and
pools of accelerators (NPU, PIM, GPU) connected by high-bandwidth links
(Figure 3 and Figure 5 of the paper).  A :class:`SystemTopology` captures
which devices exist, what kind they are, how they are grouped for hybrid
parallelism, and whether PIM is attached locally to every NPU
(``pim_type="local"``), provided as a separate pool (``pim_type="pool"``) or
absent (``pim_type="none"``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["DeviceType", "PIMMode", "Device", "SystemTopology", "build_topology"]


class DeviceType(enum.Enum):
    """Kind of accelerator (or host) a device represents."""

    NPU = "npu"
    PIM = "pim"
    GPU = "gpu"
    HOST = "host"


class PIMMode(enum.Enum):
    """How PIM capability is provisioned in the system (the ``pim_type`` knob)."""

    NONE = "none"
    LOCAL = "local"
    POOL = "pool"


@dataclass(frozen=True)
class Device:
    """One device in the system.

    Attributes
    ----------
    device_id:
        Globally unique id (the host is always id 0 when present).
    device_type:
        NPU / PIM / GPU / HOST.
    group:
        Pipeline-parallel group index the device belongs to, or ``-1`` for
        devices outside the compute groups (host, pooled PIM).
    memory_bytes:
        Local memory capacity.
    paired_device:
        For ``pim_type="local"`` systems, the id of the PIM device attached
        to this NPU (and vice versa); ``None`` otherwise.
    """

    device_id: int
    device_type: DeviceType
    group: int = -1
    memory_bytes: int = 0
    paired_device: Optional[int] = None


@dataclass
class SystemTopology:
    """The full set of devices plus their logical grouping.

    Attributes
    ----------
    devices:
        All devices indexed by id.
    compute_groups:
        Pipeline-parallel groups; each group is the ordered list of NPU/GPU
        device ids performing tensor parallelism within the group.
    pim_pool:
        Device ids of pooled PIM devices (empty unless ``pim_mode=POOL``).
    pim_mode:
        How PIM is provisioned.
    host_id:
        Device id of the host CPU.
    """

    devices: Dict[int, Device] = field(default_factory=dict)
    compute_groups: List[List[int]] = field(default_factory=list)
    pim_pool: List[int] = field(default_factory=list)
    pim_mode: PIMMode = PIMMode.NONE
    host_id: int = 0

    # -- queries ------------------------------------------------------------

    @property
    def compute_devices(self) -> List[int]:
        """All NPU/GPU device ids in group order."""
        result: List[int] = []
        for group in self.compute_groups:
            result.extend(group)
        return result

    @property
    def num_compute_devices(self) -> int:
        return len(self.compute_devices)

    @property
    def num_groups(self) -> int:
        return len(self.compute_groups)

    @property
    def tensor_parallel_degree(self) -> int:
        """Devices per group (the tensor-parallel width)."""
        if not self.compute_groups:
            return 0
        return len(self.compute_groups[0])

    def device(self, device_id: int) -> Device:
        return self.devices[device_id]

    def group_of(self, device_id: int) -> int:
        """Pipeline group index of a compute device."""
        return self.devices[device_id].group

    def pim_partner(self, device_id: int) -> Optional[int]:
        """Locally attached PIM device of an NPU, if any."""
        return self.devices[device_id].paired_device

    def validate(self) -> None:
        """Sanity-check group membership and device references."""
        seen: set = set()
        for group_index, group in enumerate(self.compute_groups):
            if not group:
                raise ValueError(f"compute group {group_index} is empty")
            for device_id in group:
                if device_id not in self.devices:
                    raise ValueError(f"group {group_index} references unknown device {device_id}")
                if device_id in seen:
                    raise ValueError(f"device {device_id} appears in more than one group")
                seen.add(device_id)
        for pim_id in self.pim_pool:
            if pim_id not in self.devices:
                raise ValueError(f"PIM pool references unknown device {pim_id}")
        if self.host_id not in self.devices:
            raise ValueError("topology has no host device")
        widths = {len(group) for group in self.compute_groups}
        if len(widths) > 1:
            raise ValueError("all compute groups must have the same tensor-parallel width")


def build_topology(num_devices: int, num_groups: int = 1,
                   device_type: DeviceType = DeviceType.NPU,
                   device_memory_bytes: int = 24 * 1024 ** 3,
                   pim_mode: PIMMode = PIMMode.NONE,
                   pim_memory_bytes: int = 32 * 1024 ** 3,
                   num_pim_devices: Optional[int] = None) -> SystemTopology:
    """Construct a serving-system topology.

    Parameters
    ----------
    num_devices:
        Total number of compute (NPU/GPU) devices.
    num_groups:
        Number of pipeline-parallel groups (the ``npu_group`` knob); the
        tensor-parallel width is ``num_devices / num_groups``.
    device_type:
        Compute device type.
    device_memory_bytes:
        Local memory per compute device (Table I: 24 GB for the NPU).
    pim_mode:
        ``NONE`` for a homogeneous system, ``LOCAL`` to attach one PIM device
        per NPU, ``POOL`` for a separate PIM pool.
    pim_memory_bytes:
        Local memory per PIM device (Table I: 32 GB).
    num_pim_devices:
        Size of the PIM pool (defaults to ``num_devices`` for POOL mode).

    Raises
    ------
    ValueError
        If the device count is not divisible into the requested groups.
    """
    if num_devices <= 0:
        raise ValueError("num_devices must be positive")
    if num_groups <= 0:
        raise ValueError("num_groups must be positive")
    if num_devices % num_groups != 0:
        raise ValueError(f"num_devices={num_devices} is not divisible by num_groups={num_groups}")

    topology = SystemTopology(pim_mode=pim_mode, host_id=0)
    topology.devices[0] = Device(device_id=0, device_type=DeviceType.HOST,
                                 memory_bytes=512 * 1024 ** 3)

    next_id = 1
    per_group = num_devices // num_groups
    for group_index in range(num_groups):
        group: List[int] = []
        for _ in range(per_group):
            device = Device(device_id=next_id, device_type=device_type,
                            group=group_index, memory_bytes=device_memory_bytes)
            topology.devices[next_id] = device
            group.append(next_id)
            next_id += 1
        topology.compute_groups.append(group)

    if pim_mode is PIMMode.LOCAL:
        pairs: Dict[int, int] = {}
        for npu_id in list(topology.compute_devices):
            pim = Device(device_id=next_id, device_type=DeviceType.PIM,
                         group=topology.devices[npu_id].group,
                         memory_bytes=pim_memory_bytes, paired_device=npu_id)
            topology.devices[next_id] = pim
            pairs[npu_id] = next_id
            next_id += 1
        # Re-create NPU devices with their PIM partner recorded.
        for npu_id, pim_id in pairs.items():
            npu = topology.devices[npu_id]
            topology.devices[npu_id] = Device(
                device_id=npu.device_id, device_type=npu.device_type, group=npu.group,
                memory_bytes=npu.memory_bytes, paired_device=pim_id)
    elif pim_mode is PIMMode.POOL:
        pool_size = num_pim_devices if num_pim_devices is not None else num_devices
        if pool_size <= 0:
            raise ValueError("num_pim_devices must be positive for POOL mode")
        for _ in range(pool_size):
            pim = Device(device_id=next_id, device_type=DeviceType.PIM,
                         memory_bytes=pim_memory_bytes)
            topology.devices[next_id] = pim
            topology.pim_pool.append(next_id)
            next_id += 1

    topology.validate()
    return topology
