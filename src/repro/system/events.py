"""Discrete-event simulation primitives.

A tiny, dependency-free event queue used by the system simulator.  Events
are ordered by time with a monotonically increasing sequence number as the
tie breaker so simulation results are fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """One scheduled event.

    Events compare by ``(time, sequence)`` so two events scheduled for the
    same instant fire in scheduling order.
    """

    time: float
    sequence: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)


class EventQueue:
    """A deterministic priority queue of timed events."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulated time (time of the last popped event)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def schedule(self, time: float, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``action`` to run at simulated ``time``.

        Raises
        ------
        ValueError
            If the event is scheduled in the past.
        """
        if time < self._now - 1e-12:
            raise ValueError(f"cannot schedule event at {time} before current time {self._now}")
        event = Event(time=max(time, self._now), sequence=next(self._counter),
                      action=action, label=label)
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(self, delay: float, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self._now + delay, action, label)

    def pop(self) -> Event:
        """Remove and return the next event, advancing simulated time."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        event = heapq.heappop(self._heap)
        self._now = event.time
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the queue, executing event actions in time order.

        Parameters
        ----------
        until:
            Stop once the next event is later than this time (the event stays
            queued).
        max_events:
            Safety limit on the number of events processed.

        Returns
        -------
        int
            The number of events executed.
        """
        executed = 0
        while self._heap:
            if until is not None and self._heap[0].time > until:
                break
            if max_events is not None and executed >= max_events:
                break
            event = self.pop()
            event.action()
            executed += 1
        return executed
