"""System substrate: discrete-event engine, topology, network and system simulator."""

from .events import Event, EventQueue
from .network import (HIGH_BANDWIDTH_INTERCONNECT, NVLINK_LIKE, PCIE_GEN4_X16,
                      LinkSpec, NetworkConfig, NetworkModel)
from .simulator import NodeTiming, SystemSimulationResult, SystemSimulator
from .topology import Device, DeviceType, PIMMode, SystemTopology, build_topology

__all__ = [
    "Event", "EventQueue",
    "HIGH_BANDWIDTH_INTERCONNECT", "NVLINK_LIKE", "PCIE_GEN4_X16",
    "LinkSpec", "NetworkConfig", "NetworkModel",
    "NodeTiming", "SystemSimulationResult", "SystemSimulator",
    "Device", "DeviceType", "PIMMode", "SystemTopology", "build_topology",
]
