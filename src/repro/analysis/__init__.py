"""Analysis helpers: error metrics and text reporting for tables and figures."""

from .metrics import (align_series, geometric_mean_error, mean_absolute_percentage_error,
                      relative_error, series_error)
from .reporting import format_series, format_table, print_series, print_table

__all__ = [
    "align_series", "geometric_mean_error", "mean_absolute_percentage_error",
    "relative_error", "series_error",
    "format_series", "format_table", "print_series", "print_table",
]
