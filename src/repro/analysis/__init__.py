"""Analysis helpers: error metrics and text reporting for tables and figures."""

from .metrics import (SLOAttainment, SLOSummary, align_series, geometric_mean_error,
                      mean_absolute_percentage_error, percentile, relative_error,
                      request_slo_metrics, series_error, slo_attainment, slo_summary,
                      time_between_tokens)
from .reporting import format_series, format_table, print_series, print_table

__all__ = [
    "align_series", "geometric_mean_error", "mean_absolute_percentage_error",
    "relative_error", "series_error",
    "SLOSummary", "percentile", "slo_summary", "time_between_tokens", "request_slo_metrics",
    "SLOAttainment", "slo_attainment",
    "format_series", "format_table", "print_series", "print_table",
]
