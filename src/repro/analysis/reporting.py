"""Plain-text table and series rendering for the benchmark harnesses.

Every benchmark prints the rows / series of the corresponding paper table or
figure.  These helpers keep that output consistent: fixed-width tables with
a title, and (time, value) series rendered as aligned columns so the shape
of a figure can be read directly from the benchmark log.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

__all__ = ["format_table", "format_series", "print_table", "print_series"]


def format_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width text table."""
    materialized: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts = [f"== {title} ==", line(list(headers)), line(["-" * w for w in widths])]
    parts.extend(line(row) for row in materialized)
    return "\n".join(parts)


def format_series(title: str, series: Sequence[Tuple[float, float]],
                  x_label: str = "time", y_label: str = "value") -> str:
    """Render a (x, y) series as two aligned columns."""
    rows = [(f"{x:.1f}", f"{y:.2f}") for x, y in series]
    return format_table(title, [x_label, y_label], rows)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    print("\n" + format_table(title, headers, rows))


def print_series(title: str, series: Sequence[Tuple[float, float]],
                 x_label: str = "time", y_label: str = "value") -> None:
    print("\n" + format_series(title, series, x_label, y_label))


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) < 0.01 or abs(cell) >= 1e6):
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)
