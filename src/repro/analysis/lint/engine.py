"""The ``repro lint`` engine: file walking, rule dispatch, noqa, baseline.

The simulator's headline guarantee — bit-identical results across execution
backends and cluster engines — is a *determinism* contract, and most ways to
break it share a handful of syntactic shapes: a wall-clock read in
simulation logic, an unseeded random draw, iteration over an unordered
container, object identity leaking into a cache key, an unpicklable payload
crossing a process boundary, a lock-guarded field touched without its lock.
This package encodes those shapes as AST-level rules (see
:mod:`repro.analysis.lint.rules` for the catalog) so a whole bug class is
caught in milliseconds instead of surfacing as a flaky fingerprint mismatch
in the four-minute determinism suite.

This module is the rule-agnostic machinery:

* :class:`ModuleContext` — one parsed file (AST, source lines, dotted module
  name, parent links) handed to every rule;
* :func:`lint_paths` / :func:`lint_file` — walk files deterministically,
  run the selected rules, apply ``# repro: noqa[RULE]`` suppressions;
* :func:`load_baseline` / :func:`write_baseline` /
  :func:`split_by_baseline` — the committed-findings workflow: CI fails
  only on findings *not* recorded in the baseline file, so the linter can
  be adopted on an imperfect tree and ratcheted down.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = ["Finding", "ModuleContext", "LintError", "parse_module",
           "iter_python_files", "lint_file", "lint_paths",
           "load_baseline", "write_baseline", "split_by_baseline",
           "BASELINE_SCHEMA", "DEFAULT_BASELINE_NAME"]

#: Inline suppression: ``# repro: noqa`` silences every rule on the line,
#: ``# repro: noqa[REP001]`` / ``# repro: noqa[REP001,REP003]`` named ones.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")

BASELINE_SCHEMA = "repro-lint-baseline/v1"
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"


class LintError(Exception):
    """A path could not be linted (missing file, unparseable source)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def key(self) -> Tuple[str, str, int]:
        """Identity used for baseline matching (column excluded: it is an
        implementation detail of the rule, not of the finding)."""
        return (self.path, self.code, self.line)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line, "col": self.col,
                "code": self.code, "message": self.message}


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one parsed Python file."""

    path: Path
    display_path: str
    module_name: str
    source_lines: List[str]
    tree: ast.Module
    #: Child node -> parent node; AST nodes hash by identity, which is the
    #: right key here (the map lives exactly as long as the tree).
    parents: Dict[ast.AST, ast.AST]

    def parent_of(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The node's parents, innermost first."""
        current = self.parent_of(node)
        while current is not None:
            yield current
            current = self.parent_of(current)


def module_name_of(path: Path) -> str:
    """Dotted module name of a file, derived from the package layout.

    Walks up while ``__init__.py`` marks the parent as a package, so
    ``src/repro/core/simtime.py`` resolves to ``repro.core.simtime``
    regardless of where the repository is checked out.  Files outside any
    package resolve to their bare stem.
    """
    path = path.resolve()
    parts = [] if path.stem == "__init__" else [path.stem]
    current = path.parent
    while (current / "__init__.py").is_file():
        parts.insert(0, current.name)
        current = current.parent
    return ".".join(parts) if parts else path.stem


def parse_module(path: Path, display_path: Optional[str] = None) -> ModuleContext:
    """Parse one file into the context handed to every rule."""
    try:
        source = path.read_text()
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from None
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise LintError(f"cannot parse {path}: {exc}") from None
    parents: Dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return ModuleContext(path=path, display_path=display_path or str(path),
                         module_name=module_name_of(path),
                         source_lines=source.splitlines(), tree=tree,
                         parents=parents)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield the ``.py`` files under ``paths`` in deterministic order."""
    for path in paths:
        path = Path(path)
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if p.is_file())
        elif path.is_file():
            yield path
        else:
            raise LintError(f"no such file or directory: {path}")


def _suppressed_codes(context: ModuleContext, line: int) -> Optional[Set[str]]:
    """Codes silenced by a ``# repro: noqa`` comment on a physical line.

    Returns ``None`` when the line carries no directive, the empty set for a
    bare ``noqa`` (suppress everything), or the named codes.
    """
    if not 1 <= line <= len(context.source_lines):
        return None
    match = _NOQA_RE.search(context.source_lines[line - 1])
    if match is None:
        return None
    if match.group(1) is None:
        return set()
    return {code.strip().upper() for code in match.group(1).split(",") if code.strip()}


def _apply_noqa(context: ModuleContext, findings: Iterable[Finding]) -> List[Finding]:
    kept = []
    for finding in findings:
        codes = _suppressed_codes(context, finding.line)
        if codes is not None and (not codes or finding.code in codes):
            continue
        kept.append(finding)
    return kept


def _resolve_rules(select: Optional[Sequence[str]],
                   ignore: Optional[Sequence[str]]) -> "List":
    from .rules import RULES
    codes = list(RULES)
    if select:
        wanted = {code.upper() for code in select}
        unknown = wanted - set(codes)
        if unknown:
            raise LintError(f"unknown rule code(s) in --select: {sorted(unknown)}")
        codes = [code for code in codes if code in wanted]
    if ignore:
        dropped = {code.upper() for code in ignore}
        unknown = dropped - set(RULES)
        if unknown:
            raise LintError(f"unknown rule code(s) in --ignore: {sorted(unknown)}")
        codes = [code for code in codes if code not in dropped]
    return [RULES[code] for code in codes]


def lint_file(path: Path, select: Optional[Sequence[str]] = None,
              ignore: Optional[Sequence[str]] = None,
              display_path: Optional[str] = None) -> List[Finding]:
    """Run the (selected) rules over one file, honoring noqa directives."""
    context = parse_module(Path(path), display_path=display_path)
    findings: List[Finding] = []
    for rule in _resolve_rules(select, ignore):
        findings.extend(rule.check(context))
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return _apply_noqa(context, findings)


def lint_paths(paths: Sequence[Path], select: Optional[Sequence[str]] = None,
               ignore: Optional[Sequence[str]] = None,
               relative_to: Optional[Path] = None) -> List[Finding]:
    """Lint every Python file under ``paths``; findings in file order.

    ``relative_to`` rewrites finding paths relative to a root (typically the
    repository root) so baselines are stable across checkouts.
    """
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        display = str(file_path)
        if relative_to is not None:
            try:
                display = str(file_path.resolve().relative_to(Path(relative_to).resolve()))
            except ValueError:
                pass
        findings.extend(lint_file(file_path, select=select, ignore=ignore,
                                  display_path=display))
    return findings


# -- baseline workflow -----------------------------------------------------------


def load_baseline(path: Path) -> Set[Tuple[str, str, int]]:
    """Read the committed baseline; a missing file is an empty baseline.

    A malformed or wrong-schema file is an error, not an empty baseline — a
    silently ignored baseline would re-flag every legacy finding and train
    people to distrust the gate.
    """
    path = Path(path)
    if not path.is_file():
        return set()
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from None
    if payload.get("schema") != BASELINE_SCHEMA:
        raise LintError(f"baseline {path} has unknown schema "
                        f"{payload.get('schema')!r}; expected {BASELINE_SCHEMA!r}")
    return {(entry["path"], entry["code"], entry["line"])
            for entry in payload.get("findings", [])}


def write_baseline(path: Path, findings: Sequence[Finding]) -> Path:
    """Record the given findings as the accepted baseline."""
    payload = {
        "schema": BASELINE_SCHEMA,
        "findings": [{"path": f.path, "code": f.code, "line": f.line,
                      "message": f.message}
                     for f in sorted(findings, key=lambda f: f.key())],
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def split_by_baseline(findings: Sequence[Finding],
                      baseline: Set[Tuple[str, str, int]],
                      ) -> Tuple[List[Finding], List[Finding]]:
    """Partition findings into ``(new, baselined)``."""
    new, baselined = [], []
    for finding in findings:
        (baselined if finding.key() in baseline else new).append(finding)
    return new, baselined
