"""The REP rule catalog: simulator-specific determinism & concurrency rules.

Each rule encodes one way the repository's determinism contract (bit-identical
results across ``serial``/``process-pool`` backends and ``lockstep``/
``event-driven`` engines) or its lock discipline has been — or could be —
silently broken:

========  =======================================================================
REP001    Wall-clock read (``time.time``, ``datetime.now``, ``perf_counter``)
          outside the allowlisted timing/bench modules.  Simulation logic must
          run on the simulated clock; host time leaking into results makes two
          runs of the same trace disagree.
REP002    Unseeded randomness: module-level ``random.*`` / ``numpy.random.*``
          calls (including argument-less ``default_rng()``) instead of a seeded
          ``Generator``/``Random`` instance threaded from configuration.
REP003    Nondeterministic iteration order: iterating (or materializing) a
          ``set``, or consuming ``os.listdir`` / ``glob.glob`` /
          ``Path.iterdir``-style directory listings without ``sorted()``.
REP004    ``id()`` used in a key position — cache keys, fingerprints, dict/set
          membership, heap tie-breakers.  Object identity varies across runs
          and processes, and ids are reused after garbage collection.
REP005    Unpicklable payloads (lambdas, functions/classes defined inside a
          function) passed into ``multiprocessing`` entry points or pipe
          ``send``/``put`` calls — the worker crashes at depickling time, or
          worse, silently diverges under the ``fork`` start method.
REP006    Lock discipline: reads/writes of attributes a class declares
          lock-guarded (``_LOCK_GUARDED = ("_entries", ...)``) outside a
          ``with self._lock:`` block, in a method not documented as lock-held.
========  =======================================================================

Rules are plain functions over a :class:`~repro.analysis.lint.engine.ModuleContext`
registered in :data:`RULES`; :func:`register_rule` adds project-local ones.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from .engine import Finding, ModuleContext

__all__ = ["Rule", "RULES", "register_rule", "available_rules",
           "TIMING_ALLOWLIST_MODULES"]

#: Modules whose *purpose* is host wall-clock measurement: the simulation-time
#: tracker (measures how long simulating takes, Section V of the paper) and
#: the performance harness.  REP001 does not apply inside them.
TIMING_ALLOWLIST_MODULES = frozenset({
    "repro.core.simtime",
    "repro.bench",
})


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    code: str
    name: str
    summary: str
    check: Callable[[ModuleContext], Iterator[Finding]]


RULES: Dict[str, Rule] = {}


def register_rule(code: str, name: str, summary: str,
                  check: Callable[[ModuleContext], Iterator[Finding]]) -> Rule:
    """Register a rule under its code (``REPnnn``); overwriting is an error."""
    code = code.upper()
    if code in RULES:
        raise ValueError(f"rule code {code} is already registered")
    rule = Rule(code=code, name=name, summary=summary, check=check)
    RULES[code] = rule
    return rule


def available_rules() -> List[Rule]:
    """All registered rules in code order."""
    return [RULES[code] for code in sorted(RULES)]


def _finding(context: ModuleContext, node: ast.AST, code: str, message: str) -> Finding:
    return Finding(path=context.display_path, line=node.lineno,
                   col=node.col_offset + 1, code=code, message=message)


# -- import resolution (shared by several rules) ---------------------------------


def _import_map(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted origins their imports bind.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    perf_counter as pc`` maps ``pc -> time.perf_counter``.  Only top-level
    and function-local imports are collected (wherever they appear).
    """
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mapping[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                mapping[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return mapping


def _dotted_name(node: ast.AST) -> Optional[List[str]]:
    """Flatten ``a.b.c`` into ``["a", "b", "c"]``; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.insert(0, node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.insert(0, node.id)
        return parts
    return None


def _resolve_call(func: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Resolve a call target to its dotted origin using the import map.

    ``t.perf_counter()`` with ``import time as t`` resolves to
    ``time.perf_counter``; ``datetime.now()`` with ``from datetime import
    datetime`` resolves to ``datetime.datetime.now``.
    """
    parts = _dotted_name(func)
    if not parts:
        return None
    origin = imports.get(parts[0])
    if origin is None:
        return None
    return ".".join([origin] + parts[1:])


# -- REP001: wall-clock reads ----------------------------------------------------

_WALL_CLOCK_CALLS = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "time.perf_counter": "time.perf_counter()",
    "time.perf_counter_ns": "time.perf_counter_ns()",
    "time.monotonic": "time.monotonic()",
    "time.monotonic_ns": "time.monotonic_ns()",
    "time.process_time": "time.process_time()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
    "datetime.datetime.today": "datetime.today()",
    "datetime.date.today": "date.today()",
}


def check_rep001(context: ModuleContext) -> Iterator[Finding]:
    if context.module_name in TIMING_ALLOWLIST_MODULES:
        return
    imports = _import_map(context.tree)
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = _resolve_call(node.func, imports)
        if resolved in _WALL_CLOCK_CALLS:
            yield _finding(
                context, node, "REP001",
                f"wall-clock read {_WALL_CLOCK_CALLS[resolved]} in simulation "
                f"logic; simulated behaviour must depend only on the simulated "
                f"clock (timing/bench modules belong on the allowlist)")


# -- REP002: unseeded randomness -------------------------------------------------

#: numpy.random entry points that *construct* seedable generators.
_SEEDED_CONSTRUCTORS = {"numpy.random.default_rng", "numpy.random.Generator",
                        "numpy.random.SeedSequence", "numpy.random.RandomState",
                        "random.Random", "random.SystemRandom"}


def check_rep002(context: ModuleContext) -> Iterator[Finding]:
    imports = _import_map(context.tree)
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = _resolve_call(node.func, imports)
        if resolved is None:
            continue
        if resolved in _SEEDED_CONSTRUCTORS:
            # Seedable constructor — but only when actually seeded.
            if not node.args and not node.keywords:
                yield _finding(
                    context, node, "REP002",
                    f"{resolved}() without a seed draws OS entropy; thread a "
                    f"seed from the run configuration")
            continue
        if resolved.startswith("random.") or resolved.startswith("numpy.random."):
            yield _finding(
                context, node, "REP002",
                f"module-level randomness {resolved}() is process-globally "
                f"seeded (or unseeded); use a seeded Generator/Random "
                f"instance threaded from the run configuration")


# -- REP003: nondeterministic iteration order ------------------------------------

_LISTING_CALLS = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
#: Methods on Path-like objects returning directory entries in OS order.
_LISTING_METHODS = {"iterdir", "glob", "rglob"}
_ORDER_SINKS = {"sorted", "min", "max", "sum", "len", "frozenset"}


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


def _set_typed_names(scope: ast.AST) -> Set[str]:
    """Names in ``scope`` only ever assigned set-valued expressions.

    Deliberately shallow (no dataflow): a name qualifies when every plain
    assignment to it in the scope binds a set literal/comprehension or a
    ``set(...)``/``frozenset(...)`` call, and it is never rebound by a loop
    or ``with`` target.
    """
    set_bound: Set[str] = set()
    otherwise_bound: Set[str] = set()
    for node in _scope_nodes(scope):
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            targets = [node.target]
        elif isinstance(node, (ast.withitem,)) and node.optional_vars is not None:
            targets = [node.optional_vars]
        for target in targets:
            for name_node in ast.walk(target):
                if not isinstance(name_node, ast.Name):
                    continue
                if value is not None and _is_set_expr(value):
                    set_bound.add(name_node.id)
                else:
                    otherwise_bound.add(name_node.id)
    return set_bound - otherwise_bound


def _consumed_ordered(context: ModuleContext, node: ast.AST) -> bool:
    """Whether a listing call's result flows into an order-restoring or
    order-insensitive sink — directly (``sorted(os.listdir(p))``) or through
    a comprehension (``sorted(p for p in path.rglob("*.py") if ...)``)."""
    for ancestor in context.ancestors(node):
        if isinstance(ancestor, (ast.comprehension, ast.GeneratorExp,
                                 ast.ListComp)):
            continue
        return (isinstance(ancestor, ast.Call)
                and isinstance(ancestor.func, ast.Name)
                and ancestor.func.id in _ORDER_SINKS)
    return False


def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """The nodes owned by a scope, not descending into nested functions."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def check_rep003(context: ModuleContext) -> Iterator[Finding]:
    imports = _import_map(context.tree)
    scopes = [context.tree] + [n for n in ast.walk(context.tree)
                               if isinstance(n, (ast.FunctionDef,
                                                 ast.AsyncFunctionDef))]
    set_names_by_scope = {scope: _set_typed_names(scope) for scope in scopes}

    def is_set_valued(scope: ast.AST, node: ast.AST) -> bool:
        if _is_set_expr(node):
            return True
        return (isinstance(node, ast.Name)
                and node.id in set_names_by_scope.get(scope, ()))

    for scope in scopes:
        for node in _scope_nodes(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if is_set_valued(scope, node.iter):
                    yield _finding(
                        context, node.iter, "REP003",
                        "iterating a set: iteration order depends on hash "
                        "seeding and insertion history; iterate a sorted() "
                        "or insertion-ordered container instead")
            elif isinstance(node, ast.comprehension):
                if is_set_valued(scope, node.iter):
                    yield _finding(
                        context, node.iter, "REP003",
                        "comprehension over a set: iteration order depends "
                        "on hash seeding and insertion history; sort first")
            elif isinstance(node, ast.Call):
                if (isinstance(node.func, ast.Name)
                        and node.func.id in ("list", "tuple")
                        and len(node.args) == 1
                        and is_set_valued(scope, node.args[0])):
                    yield _finding(
                        context, node, "REP003",
                        f"{node.func.id}() over a set produces a "
                        f"nondeterministically ordered sequence; use sorted()")
                    continue
                resolved = _resolve_call(node.func, imports)
                is_listing = resolved in _LISTING_CALLS or (
                    resolved is None and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _LISTING_METHODS)
                if is_listing and not _consumed_ordered(context, node):
                    what = resolved or f".{node.func.attr}()"
                    yield _finding(
                        context, node, "REP003",
                        f"directory listing {what} is consumed unsorted; the "
                        f"OS returns entries in arbitrary order — wrap in "
                        f"sorted()")


# -- REP004: object identity in key positions ------------------------------------

_KEY_METHODS = {"get", "pop", "setdefault", "add", "discard", "remove",
                "__contains__", "index", "count"}


def _id_key_context(context: ModuleContext, node: ast.Call) -> Optional[str]:
    """Describe the key position an ``id()`` call occupies, if any."""
    child = node
    for ancestor in context.ancestors(node):
        if isinstance(ancestor, ast.Subscript) and _contains(ancestor.slice, child):
            return "a subscript key"
        if isinstance(ancestor, ast.Dict) and any(
                key is not None and _contains(key, child) for key in ancestor.keys):
            return "a dict-literal key"
        if isinstance(ancestor, (ast.Set, ast.SetComp)):
            return "a set member"
        if isinstance(ancestor, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in ancestor.ops):
            return "a membership test"
        if isinstance(ancestor, ast.Call):
            in_args = any(_contains(arg, child) for arg in ancestor.args)
            if in_args and isinstance(ancestor.func, ast.Attribute) \
                    and ancestor.func.attr in _KEY_METHODS:
                return f"an argument of .{ancestor.func.attr}()"
            if in_args and isinstance(ancestor.func, ast.Attribute) \
                    and ancestor.func.attr in ("heappush", "heappushpop"):
                return "a heap entry"
            if in_args and isinstance(ancestor.func, ast.Name) \
                    and ancestor.func.id in ("hash",):
                return "a hash input"
        if isinstance(ancestor, ast.Tuple):
            child = ancestor
            continue
        child = ancestor
    return None


def _contains(tree: ast.AST, node: ast.AST) -> bool:
    return any(candidate is node for candidate in ast.walk(tree))


def check_rep004(context: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "id" and len(node.args) == 1):
            continue
        where = _id_key_context(context, node)
        if where is not None:
            yield _finding(
                context, node, "REP004",
                f"id() used as {where}: object identity differs across runs "
                f"and processes and is reused after garbage collection — key "
                f"by a stable identifier (or by the object itself)")


# -- REP005: unpicklable payloads into process boundaries ------------------------

_BOUNDARY_METHODS = {"send", "put", "put_nowait", "apply", "apply_async",
                     "map", "map_async", "imap", "imap_unordered", "starmap",
                     "starmap_async", "submit"}
_BOUNDARY_CONSTRUCTORS = {"Process"}


def _local_defs(tree: ast.Module) -> Tuple[Set[str], Set[str]]:
    """Names of lambdas and of functions/classes defined inside a function.

    Returns ``(lambda_names, nested_def_names)``.  Both are unpicklable: the
    pickle protocol serializes functions and classes by qualified name, which
    a closure or local definition does not have.
    """
    lambda_names: Set[str] = set()
    nested: Set[str] = set()
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        lambda_names.add(target.id)
            elif (node is not func
                  and isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                        ast.ClassDef))):
                nested.add(node.name)
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    lambda_names.add(target.id)
    return lambda_names, nested


def _is_boundary_call(node: ast.Call) -> bool:
    if isinstance(node.func, ast.Attribute):
        return (node.func.attr in _BOUNDARY_METHODS
                or node.func.attr in _BOUNDARY_CONSTRUCTORS)
    return isinstance(node.func, ast.Name) and node.func.id in _BOUNDARY_CONSTRUCTORS


def check_rep005(context: ModuleContext) -> Iterator[Finding]:
    lambda_names, nested_defs = _local_defs(context.tree)
    for node in ast.walk(context.tree):
        if not (isinstance(node, ast.Call) and _is_boundary_call(node)):
            continue
        payloads = list(node.args) + [kw.value for kw in node.keywords]
        for payload in payloads:
            for sub in ast.walk(payload):
                if isinstance(sub, ast.Lambda):
                    yield _finding(
                        context, sub, "REP005",
                        "lambda passed across a process boundary: lambdas "
                        "are unpicklable — use a module-level function")
                elif isinstance(sub, ast.Name) and sub.id in lambda_names:
                    yield _finding(
                        context, sub, "REP005",
                        f"{sub.id!r} is bound to a lambda and crosses a "
                        f"process boundary: lambdas are unpicklable — use a "
                        f"module-level function")
                elif isinstance(sub, ast.Name) and sub.id in nested_defs:
                    yield _finding(
                        context, sub, "REP005",
                        f"{sub.id!r} is defined inside a function and crosses "
                        f"a process boundary: local functions/classes are "
                        f"unpicklable — move the definition to module level")


# -- REP006: lock discipline on declared guarded attributes ----------------------

#: Docstring markers exempting a method: it documents that its caller holds
#: the lock (the declared form of "a method documented as lock-held").
_LOCK_HELD_MARKERS = ("lock-held", "lock held", "caller holds", "caller must hold")


def _guarded_declaration(class_node: ast.ClassDef) -> Tuple[Set[str], str]:
    """The class's ``_LOCK_GUARDED`` attribute names and its lock attribute.

    ``_LOCK_GUARDED = ("_entries", "_inflight")`` declares the guarded set;
    an optional ``_LOCK_NAME = "_cache_lock"`` overrides the default
    ``_lock`` attribute the guard blocks must hold.
    """
    guarded: Set[str] = set()
    lock_name = "_lock"
    for statement in class_node.body:
        if not isinstance(statement, ast.Assign):
            continue
        for target in statement.targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id == "_LOCK_GUARDED" and isinstance(
                    statement.value, (ast.Tuple, ast.List, ast.Set)):
                guarded.update(e.value for e in statement.value.elts
                               if isinstance(e, ast.Constant)
                               and isinstance(e.value, str))
            elif target.id == "_LOCK_NAME" and isinstance(
                    statement.value, ast.Constant):
                lock_name = str(statement.value.value)
    return guarded, lock_name


def _holds_lock(with_node: ast.With, lock_name: str) -> bool:
    for item in with_node.items:
        expr = item.context_expr
        # Accept `with self._lock:` and `with self._lock, other:` forms, plus
        # acquire-style wrappers like `with self._lock.acquire_timeout():`.
        parts = _dotted_name(expr.func if isinstance(expr, ast.Call) else expr)
        if parts and len(parts) >= 2 and parts[0] == "self" and parts[1] == lock_name:
            return True
    return False


def _method_is_lock_held(method: ast.AST) -> bool:
    docstring = ast.get_docstring(method) or ""
    lowered = docstring.lower()
    return any(marker in lowered for marker in _LOCK_HELD_MARKERS)


def check_rep006(context: ModuleContext) -> Iterator[Finding]:
    for class_node in ast.walk(context.tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        guarded, lock_name = _guarded_declaration(class_node)
        if not guarded:
            continue
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            # __init__ publishes the object only after it returns, and a
            # documented lock-held method delegates the discipline upward.
            if method.name == "__init__" or _method_is_lock_held(method):
                continue
            yield from _check_method_body(context, class_node, method,
                                          guarded, lock_name)


def _check_method_body(context: ModuleContext, class_node: ast.ClassDef,
                       method: ast.AST, guarded: Set[str],
                       lock_name: str) -> Iterator[Finding]:
    def visit(node: ast.AST, locked: bool) -> Iterator[Finding]:
        if isinstance(node, ast.With):
            locked = locked or _holds_lock(node, lock_name)
        elif (isinstance(node, ast.Attribute)
              and isinstance(node.value, ast.Name) and node.value.id == "self"
              and node.attr in guarded and not locked):
            yield _finding(
                context, node, "REP006",
                f"{class_node.name}.{node.attr} is declared lock-guarded but "
                f"accessed outside `with self.{lock_name}:` in "
                f"{method.name}() (document the method as lock-held if the "
                f"caller holds the lock)")
        for child in ast.iter_child_nodes(node):
            yield from visit(child, locked)

    for statement in method.body:
        yield from visit(statement, False)


register_rule("REP001", "wall-clock-read",
              "wall-clock reads in simulation logic", check_rep001)
register_rule("REP002", "unseeded-randomness",
              "module-level / unseeded random draws", check_rep002)
register_rule("REP003", "unordered-iteration",
              "set iteration and unsorted directory listings", check_rep003)
register_rule("REP004", "identity-key",
              "id() in cache keys, fingerprints or tie-breakers", check_rep004)
register_rule("REP005", "unpicklable-payload",
              "lambdas/local defs crossing process boundaries", check_rep005)
register_rule("REP006", "lock-discipline",
              "lock-guarded attributes touched without the lock", check_rep006)
