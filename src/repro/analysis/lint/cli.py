"""The ``repro lint`` subcommand: text/JSON output, selection, baseline.

Exit codes follow the convention CI relies on:

* ``0`` — no findings outside the baseline;
* ``1`` — at least one *new* finding (or, with ``--no-baseline``, any
  finding at all);
* ``2`` — usage or I/O error (unknown rule code, unreadable baseline,
  missing path).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .engine import (DEFAULT_BASELINE_NAME, LintError, lint_paths,
                     load_baseline, split_by_baseline, write_baseline)
from .rules import available_rules

__all__ = ["build_lint_parser", "lint_main"]


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="llmservingsim lint",
        description="Determinism & concurrency static analysis for the "
                    "simulator (rule codes REP001-REP006; run --list-rules "
                    "for the catalog)")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=["text", "json"], default="text",
                        help="output format (json emits one object with "
                             "'findings' and 'baselined' arrays)")
    parser.add_argument("--select", action="append", default=[],
                        metavar="CODE",
                        help="run only these rule codes (repeatable or "
                             "comma-separated)")
    parser.add_argument("--ignore", action="append", default=[],
                        metavar="CODE",
                        help="skip these rule codes (repeatable or "
                             "comma-separated)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help=f"baseline file of accepted findings "
                             f"(default: {DEFAULT_BASELINE_NAME} in the "
                             f"current directory; missing file = empty)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="fail on every finding, ignoring any baseline")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record the current findings as the accepted "
                             "baseline and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def _split_codes(values: List[str]) -> List[str]:
    return [code.strip() for value in values for code in value.split(",")
            if code.strip()]


def lint_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``lint`` subcommand; returns a process exit code."""
    parser = build_lint_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in available_rules():
            print(f"{rule.code}  {rule.name:<22} {rule.summary}")
        return 0

    baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE_NAME)
    try:
        findings = lint_paths([Path(p) for p in args.paths],
                              select=_split_codes(args.select) or None,
                              ignore=_split_codes(args.ignore) or None,
                              relative_to=Path.cwd())
        if args.write_baseline:
            write_baseline(baseline_path, findings)
            print(f"wrote {len(findings)} finding(s) to {baseline_path}")
            return 0
        baseline = set() if args.no_baseline else load_baseline(baseline_path)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    new, baselined = split_by_baseline(findings, baseline)

    if args.format == "json":
        print(json.dumps({
            "findings": [f.as_dict() for f in new],
            "baselined": [f.as_dict() for f in baselined],
        }, indent=2))
    else:
        for finding in new:
            print(finding.format())
        if baselined:
            print(f"({len(baselined)} baselined finding(s) suppressed)")
        if new:
            print(f"{len(new)} new finding(s)")
    return 1 if new else 0
