"""Determinism & concurrency static analysis (``repro lint``).

The rule catalog lives in :mod:`repro.analysis.lint.rules` (codes
``REP001``–``REP006``), the rule-agnostic machinery in
:mod:`repro.analysis.lint.engine`, and the CLI subcommand in
:mod:`repro.analysis.lint.cli`.  See ``docs/correctness.md`` for the
determinism contract these rules enforce.
"""

from .engine import (BASELINE_SCHEMA, DEFAULT_BASELINE_NAME, Finding,
                     LintError, ModuleContext, iter_python_files, lint_file,
                     lint_paths, load_baseline, parse_module,
                     split_by_baseline, write_baseline)
from .rules import RULES, Rule, available_rules, register_rule
from .cli import build_lint_parser, lint_main

__all__ = ["Finding", "ModuleContext", "LintError", "parse_module",
           "iter_python_files", "lint_file", "lint_paths", "load_baseline",
           "write_baseline", "split_by_baseline", "BASELINE_SCHEMA",
           "DEFAULT_BASELINE_NAME", "Rule", "RULES", "register_rule",
           "available_rules", "build_lint_parser", "lint_main"]
