"""Runtime invariant checking for the cluster engine (``--check-invariants``).

The static pass (:mod:`repro.analysis.lint`) catches determinism hazards by
their syntactic shape; this module catches the *semantic* ones — bookkeeping
drift that no AST rule can see — by asserting, after every simulated
iteration, the three conservation laws the engine is built on:

1. **Event-time monotonicity.**  A replica's iterations tile its timeline:
   each starts no earlier than the previous one ended, ends exactly
   ``latency`` after it starts, and never moves backwards.  The cluster
   engines (lockstep and event-driven) both rely on this to interleave
   replicas on one clock.
2. **KV-token conservation.**  Every running request whose prompt has been
   processed holds exactly ``input_tokens + generated_tokens`` KV slots,
   through admission, growth, eviction, reload and truncation; the manager's
   byte accounting must agree with a recomputation from its per-request
   token counts and never exceed capacity.
3. **Cache-lookup accounting.**  With iteration reuse enabled, each
   iteration performs exactly one cache lookup, so the hit and miss
   counters advance by exactly one per iteration — together.

Violations raise :class:`InvariantViolation` naming the replica and (where
applicable) the request, so a broken run fails loudly at the first bad
iteration instead of producing a silently wrong fingerprint.

The checker is attached per replica when
:attr:`~repro.core.config.ClusterConfig.check_invariants` is set (CLI:
``--check-invariants``); under the process-pool backend it runs inside each
worker, next to the simulator it audits.  Overhead is a few comparisons per
iteration — cheap enough to leave on in CI (see
``benchmarks/test_invariant_overhead.py``).
"""

from __future__ import annotations

from typing import Optional

__all__ = ["InvariantViolation", "ReplicaInvariantChecker"]

#: Absolute slack for float comparisons on the simulated clock.  Iteration
#: latencies are O(1e-3..1e1) seconds; accumulated rounding across a long
#: run stays far below this.
_CLOCK_EPS = 1e-6


class InvariantViolation(AssertionError):
    """A cluster-engine invariant failed; the message names the culprit."""


class ReplicaInvariantChecker:
    """Audit one replica's simulator after every iteration it runs.

    Parameters
    ----------
    replica_id:
        The cluster-level replica id, used in violation messages.
    class_name:
        The replica's class name (heterogeneous fleets), for messages.
    simulator:
        The :class:`~repro.core.simulator.LLMServingSim` to audit.  The
        checker only reads public surfaces (scheduler, KV manager, result
        counters) and never mutates simulation state.
    """

    def __init__(self, replica_id: int, class_name: str, simulator) -> None:
        self.replica_id = replica_id
        self.class_name = class_name
        self.simulator = simulator
        self.iterations_checked = 0
        self._last_end_time: Optional[float] = None
        self._last_cache_lookups = (simulator.result.iteration_cache_hits
                                    + simulator.result.iteration_cache_misses)

    def _fail(self, what: str) -> None:
        raise InvariantViolation(
            f"replica {self.replica_id} [{self.class_name}]: {what}")

    def after_iteration(self, record) -> None:
        """Run every invariant against one fresh :class:`IterationRecord`."""
        self._check_monotonic_time(record)
        self._check_kv_conservation()
        self._check_cache_accounting(record)
        self.iterations_checked += 1

    # -- 1. event-time monotonicity -------------------------------------------

    def _check_monotonic_time(self, record) -> None:
        if record.latency < 0:
            self._fail(f"iteration {record.index} has negative latency "
                       f"{record.latency!r}")
        if record.end_time < record.start_time - _CLOCK_EPS:
            self._fail(f"iteration {record.index} ends at {record.end_time!r} "
                       f"before it starts at {record.start_time!r}")
        expected_end = record.start_time + record.latency
        if abs(record.end_time - expected_end) > _CLOCK_EPS:
            self._fail(f"iteration {record.index} end time {record.end_time!r} "
                       f"!= start + latency = {expected_end!r}")
        if (self._last_end_time is not None
                and record.start_time < self._last_end_time - _CLOCK_EPS):
            self._fail(f"iteration {record.index} starts at "
                       f"{record.start_time!r}, before the previous iteration "
                       f"ended at {self._last_end_time!r} — the replica clock "
                       f"moved backwards")
        self._last_end_time = record.end_time

    # -- 2. KV-token conservation ---------------------------------------------

    def _check_kv_conservation(self) -> None:
        kv = self.simulator.kv_manager
        used = kv.used_bytes()
        if not 0 <= used <= kv.capacity_bytes:
            self._fail(f"KV manager reports {used} used bytes outside "
                       f"[0, capacity={kv.capacity_bytes}]")
        for request in self.simulator.scheduler.running:
            if not request.prompt_processed:
                continue
            held = kv.tokens_of(request.request_id)
            expected = request.input_tokens + request.generated_tokens
            if held != expected:
                self._fail(
                    f"request {request.request_id} holds {held} KV tokens "
                    f"but input+generated = {request.input_tokens}+"
                    f"{request.generated_tokens} = {expected} — KV-token "
                    f"conservation broken across admit/evict/truncate")
        self._check_kv_byte_recomputation(kv)

    def _check_kv_byte_recomputation(self, kv) -> None:
        """The manager's byte total must be derivable from its entries."""
        if kv.name == "vllm":
            resident = kv.resident_requests()
            expected = sum(kv._pages_for(kv.tokens_of(rid))
                           for rid in resident) * kv.page_bytes
            if kv.used_bytes() != expected:
                self._fail(
                    f"paged KV manager reports {kv.used_bytes()} used bytes "
                    f"but its {len(resident)} resident request(s) recompute "
                    f"to {expected} — page accounting drifted")
        elif kv.name == "max":
            expected = len(kv._requests) * kv.reservation_bytes
            if kv.used_bytes() != expected:
                self._fail(
                    f"max-alloc KV manager reports {kv.used_bytes()} used "
                    f"bytes but {len(kv._requests)} admitted request(s) x "
                    f"{kv.reservation_bytes} reservation bytes = {expected}")

    # -- 3. cache hit+miss == lookup accounting -------------------------------

    def _check_cache_accounting(self, record) -> None:
        result = self.simulator.result
        lookups = result.iteration_cache_hits + result.iteration_cache_misses
        delta = lookups - self._last_cache_lookups
        self._last_cache_lookups = lookups
        cache = self.simulator.iteration_cache
        if cache is not None and cache.enabled:
            if delta != 1:
                self._fail(
                    f"iteration {record.index} advanced the cache hit+miss "
                    f"counters by {delta}, expected exactly 1 lookup per "
                    f"iteration (hits={result.iteration_cache_hits}, "
                    f"misses={result.iteration_cache_misses})")
        elif delta != 0:
            self._fail(
                f"iteration {record.index} advanced the cache counters by "
                f"{delta} with iteration reuse disabled")
