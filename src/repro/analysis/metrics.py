"""Error metrics used by the validation experiments.

The paper reports an average error rate of 14.7 % against the GPU serving
system (Figure 6) and a geometric-mean error of 8.88 % against NeuPIMs
(Figure 7).  This module implements those metrics: per-point relative
errors, mean absolute percentage error over aligned throughput series, and
the geometric mean of per-configuration error ratios.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

__all__ = ["relative_error", "mean_absolute_percentage_error", "geometric_mean_error",
           "align_series", "series_error"]


def relative_error(measured: float, reference: float) -> float:
    """Absolute relative error ``|measured - reference| / reference``.

    A zero reference with a zero measurement is a perfect match (0.0); a zero
    reference with a non-zero measurement is treated as 100 % error.
    """
    if reference == 0:
        return 0.0 if measured == 0 else 1.0
    return abs(measured - reference) / abs(reference)


def mean_absolute_percentage_error(measured: Sequence[float], reference: Sequence[float]) -> float:
    """Mean of per-point relative errors over two equal-length series."""
    if len(measured) != len(reference):
        raise ValueError("series must have the same length")
    if not measured:
        return 0.0
    return sum(relative_error(m, r) for m, r in zip(measured, reference)) / len(measured)


def geometric_mean_error(errors: Iterable[float]) -> float:
    """Geometric mean of error values (each expressed as a fraction).

    Zero errors are floored at 0.1 % so the geometric mean remains defined,
    matching common practice in the systems literature.
    """
    values = [max(1e-3, e) for e in errors]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def align_series(series_a: Sequence[Tuple[float, float]],
                 series_b: Sequence[Tuple[float, float]]) -> List[Tuple[float, float, float]]:
    """Align two (time, value) series on their common time bins.

    Returns a list of ``(time, value_a, value_b)`` tuples for every time
    present in both series.
    """
    lookup = {round(t, 6): v for t, v in series_b}
    aligned = []
    for t, value in series_a:
        key = round(t, 6)
        if key in lookup:
            aligned.append((t, value, lookup[key]))
    return aligned


def series_error(series_a: Sequence[Tuple[float, float]],
                 series_b: Sequence[Tuple[float, float]],
                 skip_empty_bins: bool = True) -> float:
    """Average relative error between two aligned throughput-over-time series.

    ``series_b`` is the reference.  Bins where the reference is zero (no
    traffic) are skipped by default, since comparing idle periods would
    artificially deflate or inflate the error.
    """
    aligned = align_series(series_a, series_b)
    errors = []
    for _, value_a, value_b in aligned:
        if skip_empty_bins and value_b == 0:
            continue
        errors.append(relative_error(value_a, value_b))
    if not errors:
        return 0.0
    return sum(errors) / len(errors)
