"""Error metrics and SLO statistics used by the validation experiments.

The paper reports an average error rate of 14.7 % against the GPU serving
system (Figure 6) and a geometric-mean error of 8.88 % against NeuPIMs
(Figure 7).  This module implements those metrics — per-point relative
errors, mean absolute percentage error over aligned throughput series, and
the geometric mean of per-configuration error ratios — plus the
request-level SLO percentile statistics (p50/p95/p99 of time-to-first-token,
time-between-tokens and end-to-end latency) the cluster serving layer
reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..workload.request import Request

__all__ = ["relative_error", "mean_absolute_percentage_error", "geometric_mean_error",
           "align_series", "series_error",
           "percentile", "SLOSummary", "slo_summary", "time_between_tokens",
           "request_slo_metrics", "SLOAttainment", "slo_attainment"]


def relative_error(measured: float, reference: float) -> float:
    """Absolute relative error ``|measured - reference| / reference``.

    A zero reference with a zero measurement is a perfect match (0.0); a zero
    reference with a non-zero measurement is treated as 100 % error.
    """
    if reference == 0:
        return 0.0 if measured == 0 else 1.0
    return abs(measured - reference) / abs(reference)


def mean_absolute_percentage_error(measured: Sequence[float], reference: Sequence[float]) -> float:
    """Mean of per-point relative errors over two equal-length series."""
    if len(measured) != len(reference):
        raise ValueError("series must have the same length")
    if not measured:
        return 0.0
    return sum(relative_error(m, r) for m, r in zip(measured, reference)) / len(measured)


def geometric_mean_error(errors: Iterable[float]) -> float:
    """Geometric mean of error values (each expressed as a fraction).

    Zero errors are floored at 0.1 % so the geometric mean remains defined,
    matching common practice in the systems literature.
    """
    values = [max(1e-3, e) for e in errors]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def align_series(series_a: Sequence[Tuple[float, float]],
                 series_b: Sequence[Tuple[float, float]]) -> List[Tuple[float, float, float]]:
    """Align two (time, value) series on their common time bins.

    Returns a list of ``(time, value_a, value_b)`` tuples for every time
    present in both series.
    """
    lookup = {round(t, 6): v for t, v in series_b}
    aligned = []
    for t, value in series_a:
        key = round(t, 6)
        if key in lookup:
            aligned.append((t, value, lookup[key]))
    return aligned


def series_error(series_a: Sequence[Tuple[float, float]],
                 series_b: Sequence[Tuple[float, float]],
                 skip_empty_bins: bool = True) -> float:
    """Average relative error between two aligned throughput-over-time series.

    ``series_b`` is the reference.  Bins where the reference is zero (no
    traffic) are skipped by default, since comparing idle periods would
    artificially deflate or inflate the error.
    """
    aligned = align_series(series_a, series_b)
    errors = []
    for _, value_a, value_b in aligned:
        if skip_empty_bins and value_b == 0:
            continue
        errors.append(relative_error(value_a, value_b))
    if not errors:
        return 0.0
    return sum(errors) / len(errors)


# -- request-level SLO statistics ---------------------------------------------


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` with linear interpolation.

    ``q`` is expressed in percent (0-100).  Raises on an empty input so SLO
    reports cannot silently conflate "no data" with "zero latency".
    """
    if not values:
        raise ValueError("cannot take a percentile of an empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("percentile must be between 0 and 100")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return ordered[lower]
    weight = rank - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


@dataclass(frozen=True)
class SLOSummary:
    """Percentile summary of one latency metric across requests."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def empty(cls) -> "SLOSummary":
        return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, maximum=0.0)


def slo_summary(values: Sequence[float]) -> SLOSummary:
    """Summarize latency samples into the percentiles SLOs are written against."""
    values = list(values)
    if not values:
        return SLOSummary.empty()
    return SLOSummary(
        count=len(values),
        mean=sum(values) / len(values),
        p50=percentile(values, 50),
        p95=percentile(values, 95),
        p99=percentile(values, 99),
        maximum=max(values),
    )


def time_between_tokens(request: Request) -> float | None:
    """Mean inter-token gap of a finished request's generation phase.

    Defined for requests that generated at least two tokens; the first token
    is covered by TTFT, so the gap is measured from the first token to
    completion.
    """
    if request.first_token_time is None or request.finish_time is None:
        return None
    if request.generated_tokens < 2:
        return None
    return ((request.finish_time - request.first_token_time)
            / (request.generated_tokens - 1))


def request_slo_metrics(requests: Iterable[Request]) -> Dict[str, SLOSummary]:
    """Compute the standard serving SLO summaries over a set of requests.

    Returns summaries keyed ``"ttft"`` (time to first token), ``"tbt"``
    (time between tokens) and ``"e2e"`` (end-to-end latency).  Requests that
    have not reached the relevant milestone are excluded from that metric.
    """
    ttfts: List[float] = []
    tbts: List[float] = []
    e2es: List[float] = []
    for request in requests:
        if request.time_to_first_token is not None:
            ttfts.append(request.time_to_first_token)
        tbt = time_between_tokens(request)
        if tbt is not None:
            tbts.append(tbt)
        if request.end_to_end_latency is not None:
            e2es.append(request.end_to_end_latency)
    return {"ttft": slo_summary(ttfts), "tbt": slo_summary(tbts), "e2e": slo_summary(e2es)}


@dataclass(frozen=True)
class SLOAttainment:
    """Fraction of requests that met their latency SLO targets.

    ``ttft_met`` / ``e2e_met`` are ``None`` when no target was set for that
    metric.  Requests that never reached the relevant milestone (still
    pending, never produced a first token) count as *misses*, not as
    excluded — an unserved request is an SLO violation, which is exactly
    what under-provisioned autoscaling bounds should show.
    """

    total: int
    ttft_met: Optional[int] = None
    e2e_met: Optional[int] = None

    @property
    def ttft_rate(self) -> Optional[float]:
        """Fraction of requests meeting the TTFT target (None if untargeted)."""
        if self.ttft_met is None:
            return None
        return self.ttft_met / self.total if self.total else 1.0

    @property
    def e2e_rate(self) -> Optional[float]:
        """Fraction of requests meeting the E2E target (None if untargeted)."""
        if self.e2e_met is None:
            return None
        return self.e2e_met / self.total if self.total else 1.0


def slo_attainment(requests: Iterable[Request], ttft_target: Optional[float] = None,
                   e2e_target: Optional[float] = None) -> SLOAttainment:
    """Count how many requests met the given latency targets.

    Parameters
    ----------
    requests:
        The request population (served and unserved alike).
    ttft_target / e2e_target:
        SLO targets in seconds; ``None`` leaves that metric unassessed.
    """
    requests = list(requests)
    ttft_met = e2e_met = None
    if ttft_target is not None:
        if ttft_target <= 0:
            raise ValueError("ttft_target must be positive")
        ttft_met = sum(1 for r in requests
                       if r.time_to_first_token is not None
                       and r.time_to_first_token <= ttft_target)
    if e2e_target is not None:
        if e2e_target <= 0:
            raise ValueError("e2e_target must be positive")
        e2e_met = sum(1 for r in requests
                      if r.end_to_end_latency is not None
                      and r.end_to_end_latency <= e2e_target)
    return SLOAttainment(total=len(requests), ttft_met=ttft_met, e2e_met=e2e_met)
