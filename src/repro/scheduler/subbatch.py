"""Sub-batch partitioning for heterogeneous accelerator overlap.

Serial execution of a whole batch under-utilizes heterogeneous accelerators:
while the PIM devices run the batch's attention, the NPUs idle, and vice
versa.  NeuPIMs' sub-batch interleaving (the ``sub_batch`` flag of the
artifact) splits each batch into independent sub-batches so the operator
scheduler can overlap one sub-batch's attention on PIM with another
sub-batch's GEMMs on the NPU.

The partitioner splits a batch into ``num_sub_batches`` parts while keeping
a balance criterion even across parts: either the token count (compute load)
or the KV-context size (memory traffic), per Line 2 of Algorithm 1.
"""

from __future__ import annotations

import enum
from typing import List

from ..models.graph import BatchComposition, SequenceSpec

__all__ = ["PartitionCriteria", "SubBatchPartitioner"]


class PartitionCriteria(enum.Enum):
    """Balance criterion used when splitting a batch."""

    TOKENS = "tokens"      # balance compute load (new tokens per sub-batch)
    CONTEXT = "context"    # balance memory traffic (KV context per sub-batch)


class SubBatchPartitioner:
    """Splits a batch into balanced, independent sub-batches.

    Parameters
    ----------
    num_sub_batches:
        Number of parts to create; 1 disables interleaving.
    criteria:
        Balance criterion (tokens for compute fairness, context for memory
        fairness).
    """

    def __init__(self, num_sub_batches: int = 2,
                 criteria: PartitionCriteria = PartitionCriteria.TOKENS) -> None:
        if num_sub_batches <= 0:
            raise ValueError("num_sub_batches must be positive")
        self.num_sub_batches = num_sub_batches
        self.criteria = criteria

    def _weight(self, sequence: SequenceSpec) -> float:
        if self.criteria is PartitionCriteria.TOKENS:
            return float(sequence.new_tokens)
        return float(sequence.total_context)

    def partition(self, batch: BatchComposition) -> List[BatchComposition]:
        """Split ``batch`` into up to ``num_sub_batches`` balanced parts.

        Uses longest-processing-time-first greedy assignment: sequences are
        sorted by weight and each is placed into the currently lightest
        sub-batch.  Fewer parts are returned when the batch has fewer
        sequences than requested parts.
        """
        parts = min(self.num_sub_batches, batch.num_sequences)
        if parts <= 1:
            return [batch]

        buckets: List[List[SequenceSpec]] = [[] for _ in range(parts)]
        loads = [0.0] * parts
        for sequence in sorted(batch.sequences, key=self._weight, reverse=True):
            lightest = min(range(parts), key=lambda i: (loads[i], i))
            buckets[lightest].append(sequence)
            loads[lightest] += self._weight(sequence)

        return [BatchComposition(bucket) for bucket in buckets if bucket]

    def imbalance(self, sub_batches: List[BatchComposition]) -> float:
        """Relative spread of the balance criterion across sub-batches.

        Returns ``(max - min) / max`` of the per-sub-batch weights; zero means
        perfectly balanced.
        """
        if not sub_batches:
            return 0.0
        weights = [sum(self._weight(s) for s in sb.sequences) for sb in sub_batches]
        top = max(weights)
        if top == 0:
            return 0.0
        return (top - min(weights)) / top
