"""KV-cache management: paged (vLLM-style) and max-allocation baselines.

The KV cache stores the keys and values of every token of every active
request across every transformer block.  The paper adopts vLLM's demand
paging: the cache is divided into fixed-size pages (blocks of tokens), pages
are allocated on demand as sequences grow, and when capacity runs out the
most recently admitted request is evicted wholesale to host memory and
reloaded later.  Evictions and reloads become memory-transfer operators in
the execution graph.

Two managers are provided:

* :class:`PagedKVCacheManager` — the vLLM scheme (``kv_manage="vllm"``).
* :class:`MaxAllocKVCacheManager` — the conventional scheme that reserves
  space for the maximum possible sequence length at admission
  (``kv_manage="max"``), used as an ablation baseline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..models.architectures import ModelConfig

__all__ = ["KVMemoryEventType", "KVMemoryEvent", "KVCacheManager",
           "PagedKVCacheManager", "MaxAllocKVCacheManager", "build_kv_manager"]


class KVMemoryEventType(enum.Enum):
    """Kind of host<->device KV movement produced by the manager."""

    EVICT = "evict"    # device -> host
    RELOAD = "reload"  # host -> device


@dataclass(frozen=True)
class KVMemoryEvent:
    """One KV-cache migration, consumed by the graph converter.

    Attributes
    ----------
    event_type:
        Eviction (store to host) or reload (load from device).
    request_id:
        The request whose cache moved.
    num_bytes:
        Payload size of the migration.
    """

    event_type: KVMemoryEventType
    request_id: int
    num_bytes: float


class KVCacheManager:
    """Common interface of the KV-cache management schemes.

    Token-accounting convention shared by every implementation: admitting a
    request with ``num_tokens`` prompt tokens reserves ``num_tokens + 1``
    cache slots — the prompt plus the first token generated at the end of the
    initiation iteration.  ``tokens_of`` therefore reports ``num_tokens + 1``
    right after admission for every manager, so paged-vs-max ablations
    compare identical trajectories.
    """

    name = "base"

    def __init__(self, model: ModelConfig, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.model = model
        self.capacity_bytes = int(capacity_bytes)

    # -- interface -----------------------------------------------------------

    def can_admit(self, num_tokens: int) -> bool:
        """Whether a new request with ``num_tokens`` prompt tokens fits now."""
        raise NotImplementedError

    def admit(self, request_id: int, num_tokens: int) -> None:
        """Reserve cache space for a newly admitted request's prompt.

        Reserves ``num_tokens + 1`` slots (prompt + first generated token).
        """
        raise NotImplementedError

    def tokens_of(self, request_id: int) -> int:
        """Tokens currently accounted to an active request's cache."""
        raise NotImplementedError

    def can_grow(self, request_id: int, additional_tokens: int = 1) -> bool:
        """Whether an active request can extend its cache by ``additional_tokens``."""
        raise NotImplementedError

    def can_ever_grow(self, request_id: int, additional_tokens: int = 1) -> bool:
        """Whether the growth could *ever* succeed, given unlimited evictions.

        ``False`` means the request hit a hard per-sequence cap (the manager's
        maximum sequence length, or a footprint larger than the whole cache)
        that freeing capacity cannot lift; schedulers truncate such requests
        instead of stalling them forever.
        """
        return True

    def grow(self, request_id: int, additional_tokens: int = 1) -> None:
        """Extend an active request's cache (one generated token by default)."""
        raise NotImplementedError

    def release(self, request_id: int) -> None:
        """Free all cache space of a finished request."""
        raise NotImplementedError

    def used_bytes(self) -> int:
        raise NotImplementedError

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes()

    def utilization(self) -> float:
        """Fraction of the KV budget currently in use."""
        return self.used_bytes() / self.capacity_bytes


@dataclass
class _PagedEntry:
    """Bookkeeping for one request inside the paged manager."""

    tokens: int
    pages: int
    evicted: bool = False


class PagedKVCacheManager(KVCacheManager):
    """vLLM-style demand-paged KV-cache manager.

    Parameters
    ----------
    model:
        Model configuration (determines bytes per cached token).
    capacity_bytes:
        Aggregate device memory available to the KV cache.
    page_size_tokens:
        Tokens per page (vLLM's block size, 16 by default).
    """

    name = "vllm"

    def __init__(self, model: ModelConfig, capacity_bytes: int, page_size_tokens: int = 16) -> None:
        super().__init__(model, capacity_bytes)
        if page_size_tokens <= 0:
            raise ValueError("page_size_tokens must be positive")
        self.page_size_tokens = page_size_tokens
        self.page_bytes = page_size_tokens * model.kv_bytes_per_token()
        self.total_pages = max(1, self.capacity_bytes // self.page_bytes)
        self._entries: Dict[int, _PagedEntry] = {}
        self._admission_order: List[int] = []
        self.events: List[KVMemoryEvent] = []

    # -- helpers -------------------------------------------------------------

    def _pages_for(self, tokens: int) -> int:
        return -(-tokens // self.page_size_tokens)

    def _resident_pages(self) -> int:
        return sum(e.pages for e in self._entries.values() if not e.evicted)

    @property
    def free_pages(self) -> int:
        return self.total_pages - self._resident_pages()

    def used_bytes(self) -> int:
        return self._resident_pages() * self.page_bytes

    def drain_events(self) -> List[KVMemoryEvent]:
        """Return and clear the migrations accumulated since the last drain."""
        events, self.events = self.events, []
        return events

    def tokens_of(self, request_id: int) -> int:
        return self._entries[request_id].tokens

    def is_evicted(self, request_id: int) -> bool:
        return self._entries[request_id].evicted

    def resident_requests(self) -> List[int]:
        return [rid for rid, e in self._entries.items() if not e.evicted]

    def evicted_requests(self) -> List[int]:
        return [rid for rid in self._admission_order if self._entries[rid].evicted]

    # -- admission / growth --------------------------------------------------

    def can_admit(self, num_tokens: int) -> bool:
        return self._pages_for(num_tokens + 1) <= self.free_pages

    def admit(self, request_id: int, num_tokens: int) -> None:
        if request_id in self._entries:
            raise ValueError(f"request {request_id} is already admitted")
        pages = self._pages_for(num_tokens + 1)
        if pages > self.free_pages:
            raise MemoryError(f"not enough free KV pages to admit request {request_id}")
        self._entries[request_id] = _PagedEntry(tokens=num_tokens + 1, pages=pages)
        self._admission_order.append(request_id)

    def can_grow(self, request_id: int, additional_tokens: int = 1) -> bool:
        entry = self._entries[request_id]
        needed = self._pages_for(entry.tokens + additional_tokens) - entry.pages
        return needed <= self.free_pages

    def can_ever_grow(self, request_id: int, additional_tokens: int = 1) -> bool:
        entry = self._entries[request_id]
        return self._pages_for(entry.tokens + additional_tokens) <= self.total_pages

    def grow(self, request_id: int, additional_tokens: int = 1) -> None:
        entry = self._entries[request_id]
        if entry.evicted:
            raise RuntimeError(f"request {request_id} is evicted; reload it before growing")
        new_tokens = entry.tokens + additional_tokens
        needed = self._pages_for(new_tokens) - entry.pages
        if needed > self.free_pages:
            raise MemoryError(f"not enough free KV pages to grow request {request_id}")
        entry.tokens = new_tokens
        entry.pages += needed

    def release(self, request_id: int) -> None:
        self._entries.pop(request_id)
        self._admission_order.remove(request_id)

    # -- eviction / reload ---------------------------------------------------

    def _eviction_candidate(self, protected: Optional[set] = None) -> Optional[int]:
        """Most recently admitted resident request outside ``protected``."""
        protected = protected or set()
        for request_id in reversed(self._admission_order):
            entry = self._entries[request_id]
            if not entry.evicted and request_id not in protected:
                return request_id
        return None

    def _evict(self, request_id: int) -> None:
        """Move one resident request to host memory and record the event."""
        entry = self._entries[request_id]
        if entry.evicted:
            raise RuntimeError(f"request {request_id} is already evicted")
        entry.evicted = True
        self.events.append(KVMemoryEvent(
            event_type=KVMemoryEventType.EVICT, request_id=request_id,
            num_bytes=entry.pages * self.page_bytes))

    def evict_last_admitted(self, protected: Optional[List[int]] = None) -> Optional[int]:
        """Evict the most recently admitted resident request to host memory.

        ``protected`` requests are never evicted.  Returns the evicted
        request id, or ``None`` if nothing evictable is resident.
        """
        candidate = self._eviction_candidate(set(protected or []))
        if candidate is None:
            return None
        self._evict(candidate)
        return candidate

    def can_reload(self, request_id: int) -> bool:
        entry = self._entries[request_id]
        return entry.evicted and entry.pages <= self.free_pages

    def reload(self, request_id: int) -> None:
        """Bring an evicted request's pages back into device memory."""
        entry = self._entries[request_id]
        if not entry.evicted:
            raise RuntimeError(f"request {request_id} is not evicted")
        if entry.pages > self.free_pages:
            raise MemoryError(f"not enough free KV pages to reload request {request_id}")
        entry.evicted = False
        self.events.append(KVMemoryEvent(
            event_type=KVMemoryEventType.RELOAD, request_id=request_id,
            num_bytes=entry.pages * self.page_bytes))

    def ensure_capacity_for_growth(self, request_id: int, additional_tokens: int = 1,
                                   protected: Optional[List[int]] = None) -> List[int]:
        """Evict requests until ``request_id`` can grow; returns evicted ids.

        ``protected`` requests (typically the one being grown) are never
        evicted.  If eviction cannot create enough space the MemoryError from
        :meth:`grow` will surface to the caller.
        """
        protected_set = set(protected or [request_id])
        evicted: List[int] = []
        while not self.can_grow(request_id, additional_tokens):
            candidate = self.evict_last_admitted(protected=sorted(protected_set))
            if candidate is None:
                break
            evicted.append(candidate)
        return evicted


class MaxAllocKVCacheManager(KVCacheManager):
    """Conventional KV management: reserve the maximum sequence length upfront.

    Requests reserve ``max_seq_len`` tokens worth of cache at admission, so
    the achievable batch size is much smaller than with paging — the
    inefficiency vLLM's paging removes.
    """

    name = "max"

    def __init__(self, model: ModelConfig, capacity_bytes: int,
                 max_seq_len: Optional[int] = None) -> None:
        super().__init__(model, capacity_bytes)
        self.max_seq_len = max_seq_len or model.max_seq_len
        self.reservation_bytes = self.max_seq_len * model.kv_bytes_per_token()
        self._requests: Dict[int, int] = {}
        self.events: List[KVMemoryEvent] = []

    def used_bytes(self) -> int:
        return len(self._requests) * self.reservation_bytes

    def drain_events(self) -> List[KVMemoryEvent]:
        events, self.events = self.events, []
        return events

    def can_admit(self, num_tokens: int) -> bool:
        if num_tokens + 1 > self.max_seq_len:
            return False
        return self.used_bytes() + self.reservation_bytes <= self.capacity_bytes

    def admit(self, request_id: int, num_tokens: int) -> None:
        if request_id in self._requests:
            raise ValueError(f"request {request_id} is already admitted")
        if not self.can_admit(num_tokens):
            raise MemoryError(f"not enough reserved KV space to admit request {request_id}")
        # Same convention as the paged manager: prompt + first generated token.
        self._requests[request_id] = num_tokens + 1

    def tokens_of(self, request_id: int) -> int:
        return self._requests[request_id]

    def can_grow(self, request_id: int, additional_tokens: int = 1) -> bool:
        return self._requests[request_id] + additional_tokens <= self.max_seq_len

    def can_ever_grow(self, request_id: int, additional_tokens: int = 1) -> bool:
        # The reservation never changes, so a growth that fails now (the
        # max_seq_len cap) can never succeed later.
        return self.can_grow(request_id, additional_tokens)

    def grow(self, request_id: int, additional_tokens: int = 1) -> None:
        if not self.can_grow(request_id, additional_tokens):
            raise MemoryError(f"request {request_id} exceeded its maximum sequence reservation")
        self._requests[request_id] += additional_tokens

    def release(self, request_id: int) -> None:
        self._requests.pop(request_id)

    def resident_requests(self) -> List[int]:
        return list(self._requests)

    def evicted_requests(self) -> List[int]:
        return []


def build_kv_manager(kind: str, model: ModelConfig, capacity_bytes: int,
                     page_size_tokens: int = 16) -> KVCacheManager:
    """Create a KV manager by name (the ``kv_manage`` input parameter)."""
    kind = kind.lower()
    if kind == "vllm":
        return PagedKVCacheManager(model, capacity_bytes, page_size_tokens)
    if kind == "max":
        return MaxAllocKVCacheManager(model, capacity_bytes)
    raise ValueError(f"unknown kv_manage scheme {kind!r}; expected 'vllm' or 'max'")
