"""Request scheduling policies: Orca iteration-level and static batch-level.

The scheduler is the component that drives the whole co-simulation loop
(Figure 4): it keeps a clock, admits arrived requests into batches subject
to the KV-cache capacity and the maximum batch size, forms an
:class:`~repro.scheduler.batch.IterationPlan`, and — once the system
simulator reports the iteration's latency — advances its clock, updates
request progress and frees or reloads KV-cache space.

Two policies are provided, matching the artifact's ``scheduling`` knob:

* :class:`IterationLevelScheduler` (``"orca"``) — re-forms the batch every
  iteration, removing finished requests and admitting new ones immediately.
* :class:`StaticBatchScheduler` (``"static"``) — conventional batching that
  runs an admitted batch until *all* of its requests finish before admitting
  the next batch, used as an ablation baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..workload.request import Request, RequestState
from .batch import IterationPlan, format_batch
from .kv_cache import KVCacheManager, KVMemoryEvent, PagedKVCacheManager

__all__ = ["SchedulerStats", "BaseScheduler", "IterationLevelScheduler",
           "StaticBatchScheduler", "build_scheduler"]


@dataclass
class SchedulerStats:
    """Counters accumulated across a simulation run."""

    iterations: int = 0
    admitted_requests: int = 0
    finished_requests: int = 0
    evictions: int = 0
    reloads: int = 0
    stalled_growths: int = 0
    truncated_requests: int = 0
    max_batch_size_seen: int = 0


class BaseScheduler:
    """State and bookkeeping shared by both scheduling policies.

    Parameters
    ----------
    kv_manager:
        The KV-cache manager enforcing memory capacity.
    max_batch_size:
        Maximum number of requests per iteration (0 = unlimited, matching the
        artifact's ``max_batch`` default).
    batch_delay:
        Extra seconds a request must have been waiting before it may be
        admitted (the artifact's ``batch_delay`` knob; 0 by default).
    """

    name = "base"

    def __init__(self, kv_manager: KVCacheManager, max_batch_size: int = 0,
                 batch_delay: float = 0.0) -> None:
        if max_batch_size < 0:
            raise ValueError("max_batch_size must be non-negative")
        if batch_delay < 0:
            raise ValueError("batch_delay must be non-negative")
        self.kv_manager = kv_manager
        self.max_batch_size = max_batch_size
        self.batch_delay = batch_delay

        self.clock = 0.0
        self.pending: List[Request] = []
        self.running: List[Request] = []
        self.finished: List[Request] = []
        self._requests: Dict[int, Request] = {}
        self.stats = SchedulerStats()
        self._iteration_index = 0

    # -- request intake ------------------------------------------------------

    def submit(self, requests: List[Request]) -> None:
        """Add requests to the pending queue (sorted by arrival time)."""
        for request in requests:
            if request.request_id in self._requests:
                raise ValueError(f"duplicate request id {request.request_id}")
            self._requests[request.request_id] = request
            self.pending.append(request)
        self.pending.sort(key=lambda r: (r.arrival_time, r.request_id))

    @property
    def has_work(self) -> bool:
        """Whether any request still needs processing."""
        return bool(self.pending or self.running)

    def next_arrival_time(self) -> Optional[float]:
        """Arrival time of the earliest pending request, if any."""
        if not self.pending:
            return None
        return self.pending[0].arrival_time

    def _arrived_pending(self) -> List[Request]:
        cutoff = self.clock
        return [r for r in self.pending
                if r.arrival_time + self.batch_delay <= cutoff]

    def _batch_slots_left(self, current: int) -> int:
        if self.max_batch_size == 0:
            return len(self.pending)
        return max(0, self.max_batch_size - current)

    # -- policy interface ----------------------------------------------------

    def next_iteration(self) -> Optional[IterationPlan]:
        """Form the next iteration plan, or ``None`` when idle.

        If nothing can run now but requests are still pending (not yet
        arrived), the caller should advance the clock to
        :meth:`next_arrival_time` and retry.
        """
        raise NotImplementedError

    def complete_iteration(self, plan: IterationPlan, latency: float) -> None:
        """Record the completion of an iteration that took ``latency`` seconds."""
        raise NotImplementedError

    # -- shared completion handling ------------------------------------------

    def _advance_clock(self, latency: float) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.clock += latency

    def _finish_request(self, request: Request) -> None:
        self.running.remove(request)
        self.finished.append(request)
        self.kv_manager.release(request.request_id)
        self.stats.finished_requests += 1

    def _truncate_request(self, request: Request) -> None:
        """Finish a request whose cache can never grow again.

        The request hit a hard per-sequence cap (the manager's maximum
        sequence length, or a footprint larger than the whole cache); no
        amount of freed capacity unblocks it, so it is cut short the way
        serving systems truncate at the model's maximum length rather than
        stalled forever.
        """
        request.truncate(self.clock)
        self._finish_request(request)
        self.stats.truncated_requests += 1


class IterationLevelScheduler(BaseScheduler):
    """Orca-style iteration-level scheduling with paged KV management."""

    name = "orca"

    def next_iteration(self) -> Optional[IterationPlan]:
        memory_events: List[KVMemoryEvent] = []

        # 1. Grow the KV cache of running requests by the token generated in
        #    the upcoming iteration, evicting the most recently admitted
        #    requests when capacity runs out (vLLM's recompute-free swap).
        generation_requests: List[Request] = []
        if isinstance(self.kv_manager, PagedKVCacheManager):
            for request in list(self.running):
                if self.kv_manager.is_evicted(request.request_id):
                    continue
                if not self.kv_manager.can_ever_grow(request.request_id, 1):
                    # Larger than the whole cache could ever hold: truncate
                    # before evicting victims that cannot help anyway.
                    self._truncate_request(request)
                    continue
                # Never evict a request that is already part of this
                # iteration's batch: its grown pages must stay resident.
                protected = [request.request_id] + [r.request_id for r in generation_requests]
                evicted_ids = self.kv_manager.ensure_capacity_for_growth(
                    request.request_id, 1, protected=protected)
                if evicted_ids:
                    self.stats.evictions += len(evicted_ids)
                if self.kv_manager.can_grow(request.request_id, 1):
                    self.kv_manager.grow(request.request_id, 1)
                    generation_requests.append(request)
            # Try to reload previously evicted requests while space permits.
            for request_id in self.kv_manager.evicted_requests():
                if self.kv_manager.can_reload(request_id):
                    self.kv_manager.reload(request_id)
                    self.stats.reloads += 1
                    request = self._requests[request_id]
                    if request in self.running and request not in generation_requests:
                        self.kv_manager.grow(request_id, 1)
                        generation_requests.append(request)
            memory_events.extend(self.kv_manager.drain_events())
        else:
            for request in list(self.running):
                if self.kv_manager.can_grow(request.request_id, 1):
                    self.kv_manager.grow(request.request_id, 1)
                    generation_requests.append(request)
                elif not self.kv_manager.can_ever_grow(request.request_id, 1):
                    self._truncate_request(request)

        # 2. Admit arrived pending requests while memory and batch slots allow.
        initiation_requests: List[Request] = []
        slots = self._batch_slots_left(len(generation_requests))
        for request in self._arrived_pending():
            if slots <= 0:
                break
            if not self.kv_manager.can_admit(request.input_tokens):
                break
            self.kv_manager.admit(request.request_id, request.input_tokens)
            request.state = RequestState.INITIATION
            request.admitted_time = self.clock
            self.pending.remove(request)
            self.running.append(request)
            initiation_requests.append(request)
            self.stats.admitted_requests += 1
            slots -= 1
        if isinstance(self.kv_manager, PagedKVCacheManager):
            memory_events.extend(self.kv_manager.drain_events())

        if not generation_requests and not initiation_requests:
            return None

        plan = format_batch(self._iteration_index, self.clock,
                            initiation_requests, generation_requests, memory_events)
        self._iteration_index += 1
        self.stats.iterations += 1
        self.stats.max_batch_size_seen = max(self.stats.max_batch_size_seen, plan.num_requests)
        return plan

    def complete_iteration(self, plan: IterationPlan, latency: float) -> None:
        self._advance_clock(latency)
        for request in plan.initiation_requests:
            request.record_prompt_done(self.clock)
            if request.is_finished:
                self._finish_request(request)
        for request in plan.generation_requests:
            request.record_generated_token(self.clock)
            if request.is_finished:
                self._finish_request(request)


class StaticBatchScheduler(BaseScheduler):
    """Conventional batch-level scheduling (no iteration-level rescheduling).

    A batch is admitted when the system is idle and runs until every request
    in it finishes; no new requests join mid-flight.  This is the baseline
    Orca improves upon and is used by the scheduling ablation benchmark.
    """

    name = "static"

    def __init__(self, kv_manager: KVCacheManager, max_batch_size: int = 0,
                 batch_delay: float = 0.0) -> None:
        super().__init__(kv_manager, max_batch_size, batch_delay)
        self._current_batch: List[Request] = []
        self._batch_initiated = False

    def next_iteration(self) -> Optional[IterationPlan]:
        memory_events: List[KVMemoryEvent] = []

        # Admit a fresh batch only when the previous one fully drained.
        if not self._current_batch:
            self._batch_initiated = False
            slots = self._batch_slots_left(0)
            for request in self._arrived_pending():
                if slots <= 0:
                    break
                if not self.kv_manager.can_admit(request.input_tokens):
                    break
                self.kv_manager.admit(request.request_id, request.input_tokens)
                request.state = RequestState.INITIATION
                request.admitted_time = self.clock
                self.pending.remove(request)
                self.running.append(request)
                self._current_batch.append(request)
                self.stats.admitted_requests += 1
                slots -= 1
            if hasattr(self.kv_manager, "drain_events"):
                memory_events.extend(self.kv_manager.drain_events())
            if not self._current_batch:
                return None

        if not self._batch_initiated:
            initiation = list(self._current_batch)
            generation: List[Request] = []
            self._batch_initiated = True
        else:
            initiation = []
            # Only requests whose KV cache can actually grow join the batch;
            # the rest stall this iteration (they would otherwise generate
            # tokens with no pages backing them) and retry once finishing
            # requests release capacity.
            generation = []
            for request in list(self._current_batch):
                if request.is_finished:
                    continue
                if self.kv_manager.can_grow(request.request_id, 1):
                    self.kv_manager.grow(request.request_id, 1)
                    generation.append(request)
                elif not self.kv_manager.can_ever_grow(request.request_id, 1):
                    # A hard sequence cap (e.g. the max-alloc manager's
                    # max_seq_len): waiting cannot unblock it, so cut the
                    # request short instead of head-of-line blocking the batch.
                    self._truncate_request(request)
                    self._current_batch.remove(request)
                else:
                    self.stats.stalled_growths += 1
            if hasattr(self.kv_manager, "drain_events"):
                memory_events.extend(self.kv_manager.drain_events())
            if not generation:
                if not self._current_batch:
                    # Truncation drained the whole batch: immediately try to
                    # admit a fresh one rather than reporting an idle round.
                    return self.next_iteration()
                return None

        plan = format_batch(self._iteration_index, self.clock, initiation, generation, memory_events)
        self._iteration_index += 1
        self.stats.iterations += 1
        self.stats.max_batch_size_seen = max(self.stats.max_batch_size_seen, plan.num_requests)
        return plan

    def complete_iteration(self, plan: IterationPlan, latency: float) -> None:
        self._advance_clock(latency)
        for request in plan.initiation_requests:
            request.record_prompt_done(self.clock)
            if request.is_finished:
                self._finish_request(request)
                self._current_batch.remove(request)
        for request in plan.generation_requests:
            request.record_generated_token(self.clock)
            if request.is_finished:
                self._finish_request(request)
                self._current_batch.remove(request)


def build_scheduler(kind: str, kv_manager: KVCacheManager, max_batch_size: int = 0,
                    batch_delay: float = 0.0) -> BaseScheduler:
    """Create a scheduler by name (the ``scheduling`` input parameter)."""
    kind = kind.lower()
    if kind == "orca":
        return IterationLevelScheduler(kv_manager, max_batch_size, batch_delay)
    if kind == "static":
        return StaticBatchScheduler(kv_manager, max_batch_size, batch_delay)
    raise ValueError(f"unknown scheduling policy {kind!r}; expected 'orca' or 'static'")
