"""Scheduling substrate: iteration-level scheduling, KV paging, memory budgeting."""

from .batch import IterationPlan, format_batch
from .kv_cache import (KVCacheManager, KVMemoryEvent, KVMemoryEventType,
                       MaxAllocKVCacheManager, PagedKVCacheManager, build_kv_manager)
from .memory import MemoryBudget, compute_kv_budget
from .scheduler import (BaseScheduler, IterationLevelScheduler, SchedulerStats,
                        StaticBatchScheduler, build_scheduler)
from .subbatch import PartitionCriteria, SubBatchPartitioner

__all__ = [
    "IterationPlan", "format_batch",
    "KVCacheManager", "KVMemoryEvent", "KVMemoryEventType",
    "MaxAllocKVCacheManager", "PagedKVCacheManager", "build_kv_manager",
    "MemoryBudget", "compute_kv_budget",
    "BaseScheduler", "IterationLevelScheduler", "SchedulerStats",
    "StaticBatchScheduler", "build_scheduler",
    "PartitionCriteria", "SubBatchPartitioner",
]
