"""Accelerator memory model: capacity budgeting for weights, KV cache and activations.

ASTRA-sim's memory model lacks capacity constraints; LLMServingSim adds them
because LLM serving is extremely sensitive to memory capacity (model weights
plus a KV cache that grows with every generated token).  This module
computes the memory budget available to the KV cache on a serving system:
aggregate device memory minus the sharded model weights minus an activation
reserve.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.architectures import ModelConfig

__all__ = ["MemoryBudget", "compute_kv_budget"]


@dataclass(frozen=True)
class MemoryBudget:
    """Memory capacity available for the KV cache across the serving system.

    Attributes
    ----------
    total_device_bytes:
        Aggregate local memory across all compute devices.
    weight_bytes:
        Bytes occupied by model parameters (full copy per data-parallel
        replica; sharded across tensor/pipeline-parallel devices).
    activation_reserve_bytes:
        Bytes reserved for activations and workspace.
    kv_capacity_bytes:
        Bytes left for KV-cache pages.
    """

    total_device_bytes: int
    weight_bytes: int
    activation_reserve_bytes: int
    kv_capacity_bytes: int

    def __post_init__(self) -> None:
        if self.kv_capacity_bytes < 0:
            raise ValueError(
                "model weights and activation reserve exceed the system's device memory; "
                "add devices or reduce the activation reserve")

    @property
    def kv_fraction(self) -> float:
        """Fraction of device memory available to the KV cache."""
        if self.total_device_bytes == 0:
            return 0.0
        return self.kv_capacity_bytes / self.total_device_bytes


def compute_kv_budget(model: ModelConfig, num_devices: int, device_memory_bytes: int,
                      activation_fraction: float = 0.05) -> MemoryBudget:
    """Compute the KV-cache budget of a serving system.

    Parameters
    ----------
    model:
        The model being served; its parameters occupy ``model.param_bytes``
        once across the (tensor/pipeline) parallel group.
    num_devices:
        Number of compute devices holding weights and KV cache.
    device_memory_bytes:
        Local memory per device.
    activation_fraction:
        Fraction of total memory reserved for activations / workspace.

    Raises
    ------
    ValueError
        If the model does not fit in the aggregate device memory.
    """
    if num_devices <= 0:
        raise ValueError("num_devices must be positive")
    if device_memory_bytes <= 0:
        raise ValueError("device_memory_bytes must be positive")
    if not 0 <= activation_fraction < 1:
        raise ValueError("activation_fraction must be in [0, 1)")

    total = num_devices * device_memory_bytes
    weights = model.param_bytes
    reserve = int(total * activation_fraction)
    kv = total - weights - reserve
    if kv < 0:
        raise ValueError(
            f"model {model.name} needs {weights / 1e9:.1f} GB of weights but the system only has "
            f"{total / 1e9:.1f} GB of device memory")
    return MemoryBudget(
        total_device_bytes=total,
        weight_bytes=weights,
        activation_reserve_bytes=reserve,
        kv_capacity_bytes=kv,
    )
