"""Batch formatting: turning pending/running requests into an iteration plan.

Each scheduling round produces an :class:`IterationPlan`: the set of
sequences to run this iteration (newly admitted prompts in the initiation
phase plus one token for every running request in the generation phase), the
KV-cache migrations the memory manager decided on, and bookkeeping used by
the scheduler once the iteration's latency is known.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..models.graph import BatchComposition, SequenceSpec
from ..models.layers import Phase
from ..workload.request import Request
from .kv_cache import KVMemoryEvent

__all__ = ["IterationPlan", "format_batch"]


@dataclass
class IterationPlan:
    """Everything the simulator needs to execute one serving iteration.

    Attributes
    ----------
    iteration_index:
        Monotonic iteration counter.
    scheduled_at:
        Scheduler clock when the plan was formed.
    batch:
        The iteration's batch composition (input to the model-graph builder).
    initiation_requests / generation_requests:
        The requests contributing prompt work / decode work this iteration.
    memory_events:
        KV-cache migrations (evictions and reloads) decided while forming the
        batch; the graph converter turns them into memory operators.
    """

    iteration_index: int
    scheduled_at: float
    batch: BatchComposition
    initiation_requests: List[Request] = field(default_factory=list)
    generation_requests: List[Request] = field(default_factory=list)
    memory_events: List[KVMemoryEvent] = field(default_factory=list)

    @property
    def num_requests(self) -> int:
        return len(self.initiation_requests) + len(self.generation_requests)

    @property
    def prompt_tokens(self) -> int:
        """Prompt tokens processed this iteration (initiation-phase work)."""
        return sum(r.input_tokens for r in self.initiation_requests)

    @property
    def generation_tokens(self) -> int:
        """Tokens generated this iteration (one per request past initiation).

        Requests finishing their initiation phase also emit their first
        generated token at the end of the iteration, so they are counted here
        as well, matching how serving systems report generation throughput.
        """
        return len(self.generation_requests) + len(self.initiation_requests)


def format_batch(iteration_index: int, now: float,
                 initiation_requests: List[Request],
                 generation_requests: List[Request],
                 memory_events: List[KVMemoryEvent]) -> IterationPlan:
    """Assemble an :class:`IterationPlan` from the scheduler's selections.

    The batch composition lists generation-phase sequences first (they only
    contribute one token each) followed by initiation-phase sequences, which
    mirrors how Orca-style systems order selective batching.
    """
    sequences: List[SequenceSpec] = []
    for request in generation_requests:
        sequences.append(SequenceSpec(
            request_id=request.request_id,
            context_length=request.context_length,
            new_tokens=1,
            phase=Phase.GENERATION,
        ))
    for request in initiation_requests:
        sequences.append(SequenceSpec(
            request_id=request.request_id,
            context_length=0,
            new_tokens=request.input_tokens,
            phase=Phase.INITIATION,
        ))
    if not sequences:
        raise ValueError("cannot format an empty batch")
    return IterationPlan(
        iteration_index=iteration_index,
        scheduled_at=now,
        batch=BatchComposition(sequences),
        initiation_requests=list(initiation_requests),
        generation_requests=list(generation_requests),
        memory_events=list(memory_events),
    )
