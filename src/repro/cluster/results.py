"""Aggregated results of a cluster simulation run.

A :class:`ClusterResult` merges the per-replica
:class:`~repro.core.results.ServingResult` objects produced by
:class:`~repro.cluster.simulator.ClusterSimulator` into cluster-level
serving metrics — aggregate throughput over the cluster makespan, the
request-to-replica assignment, per-replica load imbalance — and the
request-level SLO percentiles (p50/p95/p99 of TTFT, time-between-tokens and
end-to-end latency) that production serving deployments are judged by.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..analysis.metrics import SLOSummary, request_slo_metrics
from ..core.results import ServingResult
from ..workload.request import Request

__all__ = ["ClusterResult"]


@dataclass
class ClusterResult:
    """Full outcome of a multi-replica cluster simulation.

    Attributes
    ----------
    routing:
        Name of the routing policy that produced the assignment.
    replica_results:
        One :class:`ServingResult` per replica, in replica-index order.
    assignments:
        Mapping of request id to the replica index it was routed to.
    """

    routing: str
    replica_results: List[ServingResult] = field(default_factory=list)
    assignments: Dict[int, int] = field(default_factory=dict)

    # -- request-level views ---------------------------------------------------

    @property
    def num_replicas(self) -> int:
        return len(self.replica_results)

    @property
    def requests(self) -> List[Request]:
        """All requests served by the cluster, across every replica."""
        return [r for result in self.replica_results for r in result.requests]

    @property
    def finished_requests(self) -> List[Request]:
        return [r for r in self.requests if r.is_finished]

    def requests_per_replica(self) -> List[int]:
        """Number of requests routed to each replica."""
        return [len(result.requests) for result in self.replica_results]

    def assignment_imbalance(self) -> float:
        """Max-over-mean ratio of per-replica request counts (1.0 = balanced)."""
        counts = self.requests_per_replica()
        if not counts or sum(counts) == 0:
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean

    # -- aggregate serving metrics --------------------------------------------

    @property
    def makespan(self) -> float:
        """Cluster busy interval: earliest iteration start to latest end."""
        starts = [res.iterations[0].start_time for res in self.replica_results
                  if res.iterations]
        ends = [res.iterations[-1].end_time for res in self.replica_results
                if res.iterations]
        if not starts:
            return 0.0
        return max(ends) - min(starts)

    @property
    def total_prompt_tokens(self) -> int:
        return sum(res.total_prompt_tokens for res in self.replica_results)

    @property
    def total_generated_tokens(self) -> int:
        return sum(res.total_generated_tokens for res in self.replica_results)

    @property
    def prompt_throughput(self) -> float:
        """Cluster-wide prompt tokens per second over the cluster makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.total_prompt_tokens / self.makespan

    @property
    def generation_throughput(self) -> float:
        """Cluster-wide generated tokens per second over the cluster makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.total_generated_tokens / self.makespan

    @property
    def total_throughput(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return (self.total_prompt_tokens + self.total_generated_tokens) / self.makespan

    # -- SLO metrics -----------------------------------------------------------

    def slo_metrics(self) -> Dict[str, SLOSummary]:
        """p50/p95/p99 summaries of TTFT, time-between-tokens and E2E latency.

        Keys are ``"ttft"``, ``"tbt"`` and ``"e2e"``; see
        :func:`repro.analysis.metrics.request_slo_metrics`.
        """
        return request_slo_metrics(self.requests)

    def summary_rows(self) -> List[List[str]]:
        """Rows for :func:`repro.analysis.reporting.format_table` summaries."""
        slos = self.slo_metrics()
        rows = [
            ["replicas", str(self.num_replicas)],
            ["routing", self.routing],
            ["requests finished", f"{len(self.finished_requests)}/{len(self.requests)}"],
            ["requests per replica", "/".join(str(c) for c in self.requests_per_replica())],
            ["cluster makespan (s)", f"{self.makespan:.2f}"],
            ["generation throughput (tok/s)", f"{self.generation_throughput:.1f}"],
            ["total throughput (tok/s)", f"{self.total_throughput:.1f}"],
        ]
        for key, label in (("ttft", "TTFT"), ("tbt", "TBT"), ("e2e", "E2E latency")):
            summary = slos[key]
            rows.append([f"{label} p50/p95/p99 (s)",
                         f"{summary.p50:.3f} / {summary.p95:.3f} / {summary.p99:.3f}"])
        return rows
