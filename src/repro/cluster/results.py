"""Aggregated results of a cluster simulation run.

A :class:`ClusterResult` merges the per-replica
:class:`~repro.core.results.ServingResult` objects produced by
:class:`~repro.cluster.simulator.ClusterSimulator` into cluster-level
serving metrics — aggregate throughput over the cluster makespan, the
request-to-replica assignment, per-replica load imbalance — and the
request-level SLO percentiles (p50/p95/p99 of TTFT, time-between-tokens and
end-to-end latency) that production serving deployments are judged by.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.metrics import SLOAttainment, SLOSummary, request_slo_metrics, slo_attainment
from ..core.results import ServingResult
from ..workload.request import Request
from .autoscaler import ScalingEvent

__all__ = ["ClusterResult"]


@dataclass
class ClusterResult:
    """Full outcome of a multi-replica cluster simulation.

    Attributes
    ----------
    routing:
        Name of the routing policy that produced the assignment.
    replica_results:
        One :class:`ServingResult` per replica, in replica-index order.
    assignments:
        Mapping of request id to the replica index it was routed to.
    replica_classes:
        Replica-class label per replica index (all ``"default"`` for a
        homogeneous single-template fleet); drives the per-class SLO views.
    scaling_timeline:
        Autoscaling decisions in time order; empty when the run had no
        autoscaler.
    initial_provisioned:
        Replicas provisioned before the first scaling decision (the
        autoscaler's ``min_replicas``); ``None`` for runs without an
        autoscaler, where the whole fleet was active throughout.
    ttft_slo_target / e2e_slo_target:
        The SLO targets (seconds) the run was judged against, when set;
        :meth:`summary_rows` reports per-class attainment for them.
    """

    routing: str
    replica_results: List[ServingResult] = field(default_factory=list)
    assignments: Dict[int, int] = field(default_factory=dict)
    replica_classes: List[str] = field(default_factory=list)
    scaling_timeline: List[ScalingEvent] = field(default_factory=list)
    initial_provisioned: Optional[int] = None
    ttft_slo_target: Optional[float] = None
    e2e_slo_target: Optional[float] = None

    # -- request-level views ---------------------------------------------------

    @property
    def num_replicas(self) -> int:
        return len(self.replica_results)

    @property
    def requests(self) -> List[Request]:
        """All requests served by the cluster, across every replica."""
        return [r for result in self.replica_results for r in result.requests]

    @property
    def finished_requests(self) -> List[Request]:
        return [r for r in self.requests if r.is_finished]

    def requests_per_replica(self) -> List[int]:
        """Number of requests routed to each replica."""
        return [len(result.requests) for result in self.replica_results]

    def assignment_imbalance(self) -> float:
        """Max-over-mean ratio of per-replica request counts (1.0 = balanced)."""
        counts = self.requests_per_replica()
        if not counts or sum(counts) == 0:
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean

    # -- aggregate serving metrics --------------------------------------------

    @property
    def makespan(self) -> float:
        """Cluster busy interval: earliest iteration start to latest end."""
        starts = [res.iterations[0].start_time for res in self.replica_results
                  if res.iterations]
        ends = [res.iterations[-1].end_time for res in self.replica_results
                if res.iterations]
        if not starts:
            return 0.0
        return max(ends) - min(starts)

    @property
    def total_prompt_tokens(self) -> int:
        return sum(res.total_prompt_tokens for res in self.replica_results)

    @property
    def total_generated_tokens(self) -> int:
        return sum(res.total_generated_tokens for res in self.replica_results)

    @property
    def prompt_throughput(self) -> float:
        """Cluster-wide prompt tokens per second over the cluster makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.total_prompt_tokens / self.makespan

    @property
    def generation_throughput(self) -> float:
        """Cluster-wide generated tokens per second over the cluster makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.total_generated_tokens / self.makespan

    @property
    def total_throughput(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return (self.total_prompt_tokens + self.total_generated_tokens) / self.makespan

    # -- SLO metrics -----------------------------------------------------------

    def slo_metrics(self) -> Dict[str, SLOSummary]:
        """p50/p95/p99 summaries of TTFT, time-between-tokens and E2E latency.

        Keys are ``"ttft"``, ``"tbt"`` and ``"e2e"``; see
        :func:`repro.analysis.metrics.request_slo_metrics`.
        """
        return request_slo_metrics(self.requests)

    # -- per-replica-class views -----------------------------------------------

    def class_of_replica(self, index: int) -> str:
        """Class label of one replica (``"default"`` for unlabelled results)."""
        if index < len(self.replica_classes):
            return self.replica_classes[index]
        return "default"

    def requests_per_class(self) -> Dict[str, List[Request]]:
        """Requests grouped by the replica class that served them."""
        grouped: Dict[str, List[Request]] = {}
        for index, result in enumerate(self.replica_results):
            grouped.setdefault(self.class_of_replica(index), []).extend(result.requests)
        return grouped

    def per_class_slo_metrics(self) -> Dict[str, Dict[str, SLOSummary]]:
        """The :meth:`slo_metrics` breakdown per replica class."""
        return {name: request_slo_metrics(requests)
                for name, requests in self.requests_per_class().items()}

    def slo_attainment(self, ttft_target: Optional[float] = None,
                       e2e_target: Optional[float] = None) -> Dict[str, SLOAttainment]:
        """Fraction of requests meeting the SLO targets, per class + cluster-wide.

        Targets default to the run's configured ``ttft_slo`` / ``e2e_slo``;
        pass explicit values to evaluate other candidate SLOs after the fact.
        Keys are the replica-class names plus ``"cluster"`` for the whole
        request population.
        """
        ttft_target = ttft_target if ttft_target is not None else self.ttft_slo_target
        e2e_target = e2e_target if e2e_target is not None else self.e2e_slo_target
        attainment = {name: slo_attainment(requests, ttft_target, e2e_target)
                      for name, requests in self.requests_per_class().items()}
        attainment["cluster"] = slo_attainment(self.requests, ttft_target, e2e_target)
        return attainment

    # -- autoscaling views -----------------------------------------------------

    def _initial_provisioned(self) -> int:
        """Provisioned count before the first event (whole fleet if no scaler)."""
        if self.initial_provisioned is not None:
            return self.initial_provisioned
        if not self.scaling_timeline:
            return self.num_replicas
        # Older results without the field: each event changes the count by
        # exactly one, so reconstruct backwards from the first event.
        first = self.scaling_timeline[0]
        return first.provisioned_after + (1 if first.action == "scale-down" else -1)

    def peak_provisioned_replicas(self) -> int:
        """Largest provisioned-replica count the run reached."""
        counts = [self._initial_provisioned()]
        counts.extend(event.provisioned_after for event in self.scaling_timeline)
        return max(counts)

    def provisioned_series(self, initial: Optional[int] = None) -> List[tuple]:
        """``(time, provisioned_count)`` steps of the scaling timeline.

        ``initial`` overrides the provisioned count before the first event;
        it defaults to the recorded ``initial_provisioned``.
        """
        if not self.scaling_timeline:
            return []
        series = [(0.0, initial if initial is not None else self._initial_provisioned())]
        series.extend((event.time, event.provisioned_after)
                      for event in self.scaling_timeline)
        return series

    def summary_rows(self) -> List[List[str]]:
        """Rows for :func:`repro.analysis.reporting.format_table` summaries."""
        slos = self.slo_metrics()
        rows = [
            ["replicas", str(self.num_replicas)],
            ["routing", self.routing],
            ["requests finished", f"{len(self.finished_requests)}/{len(self.requests)}"],
            ["requests per replica", "/".join(str(c) for c in self.requests_per_replica())],
            ["cluster makespan (s)", f"{self.makespan:.2f}"],
            ["generation throughput (tok/s)", f"{self.generation_throughput:.1f}"],
            ["total throughput (tok/s)", f"{self.total_throughput:.1f}"],
        ]
        for key, label in (("ttft", "TTFT"), ("tbt", "TBT"), ("e2e", "E2E latency")):
            summary = slos[key]
            rows.append([f"{label} p50/p95/p99 (s)",
                         f"{summary.p50:.3f} / {summary.p95:.3f} / {summary.p99:.3f}"])
        if len(set(self.replica_classes)) > 1:
            counts: Dict[str, int] = {}
            for name in self.replica_classes:
                counts[name] = counts.get(name, 0) + 1
            rows.append(["replica classes",
                         ", ".join(f"{n}x {name}" for name, n in counts.items())])
        if self.scaling_timeline:
            rows.append(["scaling events",
                         f"{len(self.scaling_timeline)} "
                         f"(peak {self.peak_provisioned_replicas()} provisioned)"])
        if self.ttft_slo_target is not None or self.e2e_slo_target is not None:
            for name, attained in self.slo_attainment().items():
                parts = []
                if attained.ttft_rate is not None:
                    parts.append(f"TTFT {attained.ttft_rate:.1%}")
                if attained.e2e_rate is not None:
                    parts.append(f"E2E {attained.e2e_rate:.1%}")
                rows.append([f"SLO attainment [{name}]", ", ".join(parts)])
        return rows
