"""Cluster serving layer: replicated serving systems behind a request router."""

from .results import ClusterResult
from .router import (LeastKVUtilizationRouter, LeastOutstandingRouter, RequestRouter,
                     RoundRobinRouter, available_routers, build_router, register_router)
from .simulator import ClusterSimulator, Replica

__all__ = [
    "ClusterResult",
    "RequestRouter", "RoundRobinRouter", "LeastOutstandingRouter",
    "LeastKVUtilizationRouter", "available_routers", "build_router", "register_router",
    "ClusterSimulator", "Replica",
]
