"""Cluster serving layer: replicated serving systems behind a request router.

The fleet may be heterogeneous (per-class :class:`~repro.core.config.ReplicaSpec`
configurations), routed by load- or capability-aware policies, and autoscaled
against the arrival-rate curve with warm-up and drain semantics.
"""

from .autoscaler import Autoscaler, ReplicaLifecycle, ScalingEvent
from .backend import (ExecutionBackend, ProcessPoolBackend, ReplicaLoadSnapshot,
                      SerialBackend, available_backends, build_backend,
                      register_backend)
from .results import ClusterResult
from .router import (LeastKVUtilizationRouter, LeastOutstandingRouter, ReplicaView,
                     RequestRouter, RoundRobinRouter, SLOTTFTRouter,
                     WeightedCapacityRouter, available_routers, build_router,
                     register_router, routable_indices)
from .simulator import ClusterSimulator, Replica, estimate_device_throughput

__all__ = [
    "ClusterResult",
    "ReplicaView", "RequestRouter", "RoundRobinRouter", "LeastOutstandingRouter",
    "LeastKVUtilizationRouter", "SLOTTFTRouter", "WeightedCapacityRouter",
    "available_routers", "build_router", "register_router", "routable_indices",
    "Autoscaler", "ReplicaLifecycle", "ScalingEvent",
    "ExecutionBackend", "SerialBackend", "ProcessPoolBackend", "ReplicaLoadSnapshot",
    "available_backends", "build_backend", "register_backend",
    "ClusterSimulator", "Replica", "estimate_device_throughput",
]
