"""ClusterSimulator: N serving replicas behind a pluggable request router.

The single-system :class:`~repro.core.simulator.LLMServingSim` models one
serving instance (one device group running one model copy).  Production
deployments serve heavy traffic with many such instances behind a load
balancer, so this module scales the co-simulation out: it instantiates
``num_replicas`` fully independent ``LLMServingSim`` stacks — each with its
own scheduler, KV-cache manager, engine stack and system simulator — and
replays a request trace through a routing policy on a shared timeline.

The cluster loop interleaves the replicas on arrival boundaries: before a
request is routed, every replica is stepped until its local clock catches up
with the arrival time, so load-aware policies (least-outstanding-requests,
least-KV-utilization) observe each replica's queue and memory state *as of
the arrival*, not as of the end of the run.  Iterations in flight when a
request arrives are allowed to finish first, matching how iteration-level
schedulers pick up new work only at iteration boundaries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.config import ClusterConfig
from ..core.simulator import LLMServingSim
from ..workload.generator import RequestTrace
from ..workload.request import Request
from .results import ClusterResult
from .router import RequestRouter, build_router

__all__ = ["Replica", "ClusterSimulator"]


class Replica:
    """One serving replica plus the load view the router selects on."""

    def __init__(self, replica_id: int, simulator: LLMServingSim) -> None:
        self.replica_id = replica_id
        self.simulator = simulator
        self.iterations_run = 0

    # -- ReplicaView protocol (what routing policies may observe) -------------

    @property
    def outstanding_requests(self) -> int:
        """Requests queued or running on this replica right now."""
        scheduler = self.simulator.scheduler
        return len(scheduler.pending) + len(scheduler.running)

    @property
    def kv_utilization(self) -> float:
        """Fraction of this replica's KV-cache budget currently in use."""
        return self.simulator.kv_manager.utilization()

    # -- simulation control ----------------------------------------------------

    @property
    def clock(self) -> float:
        return self.simulator.clock

    @property
    def has_work(self) -> bool:
        return self.simulator.has_work

    def submit(self, request: Request) -> None:
        self.simulator.submit([request])

    def step(self) -> bool:
        """Simulate one iteration; returns False when no progress is possible."""
        record = self.simulator.step()
        if record is None:
            return False
        self.iterations_run += 1
        return True

    def advance_until(self, time: float, max_iterations: Optional[int] = None) -> None:
        """Step this replica until its clock reaches ``time`` or it runs dry."""
        while self.has_work and self.clock < time:
            if max_iterations is not None and self.iterations_run >= max_iterations:
                return
            if not self.step():
                return


class ClusterSimulator:
    """Simulate a cluster of LLM serving replicas behind a request router.

    Parameters
    ----------
    config:
        Cluster shape and the per-replica serving configuration.
    router:
        Optional pre-built routing policy; defaults to the policy named by
        ``config.routing``.  Custom policies registered through
        :func:`repro.cluster.register_router` are resolved the same way.
    """

    def __init__(self, config: Optional[ClusterConfig] = None,
                 router: Optional[RequestRouter] = None) -> None:
        self.config = config or ClusterConfig()
        self.router = router or build_router(self.config.routing)
        self.replicas: List[Replica] = [
            Replica(i, LLMServingSim(self.config.replica))
            for i in range(self.config.num_replicas)
        ]
        self.assignments: Dict[int, int] = {}

    # -- public API ------------------------------------------------------------

    def run(self, workload: "RequestTrace | Sequence[Request]",
            max_iterations_per_replica: Optional[int] = None) -> ClusterResult:
        """Serve a request trace across the cluster to completion.

        Parameters
        ----------
        workload:
            A request trace or plain list of requests; arrival order defines
            routing order.
        max_iterations_per_replica:
            Optional safety cap on iterations simulated per replica.

        Returns
        -------
        ClusterResult
            Per-replica results, the routing assignment and cluster-level
            throughput / SLO metrics.
        """
        requests = (list(workload.requests) if isinstance(workload, RequestTrace)
                    else list(workload))
        requests.sort(key=lambda r: (r.arrival_time, r.request_id))

        for request in requests:
            # Catch every replica up to this arrival so load-aware policies
            # see current queue depth and KV occupancy, then route.
            for replica in self.replicas:
                replica.advance_until(request.arrival_time, max_iterations_per_replica)
            index = self.router.select(self.replicas, request)
            if not 0 <= index < len(self.replicas):
                raise ValueError(f"router {self.router.name!r} chose invalid "
                                 f"replica index {index}")
            self.replicas[index].submit(request)
            self.assignments[request.request_id] = index

        # All requests are placed: drain every replica.
        for replica in self.replicas:
            while replica.has_work:
                if (max_iterations_per_replica is not None
                        and replica.iterations_run >= max_iterations_per_replica):
                    break
                if not replica.step():
                    break

        return ClusterResult(
            routing=self.router.name,
            replica_results=[r.simulator.collect_result() for r in self.replicas],
            assignments=dict(self.assignments),
        )
