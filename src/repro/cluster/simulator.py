"""ClusterSimulator: N serving replicas behind a pluggable request router.

The single-system :class:`~repro.core.simulator.LLMServingSim` models one
serving instance (one device group running one model copy).  Production
deployments serve heavy traffic with many such instances behind a load
balancer, so this module scales the co-simulation out: it instantiates a
fleet of fully independent ``LLMServingSim`` stacks — each with its own
scheduler, KV-cache manager, engine stack and system simulator — and
replays a request trace through a routing policy on a shared timeline.

The fleet may be heterogeneous: :class:`~repro.core.config.ClusterConfig`
expands a list of :class:`~repro.core.config.ReplicaSpec` into replicas of
different classes (NPU-only next to NPU+PIM, small ``npu_num`` next to
large), and each :class:`Replica` exposes capability signals — a roofline
throughput estimate, its KV budget, its engine kind — so capability-aware
routers can weigh *what* a replica is, not just how loaded it is.

Two cluster engines drive the timeline, selected by ``ClusterConfig.engine``:

* ``"event-driven"`` (default) pops arrival and warm-up events off a heap
  and, at each arrival, advances only the replicas that are *stale* — those
  with work whose local clock lags the arrival.  Idle, drained or stopped
  replicas cost nothing, and under the ``process-pool`` backend they cost
  no pipe round-trips either.
* ``"lockstep"`` is the legacy reference loop: every replica receives an
  ``advance_until`` at every arrival, even when it is a no-op.

Both engines are **bit-identical**: a skipped advance is exactly one that
``advance_until`` would have no-opped (``has_work`` false, clock already
caught up, or the iteration cap reached), and routing policies, the
autoscaler and lifecycle transitions observe the same replica views at the
same arrival boundaries either way.  The determinism suite in
``tests/test_backends.py`` pins this equivalence across engines *and*
execution backends.

Load-aware policies (least-outstanding-requests, least-KV-utilization,
predicted-TTFT) observe each replica's queue and memory state *as of the
arrival*, not as of the end of the run.  Iterations in flight when a
request arrives are allowed to finish first, matching how iteration-level
schedulers pick up new work only at iteration boundaries.

When the config carries an :class:`~repro.core.config.AutoscaleConfig`, an
:class:`~repro.cluster.autoscaler.Autoscaler` is threaded into the same
arrival loop: it observes every arrival, activates or drains replicas
against its bounds, and contributes the scaling timeline to the result.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import ClusterConfig, ServingSimConfig
from ..core.simulator import LLMServingSim
from ..engine.iteration_cache import (IterationReuseCache, SharedIterationCache,
                                      iteration_cache_file, load_iteration_cache,
                                      save_iteration_cache)
from ..models.architectures import get_model
from ..models.graph import BatchComposition, SequenceSpec, build_iteration_graph
from ..models.layers import Phase
from ..models.roofline import DevicePeaks
from ..scheduler.memory import compute_kv_budget
from ..workload.generator import RequestTrace
from ..workload.replay import trace_from_config
from ..workload.request import Request
from .autoscaler import Autoscaler, ReplicaLifecycle
from .backend import ExecutionBackend, ReplicaLoadSnapshot, build_backend
from .results import ClusterResult
from .router import RequestRouter, build_router

__all__ = ["Replica", "ClusterSimulator", "estimate_device_throughput"]

#: Context length used for the roofline capability estimate: long enough to
#: be KV-dominated, short enough to represent typical serving traffic.
_CAPABILITY_CONTEXT_TOKENS = 256

#: Memoized roofline estimates keyed by the hardware/model knobs they depend
#: on, so an N-replica fleet pays one capability graph build per replica
#: *class* instead of one per replica.
_THROUGHPUT_ESTIMATES: Dict[Tuple, Tuple[float, float]] = {}


def estimate_device_throughput(config: ServingSimConfig, model) -> "tuple[float, float]":
    """Roofline capability estimate of one replica.

    Builds a single-sequence generation iteration of the replica's model,
    computes its aggregate arithmetic intensity, and bounds the attainable
    throughput with the NPU's roofline (Section II-B / Figure 2(b)); the
    estimate scales with ``npu_num``.  Returns the pair
    ``(attainable_tflops, estimated_iteration_latency_seconds)`` — the static
    capability signal heterogeneity-aware routers weigh replicas by, and the
    latency prior the ``slo-ttft`` policy uses for replicas that have not
    measured an iteration yet.

    Estimates are memoized per configuration signature (model architecture
    plus the NPU knobs entering the roofline), so instantiating many
    replicas of the same class builds the capability graph once.
    """
    key = (model.name, model.num_layers, model.hidden_size, model.num_heads,
           model.ffn_hidden_size, model.dtype_bytes, config.npu_num,
           config.npu_config.peak_flops, config.npu_config.memory_bandwidth_gbs)
    cached = _THROUGHPUT_ESTIMATES.get(key)
    if cached is not None:
        return cached
    graph = build_iteration_graph(model, BatchComposition(
        [SequenceSpec(0, _CAPABILITY_CONTEXT_TOKENS, 1, Phase.GENERATION)]))
    flops = sum(op.flops for op in graph.block_operators)
    moved = sum(op.total_bytes for op in graph.block_operators)
    if not flops or not moved:
        estimate = (0.0, 0.0)
    else:
        peaks = DevicePeaks(name="replica-npu",
                            peak_tflops=config.npu_config.peak_flops / 1e12,
                            peak_bandwidth_gbs=config.npu_config.memory_bandwidth_gbs)
        attainable = config.npu_num * peaks.attainable_tflops(flops / moved)
        iteration_flops = flops * model.num_layers
        estimate = (attainable, iteration_flops / (attainable * 1e12))
    _THROUGHPUT_ESTIMATES[key] = estimate
    return estimate


class Replica:
    """One serving replica plus the load view the router selects on.

    A replica is constructed from its configuration only; the in-process
    :class:`~repro.core.simulator.LLMServingSim` behind the ``simulator``
    property is built lazily on first use.  Under the ``process-pool``
    execution backend the simulation lives in a worker process instead: the
    backend attaches a :class:`~repro.cluster.backend.ReplicaLoadSnapshot`
    after every command round-trip, the dynamic properties below read from
    it, and the master-side simulator is **never built** — the static
    capability signals, lifecycle state and routing interface are derived
    from the configuration alone and are identical either way.
    """

    def __init__(self, replica_id: int, config: ServingSimConfig,
                 class_name: str = "default",
                 iteration_cache: Optional[IterationReuseCache] = None,
                 check_invariants: bool = False) -> None:
        self.replica_id = replica_id
        self.config = config
        self.class_name = class_name
        self.iteration_cache = iteration_cache
        self.check_invariants = check_invariants
        self._invariant_checker = None
        self.model = get_model(config.model_name)
        self.lifecycle = ReplicaLifecycle.ACTIVE
        self.warm_at = 0.0
        self._iterations_run = 0
        self._latency_sum = 0.0
        self._simulator: Optional[LLMServingSim] = None
        self._kv_budget: Optional[int] = None
        self._snapshot: Optional[ReplicaLoadSnapshot] = None
        self._capability, self._estimated_latency = estimate_device_throughput(
            config, self.model)

    @property
    def simulator(self) -> LLMServingSim:
        """The in-process simulation stack, built on first access.

        Snapshot-backed replicas (process-pool master side) never touch this
        property, so the master skips N redundant stack constructions.
        """
        if self._simulator is None:
            self._simulator = LLMServingSim(self.config,
                                            iteration_cache=self.iteration_cache)
        return self._simulator

    def attach_snapshot(self, snapshot: ReplicaLoadSnapshot) -> None:
        """Detach from the local simulator: serve load views from ``snapshot``."""
        self._snapshot = snapshot

    # -- ReplicaView protocol (what routing policies may observe) -------------

    @property
    def outstanding_requests(self) -> int:
        """Requests queued or running on this replica right now."""
        if self._snapshot is not None:
            return self._snapshot.outstanding_requests
        scheduler = self.simulator.scheduler
        return len(scheduler.pending) + len(scheduler.running)

    @property
    def kv_utilization(self) -> float:
        """Fraction of this replica's KV-cache budget currently in use."""
        if self._snapshot is not None:
            return self._snapshot.kv_utilization
        return self.simulator.kv_manager.utilization()

    @property
    def iterations_run(self) -> int:
        """Iterations this replica has simulated so far."""
        if self._snapshot is not None:
            return self._snapshot.iterations_run
        return self._iterations_run

    @property
    def latency_sum(self) -> float:
        """Total simulated seconds across this replica's iterations."""
        if self._snapshot is not None:
            return self._snapshot.latency_sum
        return self._latency_sum

    @property
    def mean_iteration_latency(self) -> float:
        """Measured seconds per serving iteration (0.0 before the first one)."""
        if self.iterations_run == 0:
            return 0.0
        return self.latency_sum / self.iterations_run

    @property
    def device_throughput_tflops(self) -> float:
        """Roofline-attainable generation throughput across this replica's NPUs."""
        return self._capability

    @property
    def estimated_iteration_latency(self) -> float:
        """Roofline prior for seconds per iteration, before any measurement."""
        return self._estimated_latency

    @property
    def kv_budget_bytes(self) -> int:
        """Total KV-cache capacity of this replica (derived from its config)."""
        if self._kv_budget is None:
            self._kv_budget = (self.config.kv_capacity_bytes
                               or compute_kv_budget(self.model, self.config.npu_num,
                                                    self.config.npu_mem_bytes
                                                    ).kv_capacity_bytes)
        return self._kv_budget

    @property
    def engine_kind(self) -> str:
        """``"npu"`` or ``"npu+pim"``, the replica's accelerator complement."""
        return "npu" if self.config.pim_type == "none" else "npu+pim"

    @property
    def is_routable(self) -> bool:
        """Whether the router may place new requests on this replica."""
        return self.lifecycle is ReplicaLifecycle.ACTIVE

    # -- autoscaling lifecycle -------------------------------------------------

    def activate(self, now: float, warmup_seconds: float = 0.0) -> None:
        """Provision this replica; cold replicas pay the warm-up first."""
        if self.lifecycle in (ReplicaLifecycle.ACTIVE, ReplicaLifecycle.WARMING):
            return
        if self.lifecycle is ReplicaLifecycle.DRAINING:
            # Still warm: its engine state never left, so no warm-up applies.
            self.lifecycle = ReplicaLifecycle.ACTIVE
            return
        if warmup_seconds > 0:
            self.lifecycle = ReplicaLifecycle.WARMING
            self.warm_at = now + warmup_seconds
        else:
            self.lifecycle = ReplicaLifecycle.ACTIVE

    def deactivate(self) -> None:
        """Remove this replica from routing; outstanding requests drain."""
        if self.lifecycle in (ReplicaLifecycle.STOPPED, ReplicaLifecycle.DRAINING):
            return
        self.lifecycle = (ReplicaLifecycle.DRAINING if self.has_work
                          else ReplicaLifecycle.STOPPED)

    def update_lifecycle(self, now: float) -> None:
        """Apply time-driven transitions: warm-up completion, drain completion."""
        if self.lifecycle is ReplicaLifecycle.WARMING and now >= self.warm_at:
            self.lifecycle = ReplicaLifecycle.ACTIVE
        elif self.lifecycle is ReplicaLifecycle.DRAINING and not self.has_work:
            self.lifecycle = ReplicaLifecycle.STOPPED

    # -- simulation control ----------------------------------------------------

    @property
    def clock(self) -> float:
        if self._snapshot is not None:
            return self._snapshot.clock
        return self.simulator.clock

    @property
    def has_work(self) -> bool:
        if self._snapshot is not None:
            return self._snapshot.has_work
        return self.simulator.has_work

    def needs_advance(self, time: float, max_iterations: Optional[int] = None) -> bool:
        """Whether ``advance_until(time, max_iterations)`` would do anything.

        This is the event-driven engine's staleness predicate; it mirrors
        :meth:`advance_until`'s loop condition exactly, which is what makes
        skipping non-stale replicas provably a no-op.
        """
        if not self.has_work or self.clock >= time:
            return False
        return max_iterations is None or self.iterations_run < max_iterations

    def submit(self, request: Request) -> None:
        self.simulator.submit([request])

    def step(self) -> bool:
        """Simulate one iteration; returns False when no progress is possible."""
        if self.check_invariants and self._invariant_checker is None:
            # Built before the first step so the checker's cache-counter
            # baseline predates the first lookup.
            from ..analysis.invariants import ReplicaInvariantChecker
            self._invariant_checker = ReplicaInvariantChecker(
                self.replica_id, self.class_name, self.simulator)
        record = self.simulator.step()
        if record is None:
            return False
        if self._invariant_checker is not None:
            self._invariant_checker.after_iteration(record)
        self._iterations_run += 1
        self._latency_sum += record.latency
        return True

    def advance_until(self, time: float, max_iterations: Optional[int] = None) -> None:
        """Step this replica until its clock reaches ``time`` or it runs dry."""
        while self.has_work and self.clock < time:
            if max_iterations is not None and self.iterations_run >= max_iterations:
                return
            if not self.step():
                return


class ClusterSimulator:
    """Simulate a cluster of LLM serving replicas behind a request router.

    Parameters
    ----------
    config:
        Cluster shape (homogeneous template or heterogeneous replica specs),
        the routing policy, the cluster engine (event-driven or lockstep)
        and optional autoscaling bounds.
    router:
        Optional pre-built routing policy; defaults to the policy named by
        ``config.routing``.  Custom policies registered through
        :func:`repro.cluster.register_router` are resolved the same way.
        The autoscaler, by contrast, is always built here from
        ``config.autoscale`` — it must be bound to this simulator's replica
        list, so it cannot be meaningfully pre-built by the caller.
    backend:
        Optional pre-built execution backend; defaults to the backend named
        by ``config.execution_backend`` (``"serial"`` or ``"process-pool"``,
        plus anything registered through
        :func:`repro.cluster.register_backend`).

    Replicas of the same class whose configuration enables
    ``enable_iteration_reuse`` share one iteration-level reuse cache
    (``iteration_caches``, keyed by class name): a decode iteration
    simulated on one replica is a cache hit on every sibling.  The caches
    are :class:`~repro.engine.iteration_cache.SharedIterationCache`
    instances; under the ``process-pool`` backend they are served to the
    worker processes through a singleflight cache service, so cross-replica
    reuse holds under both backends.  When ``config.cache_dir`` is set the
    per-class caches are warm-started from disk before the run and
    persisted after it, so parameter sweeps pay for each unique iteration
    signature once across runs.
    """

    def __init__(self, config: Optional[ClusterConfig] = None,
                 router: Optional[RequestRouter] = None,
                 backend: Optional[ExecutionBackend] = None) -> None:
        self.config = config or ClusterConfig()
        self.router = router or build_router(self.config.routing)
        self.backend = backend or build_backend(self.config.execution_backend)
        self.iteration_caches: Dict[str, IterationReuseCache] = {}
        self._class_configs: Dict[str, ServingSimConfig] = {}
        self.replicas: List[Replica] = []
        for i, (class_name, replica_config) in enumerate(self.config.expanded_replicas()):
            self._class_configs.setdefault(class_name, replica_config)
            cache = None
            if replica_config.enable_iteration_reuse:
                cache = self.iteration_caches.setdefault(class_name,
                                                         SharedIterationCache())
            self.replicas.append(Replica(i, replica_config, class_name=class_name,
                                         iteration_cache=cache,
                                         check_invariants=self.config.check_invariants))
        if self.config.cache_dir is not None:
            self._load_persistent_caches()
        self.autoscaler: Optional[Autoscaler] = (
            Autoscaler(self.config.autoscale, self.replicas)
            if self.config.autoscale is not None else None)
        self.assignments: Dict[int, int] = {}

    # -- cache persistence ----------------------------------------------------

    def _load_persistent_caches(self) -> None:
        for class_name, cache in self.iteration_caches.items():
            replica_config = self._class_configs[class_name]
            load_iteration_cache(
                cache, iteration_cache_file(self.config.cache_dir, replica_config),
                replica_config)

    def _save_persistent_caches(self) -> None:
        for class_name, cache in self.iteration_caches.items():
            replica_config = self._class_configs[class_name]
            save_iteration_cache(
                cache, iteration_cache_file(self.config.cache_dir, replica_config),
                replica_config)

    # -- public API ------------------------------------------------------------

    def run(self, workload: "RequestTrace | Sequence[Request] | None" = None,
            max_iterations_per_replica: Optional[int] = None) -> ClusterResult:
        """Serve a request trace across the cluster to completion.

        Parameters
        ----------
        workload:
            A request trace or plain list of requests; arrival order defines
            routing order.  ``None`` replays the trace configured in
            ``config.trace_replay``, with sequence lengths clamped to the
            smallest model context window in the fleet.
        max_iterations_per_replica:
            Optional safety cap on iterations simulated per replica.

        Returns
        -------
        ClusterResult
            Per-replica results, the routing assignment, the scaling timeline
            (when autoscaling) and cluster-level throughput / SLO metrics.
        """
        if workload is None:
            if self.config.trace_replay is None:
                raise ValueError("run() needs a workload, or a ClusterConfig "
                                 "with trace_replay set")
            workload = trace_from_config(
                self.config.trace_replay,
                max_seq_len=min(r.model.max_seq_len for r in self.replicas))
        requests = (list(workload.requests) if isinstance(workload, RequestTrace)
                    else list(workload))
        requests.sort(key=lambda r: (r.arrival_time, r.request_id))

        backend = self.backend
        backend.bind(self.replicas, self.iteration_caches)
        try:
            if self.config.engine == "lockstep":
                self._run_lockstep(backend, requests, max_iterations_per_replica)
            else:
                self._run_event_driven(backend, requests, max_iterations_per_replica)

            # All requests are placed: drain every replica (including
            # replicas the autoscaler put into DRAINING — their requests
            # still finish), then refresh lifecycles one last time so
            # draining replicas that ran dry are recorded as STOPPED
            # instead of lingering in DRAINING forever.
            backend.drain_all(max_iterations_per_replica)
            for replica in self.replicas:
                replica.update_lifecycle(replica.clock)

            replica_results = backend.collect_results()
        finally:
            backend.close()

        if self.config.cache_dir is not None:
            self._save_persistent_caches()

        return ClusterResult(
            routing=self.router.name,
            replica_results=replica_results,
            assignments=dict(self.assignments),
            replica_classes=[r.class_name for r in self.replicas],
            scaling_timeline=(list(self.autoscaler.events)
                              if self.autoscaler is not None else []),
            initial_provisioned=(self.autoscaler.min_replicas
                                 if self.autoscaler is not None else None),
            ttft_slo_target=self.config.ttft_slo,
            e2e_slo_target=self.config.e2e_slo,
        )

    # -- cluster engines -------------------------------------------------------

    def _handle_arrival(self, backend: ExecutionBackend, request: Request) -> None:
        """Route one arrival (shared by both engines).

        The caller has already caught the relevant replicas up to the
        arrival time; this refreshes lifecycles (warm-ups that elapsed,
        drains that completed), lets the autoscaler react, then routes.
        """
        now = request.arrival_time
        for replica in self.replicas:
            replica.update_lifecycle(now)
        if self.autoscaler is not None:
            self.autoscaler.observe_arrival(now)
        index = self.router.select(self.replicas, request)
        if not 0 <= index < len(self.replicas):
            raise ValueError(f"router {self.router.name!r} chose invalid "
                             f"replica index {index}")
        if not self.replicas[index].is_routable:
            raise ValueError(f"router {self.router.name!r} chose replica "
                             f"{index}, which is "
                             f"{self.replicas[index].lifecycle.value} and "
                             f"may not accept routes")
        backend.submit(index, request)
        self.assignments[request.request_id] = index

    def _run_lockstep(self, backend: ExecutionBackend, requests: Sequence[Request],
                      max_iterations_per_replica: Optional[int]) -> None:
        """Legacy reference loop: advance *every* replica at every arrival."""
        for request in requests:
            backend.advance_all(request.arrival_time, max_iterations_per_replica)
            self._handle_arrival(backend, request)

    def _run_event_driven(self, backend: ExecutionBackend,
                          requests: Sequence[Request],
                          max_iterations_per_replica: Optional[int]) -> None:
        """Event-driven engine: a heap of timeline events, selective advances.

        Arrival events advance only the *stale* replicas — those whose
        ``advance_until`` would actually step (see
        :meth:`Replica.needs_advance`); idle, drained and stopped replicas
        are skipped entirely, which under the ``process-pool`` backend also
        skips their pipe round-trips.  Warm-up completions scheduled by the
        autoscaler are heap events too: they transition WARMING replicas to
        ACTIVE at their ``warm_at`` instant.  Skipped advances are provably
        no-ops and lifecycle state is only *observed* at arrival
        boundaries, so this engine is bit-identical to the lockstep loop.
        """
        events: List[Tuple[float, int, str, Optional[Request]]] = []
        sequence = 0
        for request in requests:
            events.append((request.arrival_time, sequence, "arrival", request))
            sequence += 1
        heapq.heapify(events)
        scheduled_warmups = set()

        while events:
            now, _, kind, request = heapq.heappop(events)
            if kind == "warmup":
                for replica in self.replicas:
                    if replica.lifecycle is ReplicaLifecycle.WARMING:
                        replica.update_lifecycle(now)
                continue
            stale = [index for index, replica in enumerate(self.replicas)
                     if replica.needs_advance(now, max_iterations_per_replica)]
            if stale:
                backend.advance(stale, now, max_iterations_per_replica)
            self._handle_arrival(backend, request)
            # Autoscaler decisions may have started warm-ups: schedule their
            # completion instants so the timeline stays event-driven.
            for replica in self.replicas:
                if (replica.lifecycle is ReplicaLifecycle.WARMING
                        and replica.warm_at > now):
                    key = (replica.replica_id, replica.warm_at)
                    if key not in scheduled_warmups:
                        scheduled_warmups.add(key)
                        heapq.heappush(events,
                                       (replica.warm_at, sequence, "warmup", None))
                        sequence += 1
