"""Diurnal autoscaling: replica count tracking the arrival-rate curve.

Production serving fleets are not provisioned statically — replica count
follows the load curve, trading idle capacity against SLO violations during
ramp-up.  The :class:`Autoscaler` reproduces that control loop inside the
cluster co-simulation: it watches a sliding window of request arrivals and
keeps ``ceil(window_rate / target_rate_per_replica)`` replicas provisioned
within ``[min_replicas, max_replicas]``.

Scaling is not free, which is the interesting part of the model:

* a **cold** replica activated by a scale-up decision spends
  ``warmup_seconds`` in the ``WARMING`` state, during which the router may
  not send it requests (model load and cache fill in a real deployment);
* a replica removed by a scale-down decision enters ``DRAINING`` — it stops
  accepting new routes but keeps simulating until its outstanding requests
  finish, then parks as ``STOPPED``;
* a ``DRAINING`` replica re-activated by a later scale-up skips the warm-up
  (its engine state is still resident).

Every decision is recorded as a :class:`ScalingEvent`, so a run over the
diurnal arrival generator yields the scaling timeline that
:class:`~repro.cluster.results.ClusterResult` reports.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Sequence

from ..core.config import AutoscaleConfig

__all__ = ["ReplicaLifecycle", "ScalingEvent", "Autoscaler"]


class ReplicaLifecycle(enum.Enum):
    """Autoscaling lifecycle of one replica."""

    ACTIVE = "active"      # routable and simulating
    WARMING = "warming"    # activated, not routable until the warm-up elapses
    DRAINING = "draining"  # not routable, finishing its outstanding requests
    STOPPED = "stopped"    # not routable, no outstanding work


@dataclass(frozen=True)
class ScalingEvent:
    """One autoscaling decision applied to one replica."""

    time: float
    action: str          # "scale-up" or "scale-down"
    replica_id: int
    replica_class: str
    provisioned_after: int  # ACTIVE + WARMING replicas once the action applied


class Autoscaler:
    """Sliding-window arrival-rate autoscaler over a fixed replica fleet.

    The fleet itself is allocated up front (``ClusterConfig`` still sizes the
    replica list); the autoscaler only flips replicas between active and
    parked states, which is how real deployments scale within a reserved
    node pool.  ``min_replicas`` replicas start ``ACTIVE``; the rest start
    ``STOPPED`` and are woken as load rises.

    Parameters
    ----------
    config:
        The scaling policy (bounds, window, warm-up, cooldown).
    replicas:
        The cluster's replica list; entries must expose the lifecycle
        interface of :class:`~repro.cluster.simulator.Replica`
        (``lifecycle``, ``activate``, ``deactivate``, ``outstanding_requests``).
    """

    def __init__(self, config: AutoscaleConfig, replicas: Sequence) -> None:
        if not replicas:
            raise ValueError("autoscaler needs at least one replica")
        self.config = config
        self.replicas = list(replicas)
        self.min_replicas = config.min_replicas
        self.max_replicas = config.max_replicas or len(self.replicas)
        if not self.min_replicas <= self.max_replicas <= len(self.replicas):
            raise ValueError("autoscaling bounds must satisfy "
                             "min <= max <= fleet size")
        self.events: List[ScalingEvent] = []
        self._arrivals: Deque[float] = deque()
        self._last_decision = -math.inf
        for index, replica in enumerate(self.replicas):
            replica.lifecycle = (ReplicaLifecycle.ACTIVE if index < self.min_replicas
                                 else ReplicaLifecycle.STOPPED)

    # -- observation -----------------------------------------------------------

    def provisioned(self) -> List:
        """Replicas currently serving or warming (the scaler's control set)."""
        return [r for r in self.replicas
                if r.lifecycle in (ReplicaLifecycle.ACTIVE, ReplicaLifecycle.WARMING)]

    def window_rate(self, now: float) -> float:
        """Arrival rate (requests/s) over the trailing window ending at ``now``."""
        horizon = now - self.config.window_seconds
        while self._arrivals and self._arrivals[0] < horizon:
            self._arrivals.popleft()
        return len(self._arrivals) / self.config.window_seconds

    def desired_replicas(self, rate: float) -> int:
        """Replica count the policy wants for an arrival rate."""
        wanted = math.ceil(rate / self.config.target_rate_per_replica)
        return max(self.min_replicas, min(self.max_replicas, wanted))

    # -- control loop ----------------------------------------------------------

    def observe_arrival(self, now: float) -> None:
        """Record one request arrival and apply a scaling decision if due.

        Called by :meth:`ClusterSimulator.run` once per arrival, after the
        replicas have been caught up to ``now`` and their lifecycles
        refreshed, and before the request is routed — so a scale-up triggered
        by this arrival still pays the warm-up before helping.
        """
        self._arrivals.append(now)
        if now - self._last_decision < self.config.cooldown_seconds:
            return
        desired = self.desired_replicas(self.window_rate(now))
        provisioned = self.provisioned()
        if desired > len(provisioned):
            self._scale_up(now, desired - len(provisioned))
        elif desired < len(provisioned):
            self._scale_down(now, len(provisioned) - desired)

    def _scale_up(self, now: float, count: int) -> None:
        # Draining replicas are still warm, so reactivate them before waking
        # cold (stopped) ones; within a tier, lowest replica id first.
        draining = [r for r in self.replicas if r.lifecycle is ReplicaLifecycle.DRAINING]
        stopped = [r for r in self.replicas if r.lifecycle is ReplicaLifecycle.STOPPED]
        for replica in (draining + stopped)[:count]:
            replica.activate(now, warmup_seconds=self.config.warmup_seconds)
            self.events.append(ScalingEvent(
                time=now, action="scale-up", replica_id=replica.replica_id,
                replica_class=replica.class_name,
                provisioned_after=len(self.provisioned())))
        self._last_decision = now

    def _scale_down(self, now: float, count: int) -> None:
        # Cancel warming replicas first (they have served nothing yet), then
        # drain the active replica with the fewest outstanding requests.
        removable = sorted(
            self.provisioned(),
            key=lambda r: (r.lifecycle is not ReplicaLifecycle.WARMING,
                           r.outstanding_requests, -r.replica_id))
        count = min(count, len(self.provisioned()) - self.min_replicas)
        for replica in removable[:count]:
            replica.deactivate()
            self.events.append(ScalingEvent(
                time=now, action="scale-down", replica_id=replica.replica_id,
                replica_class=replica.class_name,
                provisioned_after=len(self.provisioned())))
        self._last_decision = now
