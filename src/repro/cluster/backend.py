"""Pluggable execution backends for the cluster simulation loop.

:class:`~repro.cluster.simulator.ClusterSimulator` interleaves its replicas
on arrival boundaries: between two arrivals the stale replicas are advanced
independently until their local clocks catch up.  Those advances are
embarrassingly parallel — replicas only interact through the router (which
runs between them) and the shared iteration cache (which is exact, so
sharing never changes results) — so this module factors *how* they execute
behind an :class:`ExecutionBackend`:

* :class:`SerialBackend` (``"serial"``) steps every replica in-process, in
  index order.  This is the reference implementation.
* :class:`ProcessPoolBackend` (``"process-pool"``) hosts each replica in a
  persistent worker process and drives it with **batched event windows**:
  one ``("window", submits, advance_to, drain, cap)`` round-trip delivers
  every submit routed to a replica since its last advance *and* the advance
  itself, instead of one pipe round-trip per tick.  Routed submits are
  deferred master-side — ``submit`` costs zero round-trips; the master
  patches its local :class:`ReplicaLoadSnapshot` (one more outstanding
  request, ``has_work`` true — exactly what ``scheduler.submit`` changes)
  and the requests piggyback on the replica's next window.  Replicas that
  are idle or already caught up get no round-trip at all under the
  event-driven engine, because the cluster loop only calls
  :meth:`ExecutionBackend.advance` on stale replicas.

Both backends produce **bit-identical** simulation results: the per-replica
simulations are deterministic, a worker applies its window's submits in
routing order before advancing (the same order the serial backend runs
them), and the router sees the same load views at the same points of the
arrival loop.  When iteration-level reuse is enabled the master's per-class
:class:`~repro.engine.iteration_cache.SharedIterationCache` instances are
served to the workers by an
:class:`~repro.engine.iteration_cache.IterationCacheService` over dedicated
cache pipes, with singleflight deduplication — so cross-replica cache hits
(and cluster-wide hit/miss totals) match the serial backend instead of
each worker re-simulating its siblings' iterations in a private cache.

Backends are registered by name like routing policies, so experiments can
plug in alternatives (e.g. a thread pool for a GIL-free interpreter)
through :func:`register_backend`.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import traceback
from dataclasses import dataclass
from typing import (Callable, Dict, List, Mapping, Optional, Sequence,
                    TYPE_CHECKING)

from ..core.results import ServingResult
from ..engine.iteration_cache import (IterationCacheService, IterationReuseCache,
                                      RemoteIterationCache)
from ..workload.request import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .simulator import Replica

__all__ = ["ReplicaLoadSnapshot", "ExecutionBackend", "SerialBackend",
           "ProcessPoolBackend", "available_backends", "build_backend",
           "register_backend"]


@dataclass(frozen=True)
class ReplicaLoadSnapshot:
    """Compact, picklable load view of one replica at a sync point.

    Carries every *dynamic* signal of the
    :class:`~repro.cluster.router.ReplicaView` protocol (static capability
    signals live on the master-side replica, derived from its
    configuration) plus the progress counters the cluster loop needs.
    """

    clock: float
    has_work: bool
    outstanding_requests: int
    kv_utilization: float
    iterations_run: int
    latency_sum: float


def snapshot_replica(replica: "Replica") -> ReplicaLoadSnapshot:
    """Capture a replica's dynamic load state (used by both backends)."""
    return ReplicaLoadSnapshot(
        clock=replica.clock,
        has_work=replica.has_work,
        outstanding_requests=replica.outstanding_requests,
        kv_utilization=replica.kv_utilization,
        iterations_run=replica.iterations_run,
        latency_sum=replica.latency_sum,
    )


def _drain_replica(replica: "Replica", max_iterations: Optional[int]) -> None:
    """Step a replica until it runs dry or hits the iteration cap."""
    while replica.has_work:
        if max_iterations is not None and replica.iterations_run >= max_iterations:
            break
        if not replica.step():
            break


class ExecutionBackend:
    """How the cluster loop executes its independent replica simulations.

    A backend is bound to the master's replica list once per run and then
    driven through the arrival loop: ``advance`` (event-driven engine, stale
    replicas only) or ``advance_all`` (lockstep engine) between arrivals,
    ``submit`` after routing, ``drain_all`` once every request is placed,
    ``collect_results`` for the per-replica outcomes, ``close`` for
    teardown.  Implementations must keep each master replica's load view
    current (the router reads it right after an advance), though ``submit``
    may defer the actual hand-off as long as the load view reflects it.
    """

    name = "base"

    def bind(self, replicas: Sequence["Replica"],
             iteration_caches: Optional[Mapping[str, IterationReuseCache]] = None,
             ) -> None:
        """Attach to the master's replicas (and their shared caches) for a run."""
        raise NotImplementedError

    def advance(self, indices: Sequence[int], time: float,
                max_iterations: Optional[int] = None) -> None:
        """Advance the listed replicas until their clocks reach ``time``."""
        raise NotImplementedError

    def advance_all(self, time: float, max_iterations: Optional[int] = None) -> None:
        """Advance every replica until its clock reaches ``time``."""
        raise NotImplementedError

    def submit(self, index: int, request: Request) -> None:
        """Hand a routed request to one replica."""
        raise NotImplementedError

    def drain_all(self, max_iterations: Optional[int] = None) -> None:
        """Run every replica until it has no work left (or hits the cap)."""
        raise NotImplementedError

    def collect_results(self) -> List[ServingResult]:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources; must be idempotent."""


class SerialBackend(ExecutionBackend):
    """Step replicas one after another in the master process (reference)."""

    name = "serial"

    def __init__(self) -> None:
        self._replicas: List["Replica"] = []

    def bind(self, replicas: Sequence["Replica"],
             iteration_caches: Optional[Mapping[str, IterationReuseCache]] = None,
             ) -> None:
        # Replicas already hold their shared per-class caches in-process;
        # no extra cache plumbing is needed serially.
        self._replicas = list(replicas)

    def advance(self, indices: Sequence[int], time: float,
                max_iterations: Optional[int] = None) -> None:
        for index in indices:
            self._replicas[index].advance_until(time, max_iterations)

    def advance_all(self, time: float, max_iterations: Optional[int] = None) -> None:
        for replica in self._replicas:
            replica.advance_until(time, max_iterations)

    def submit(self, index: int, request: Request) -> None:
        self._replicas[index].submit(request)

    def drain_all(self, max_iterations: Optional[int] = None) -> None:
        for replica in self._replicas:
            _drain_replica(replica, max_iterations)

    def collect_results(self) -> List[ServingResult]:
        return [replica.simulator.collect_result() for replica in self._replicas]


def _replica_worker_main(conn, cache_conn, config, replica_id: int,
                         class_name: str, check_invariants: bool = False) -> None:
    """Command loop of one persistent replica worker process.

    Builds a fresh replica from its configuration (state must start clean
    regardless of the start method), announces readiness with its pristine
    load snapshot, and serves commands until ``close`` or the pipe drops.
    Replies are ``("ok", payload)`` or ``("error", traceback_text)``; the
    master re-raises the latter.

    The one substantive command is the batched event window
    ``("window", submits, advance_to, drain, max_iterations)``: apply the
    deferred submits in routing order, advance to ``advance_to`` (when not
    ``None``), drain when asked, reply with the post-window snapshot.

    When ``cache_conn`` is set, the replica's iteration cache is a
    :class:`~repro.engine.iteration_cache.RemoteIterationCache` proxy of the
    master's shared per-class cache, giving this worker singleflight-
    deduplicated cross-replica reuse.
    """
    from .simulator import Replica

    try:
        cache = RemoteIterationCache(cache_conn) if cache_conn is not None else None
        replica = Replica(replica_id, config, class_name=class_name,
                          iteration_cache=cache,
                          check_invariants=check_invariants)
        conn.send(("ok", snapshot_replica(replica)))
    except Exception:
        conn.send(("error", traceback.format_exc()))
        conn.close()
        return
    try:
        while True:
            message = conn.recv()
            command = message[0]
            try:
                if command == "window":
                    _, submits, advance_to, drain, max_iterations = message
                    for request in submits:
                        replica.submit(request)
                    if advance_to is not None:
                        replica.advance_until(advance_to, max_iterations)
                    if drain:
                        _drain_replica(replica, max_iterations)
                    conn.send(("ok", snapshot_replica(replica)))
                elif command == "collect":
                    conn.send(("ok", replica.simulator.collect_result()))
                elif command == "close":
                    return
                else:
                    conn.send(("error", f"unknown worker command {command!r}"))
            except Exception:
                conn.send(("error", traceback.format_exc()))
                return
    except (EOFError, KeyboardInterrupt):  # master went away
        return
    finally:
        conn.close()


class ProcessPoolBackend(ExecutionBackend):
    """Host each replica in a persistent worker process.

    Workers execute batched event windows received over a pipe and reply
    with the compact :class:`ReplicaLoadSnapshot` the router selects on.
    ``submit`` never touches a pipe: the request is queued master-side, the
    master's snapshot is patched with exactly the state change
    ``scheduler.submit`` would make, and the queued requests ride along
    with the replica's next window (its next advance, or the final drain).
    ``advance`` fans windows out to the stale replicas only and gathers
    their snapshots concurrently; ``advance_all``/``drain_all`` broadcast
    to everyone.

    Worker replicas are rebuilt from their configuration in the worker
    process; the master-side :class:`~repro.cluster.simulator.Replica`
    objects stay snapshot-backed and never build their simulators.  Shared
    per-class iteration caches are served to workers by an
    :class:`~repro.engine.iteration_cache.IterationCacheService` thread in
    the master (started only after every worker is forked), so reuse
    behaves as if all replicas shared one in-process cache.
    """

    name = "process-pool"

    def __init__(self, start_method: Optional[str] = None) -> None:
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._context = multiprocessing.get_context(start_method)
        self._replicas: List["Replica"] = []
        self._connections: list = []
        self._processes: list = []
        self._pending_submits: List[List[Request]] = []
        self._cache_service: Optional[IterationCacheService] = None

    def bind(self, replicas: Sequence["Replica"],
             iteration_caches: Optional[Mapping[str, IterationReuseCache]] = None,
             ) -> None:
        self.close()
        self._replicas = list(replicas)
        self._connections = []
        self._processes = []
        self._pending_submits = [[] for _ in self._replicas]
        service = (IterationCacheService(dict(iteration_caches))
                   if iteration_caches else None)
        for replica in self._replicas:
            parent_conn, child_conn = self._context.Pipe()
            cache_conn = None
            if service is not None and replica.iteration_cache is not None:
                cache_conn = service.register(replica.class_name)
            process = self._context.Process(
                target=_replica_worker_main,
                args=(child_conn, cache_conn, replica.config,
                      replica.replica_id, replica.class_name,
                      replica.check_invariants),
                daemon=True,
                name=f"replica-worker-{replica.replica_id}",
            )
            process.start()
            child_conn.close()
            if cache_conn is not None:
                cache_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)
        # Gather the ready handshakes: the workers' pristine snapshots detach
        # the master replicas from their (never-built) local simulators.
        for index, replica in enumerate(self._replicas):
            replica.attach_snapshot(self._receive(index))
        # Start serving the shared caches only now — forking a process while
        # the service thread holds locks would be undefined behaviour.
        if service is not None:
            service.start()
        self._cache_service = service

    # -- pipe plumbing ---------------------------------------------------------

    def _receive(self, index: int):
        try:
            status, payload = self._connections[index].recv()
        except EOFError:
            raise RuntimeError(
                f"replica worker {index} exited unexpectedly") from None
        if status != "ok":
            raise RuntimeError(f"replica worker {index} failed:\n{payload}")
        return payload

    def _send_window(self, index: int, advance_to: Optional[float], drain: bool,
                     max_iterations: Optional[int]) -> None:
        """Ship one replica's deferred submits plus an advance/drain order."""
        submits = self._pending_submits[index]
        self._pending_submits[index] = []
        self._connections[index].send(
            ("window", submits, advance_to, drain, max_iterations))

    def _gather(self, indices: Sequence[int]) -> None:
        for index in indices:
            self._replicas[index].attach_snapshot(self._receive(index))

    # -- ExecutionBackend interface --------------------------------------------

    def advance(self, indices: Sequence[int], time: float,
                max_iterations: Optional[int] = None) -> None:
        for index in indices:
            self._send_window(index, time, False, max_iterations)
        self._gather(indices)

    def advance_all(self, time: float, max_iterations: Optional[int] = None) -> None:
        self.advance(range(len(self._replicas)), time, max_iterations)

    def submit(self, index: int, request: Request) -> None:
        # Defer the hand-off (it piggybacks on the next window) but reflect
        # it in the load view immediately: ``scheduler.submit`` appends to
        # the pending queue, so exactly ``outstanding_requests`` and
        # ``has_work`` change — the clock, KV occupancy and iteration
        # counters do not.
        self._pending_submits[index].append(request)
        snapshot = self._replicas[index]._snapshot
        self._replicas[index].attach_snapshot(dataclasses.replace(
            snapshot,
            outstanding_requests=snapshot.outstanding_requests + 1,
            has_work=True))

    def drain_all(self, max_iterations: Optional[int] = None) -> None:
        indices = range(len(self._replicas))
        for index in indices:
            self._send_window(index, None, True, max_iterations)
        self._gather(indices)

    def collect_results(self) -> List[ServingResult]:
        for connection in self._connections:
            connection.send(("collect",))
        return [self._receive(index) for index in range(len(self._connections))]

    def close(self) -> None:
        for connection in self._connections:
            try:
                connection.send(("close",))
            except (BrokenPipeError, OSError):
                pass
            connection.close()
        # Tear the cache service down after the close commands are out: a
        # worker blocked on a cache reply sees its pipe drop and exits
        # instead of deadlocking the joins below.
        if self._cache_service is not None:
            self._cache_service.close()
            self._cache_service = None
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - defensive teardown
                process.terminate()
                process.join(timeout=5.0)
        self._connections = []
        self._processes = []
        self._pending_submits = []


_BACKEND_FACTORIES: Dict[str, Callable[[], ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
}


def register_backend(name: str, factory: Callable[[], ExecutionBackend]) -> None:
    """Register a custom execution backend under ``name`` (overwrites allowed)."""
    if not name:
        raise ValueError("backend name must be non-empty")
    _BACKEND_FACTORIES[name] = factory


def available_backends() -> list:
    """Names of all registered execution backends."""
    return sorted(_BACKEND_FACTORIES)


def build_backend(name: str) -> ExecutionBackend:
    """Create a backend by name (the cluster config's ``execution_backend``)."""
    try:
        factory = _BACKEND_FACTORIES[name]
    except KeyError:
        raise ValueError(f"unknown execution backend {name!r}; "
                         f"expected one of {available_backends()}") from None
    return factory()
