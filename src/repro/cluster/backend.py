"""Pluggable execution backends for the cluster simulation loop.

:class:`~repro.cluster.simulator.ClusterSimulator` interleaves its replicas
on arrival boundaries: between two arrivals every replica is advanced
independently until its local clock catches up.  Those advances are
embarrassingly parallel — replicas only interact through the router, which
runs between them — so this module factors *how* they execute behind an
:class:`ExecutionBackend`:

* :class:`SerialBackend` (``"serial"``) steps every replica in-process, in
  index order.  This is the reference implementation.
* :class:`ProcessPoolBackend` (``"process-pool"``) hosts each replica in a
  persistent worker process.  The master broadcasts
  ``advance_until``/``submit``/``drain`` commands over pipes and gathers a
  compact :class:`ReplicaLoadSnapshot` per reply — exactly the load view
  the routing policies observe — so routing, autoscaling and lifecycle
  management stay in the master while the expensive per-iteration
  simulation fans out across cores.

Both backends produce **bit-identical** simulation results: the per-replica
simulations are deterministic and the router sees the same load views at
the same points of the arrival loop.  The only observable difference is
simulator-side accounting when iteration-level reuse is enabled — the
serial backend shares one reuse cache per replica class, while worker
processes keep private caches, so *hit counters* (never latencies) can
differ between backends.

Backends are registered by name like routing policies, so experiments can
plug in alternatives (e.g. a thread pool for a GIL-free interpreter)
through :func:`register_backend`.
"""

from __future__ import annotations

import multiprocessing
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

from ..core.results import ServingResult
from ..workload.request import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .simulator import Replica

__all__ = ["ReplicaLoadSnapshot", "ExecutionBackend", "SerialBackend",
           "ProcessPoolBackend", "available_backends", "build_backend",
           "register_backend"]


@dataclass(frozen=True)
class ReplicaLoadSnapshot:
    """Compact, picklable load view of one replica at a sync point.

    Carries every *dynamic* signal of the
    :class:`~repro.cluster.router.ReplicaView` protocol (static capability
    signals live on the master-side replica, derived from its
    configuration) plus the progress counters the cluster loop needs.
    """

    clock: float
    has_work: bool
    outstanding_requests: int
    kv_utilization: float
    iterations_run: int
    latency_sum: float


def snapshot_replica(replica: "Replica") -> ReplicaLoadSnapshot:
    """Capture a replica's dynamic load state (used by both backends)."""
    return ReplicaLoadSnapshot(
        clock=replica.clock,
        has_work=replica.has_work,
        outstanding_requests=replica.outstanding_requests,
        kv_utilization=replica.kv_utilization,
        iterations_run=replica.iterations_run,
        latency_sum=replica.latency_sum,
    )


def _drain_replica(replica: "Replica", max_iterations: Optional[int]) -> None:
    """Step a replica until it runs dry or hits the iteration cap."""
    while replica.has_work:
        if max_iterations is not None and replica.iterations_run >= max_iterations:
            break
        if not replica.step():
            break


class ExecutionBackend:
    """How the cluster loop executes its independent replica simulations.

    A backend is bound to the master's replica list once per run and then
    driven through the arrival loop: ``advance_all`` between arrivals,
    ``submit`` after routing, ``drain_all`` once every request is placed,
    ``collect_results`` for the per-replica outcomes, ``close`` for
    teardown.  Implementations must keep each master replica's load view
    current (the router reads it right after ``advance_all``).
    """

    name = "base"

    def bind(self, replicas: Sequence["Replica"]) -> None:
        raise NotImplementedError

    def advance_all(self, time: float, max_iterations: Optional[int] = None) -> None:
        """Advance every replica until its clock reaches ``time``."""
        raise NotImplementedError

    def submit(self, index: int, request: Request) -> None:
        """Hand a routed request to one replica."""
        raise NotImplementedError

    def drain_all(self, max_iterations: Optional[int] = None) -> None:
        """Run every replica until it has no work left (or hits the cap)."""
        raise NotImplementedError

    def collect_results(self) -> List[ServingResult]:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources; must be idempotent."""


class SerialBackend(ExecutionBackend):
    """Step replicas one after another in the master process (reference)."""

    name = "serial"

    def __init__(self) -> None:
        self._replicas: List["Replica"] = []

    def bind(self, replicas: Sequence["Replica"]) -> None:
        self._replicas = list(replicas)

    def advance_all(self, time: float, max_iterations: Optional[int] = None) -> None:
        for replica in self._replicas:
            replica.advance_until(time, max_iterations)

    def submit(self, index: int, request: Request) -> None:
        self._replicas[index].submit(request)

    def drain_all(self, max_iterations: Optional[int] = None) -> None:
        for replica in self._replicas:
            _drain_replica(replica, max_iterations)

    def collect_results(self) -> List[ServingResult]:
        return [replica.simulator.collect_result() for replica in self._replicas]


def _replica_worker_main(conn, config, replica_id: int, class_name: str) -> None:
    """Command loop of one persistent replica worker process.

    Builds a fresh replica from its configuration (state must start clean
    regardless of the start method) and serves commands until ``close`` or
    the pipe drops.  Replies are ``("ok", payload)`` or ``("error",
    traceback_text)``; the master re-raises the latter.
    """
    from ..core.simulator import LLMServingSim
    from .simulator import Replica

    try:
        replica = Replica(replica_id, LLMServingSim(config), class_name=class_name)
    except Exception:  # pragma: no cover - construction mirrors the master's
        conn.send(("error", traceback.format_exc()))
        conn.close()
        return
    try:
        while True:
            message = conn.recv()
            command = message[0]
            try:
                if command == "advance":
                    replica.advance_until(message[1], message[2])
                    conn.send(("ok", snapshot_replica(replica)))
                elif command == "submit":
                    replica.submit(message[1])
                    conn.send(("ok", snapshot_replica(replica)))
                elif command == "drain":
                    _drain_replica(replica, message[1])
                    conn.send(("ok", snapshot_replica(replica)))
                elif command == "snapshot":
                    conn.send(("ok", snapshot_replica(replica)))
                elif command == "collect":
                    conn.send(("ok", replica.simulator.collect_result()))
                elif command == "close":
                    return
                else:
                    conn.send(("error", f"unknown worker command {command!r}"))
            except Exception:
                conn.send(("error", traceback.format_exc()))
                return
    except (EOFError, KeyboardInterrupt):  # master went away
        return
    finally:
        conn.close()


class ProcessPoolBackend(ExecutionBackend):
    """Host each replica in a persistent worker process.

    The worker executes ``advance_until``/``submit`` commands received over
    a pipe and replies with the compact :class:`ReplicaLoadSnapshot` the
    router selects on.  ``advance_all`` and ``drain_all`` broadcast first
    and gather second, so all replicas simulate concurrently; ``submit`` is
    a cheap synchronous round-trip to one worker.

    Worker replicas are rebuilt from their configuration, so per-class
    iteration-reuse caches are private to each worker (see the module
    docstring for why this only affects hit counters, not results).
    """

    name = "process-pool"

    def __init__(self, start_method: Optional[str] = None) -> None:
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._context = multiprocessing.get_context(start_method)
        self._replicas: List["Replica"] = []
        self._connections: list = []
        self._processes: list = []

    def bind(self, replicas: Sequence["Replica"]) -> None:
        self.close()
        self._replicas = list(replicas)
        self._connections = []
        self._processes = []
        for replica in self._replicas:
            parent_conn, child_conn = self._context.Pipe()
            process = self._context.Process(
                target=_replica_worker_main,
                args=(child_conn, replica.simulator.config,
                      replica.replica_id, replica.class_name),
                daemon=True,
                name=f"replica-worker-{replica.replica_id}",
            )
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)
        # Detach the master replicas from their local simulators and seed
        # their load views with the workers' pristine state.
        self._broadcast(("snapshot",))

    # -- pipe plumbing ---------------------------------------------------------

    def _receive(self, index: int):
        try:
            status, payload = self._connections[index].recv()
        except EOFError:
            raise RuntimeError(
                f"replica worker {index} exited unexpectedly") from None
        if status != "ok":
            raise RuntimeError(f"replica worker {index} failed:\n{payload}")
        return payload

    def _broadcast(self, message: tuple) -> None:
        """Send one command to every worker, then gather all snapshots."""
        for connection in self._connections:
            connection.send(message)
        for index, replica in enumerate(self._replicas):
            replica.attach_snapshot(self._receive(index))

    # -- ExecutionBackend interface --------------------------------------------

    def advance_all(self, time: float, max_iterations: Optional[int] = None) -> None:
        self._broadcast(("advance", time, max_iterations))

    def submit(self, index: int, request: Request) -> None:
        self._connections[index].send(("submit", request))
        self._replicas[index].attach_snapshot(self._receive(index))

    def drain_all(self, max_iterations: Optional[int] = None) -> None:
        self._broadcast(("drain", max_iterations))

    def collect_results(self) -> List[ServingResult]:
        for connection in self._connections:
            connection.send(("collect",))
        return [self._receive(index) for index in range(len(self._connections))]

    def close(self) -> None:
        for connection in self._connections:
            try:
                connection.send(("close",))
            except (BrokenPipeError, OSError):
                pass
            connection.close()
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - defensive teardown
                process.terminate()
                process.join(timeout=5.0)
        self._connections = []
        self._processes = []


_BACKEND_FACTORIES: Dict[str, Callable[[], ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
}


def register_backend(name: str, factory: Callable[[], ExecutionBackend]) -> None:
    """Register a custom execution backend under ``name`` (overwrites allowed)."""
    if not name:
        raise ValueError("backend name must be non-empty")
    _BACKEND_FACTORIES[name] = factory


def available_backends() -> list:
    """Names of all registered execution backends."""
    return sorted(_BACKEND_FACTORIES)


def build_backend(name: str) -> ExecutionBackend:
    """Create a backend by name (the cluster config's ``execution_backend``)."""
    try:
        factory = _BACKEND_FACTORIES[name]
    except KeyError:
        raise ValueError(f"unknown execution backend {name!r}; "
                         f"expected one of {available_backends()}") from None
    return factory()
