"""Request routing policies for the multi-replica cluster serving layer.

The router is the cluster's load balancer: every arriving request is handed
to exactly one serving replica.  Policies only see the lightweight
:class:`ReplicaView` protocol (outstanding request count, KV-cache
utilization, assignment counter), so custom policies can be registered
without importing the simulator stack.

Built-in policies:

* ``"round-robin"`` — cycle through replicas in order, ignoring load.
* ``"least-outstanding"`` — pick the replica with the fewest queued +
  running requests (the classic least-outstanding-requests balancer).
* ``"least-kv"`` — pick the replica with the lowest KV-cache utilization,
  which tracks *memory* pressure rather than request count and therefore
  behaves differently when request lengths are skewed.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from ..workload.request import Request

__all__ = ["RequestRouter", "RoundRobinRouter", "LeastOutstandingRouter",
           "LeastKVUtilizationRouter", "available_routers", "build_router",
           "register_router"]


class RequestRouter:
    """Interface of a routing policy.

    ``select`` receives the replica views in index order plus the request to
    place and returns the chosen replica index.  Routers may keep internal
    state (e.g. the round-robin cursor); one router instance drives one
    cluster run.
    """

    name = "base"

    def select(self, replicas: Sequence["ReplicaView"], request: Request) -> int:
        raise NotImplementedError


class RoundRobinRouter(RequestRouter):
    """Cycle through replicas regardless of their load."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def select(self, replicas: Sequence["ReplicaView"], request: Request) -> int:
        index = self._cursor % len(replicas)
        self._cursor += 1
        return index


class LeastOutstandingRouter(RequestRouter):
    """Send the request to the replica with the fewest outstanding requests."""

    name = "least-outstanding"

    def select(self, replicas: Sequence["ReplicaView"], request: Request) -> int:
        return min(range(len(replicas)),
                   key=lambda i: (replicas[i].outstanding_requests, i))


class LeastKVUtilizationRouter(RequestRouter):
    """Send the request to the replica with the most free KV-cache budget."""

    name = "least-kv"

    def select(self, replicas: Sequence["ReplicaView"], request: Request) -> int:
        return min(range(len(replicas)),
                   key=lambda i: (replicas[i].kv_utilization, i))


_ROUTER_FACTORIES: Dict[str, Callable[[], RequestRouter]] = {
    RoundRobinRouter.name: RoundRobinRouter,
    LeastOutstandingRouter.name: LeastOutstandingRouter,
    LeastKVUtilizationRouter.name: LeastKVUtilizationRouter,
}


def register_router(name: str, factory: Callable[[], RequestRouter]) -> None:
    """Register a custom routing policy under ``name`` (overwrites allowed)."""
    if not name:
        raise ValueError("router name must be non-empty")
    _ROUTER_FACTORIES[name] = factory


def available_routers() -> list:
    """Names of all registered routing policies."""
    return sorted(_ROUTER_FACTORIES)


def build_router(name: str) -> RequestRouter:
    """Create a router by policy name (the cluster config's ``routing`` knob)."""
    try:
        factory = _ROUTER_FACTORIES[name]
    except KeyError:
        raise ValueError(f"unknown routing policy {name!r}; "
                         f"expected one of {available_routers()}") from None
    return factory()
