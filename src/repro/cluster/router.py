"""Request routing policies for the multi-replica cluster serving layer.

The router is the cluster's load balancer: every arriving request is handed
to exactly one serving replica.  Policies only see the lightweight
:class:`ReplicaView` protocol (queue depth, KV-cache state, capability
signals, lifecycle), so custom policies can be registered without importing
the simulator stack.

Built-in policies:

* ``"round-robin"`` — cycle through the *active* replicas in index order,
  ignoring load.
* ``"least-outstanding"`` — pick the replica with the fewest queued +
  running requests (the classic least-outstanding-requests balancer).
* ``"least-kv"`` — pick the replica with the lowest KV-cache utilization,
  which tracks *memory* pressure rather than request count and therefore
  behaves differently when request lengths are skewed.
* ``"slo-ttft"`` — pick the replica with the lowest *predicted*
  time-to-first-token, estimated as queue depth times the replica's measured
  per-iteration latency; the latency-aware policy heterogeneous fleets need.
* ``"weighted-capacity"`` — deterministic weighted round-robin proportional
  to each replica's roofline throughput estimate, so a replica with four
  times the compute absorbs four times the requests.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Protocol, Sequence, runtime_checkable

from ..workload.request import Request

__all__ = ["ReplicaView", "RequestRouter", "RoundRobinRouter", "LeastOutstandingRouter",
           "LeastKVUtilizationRouter", "SLOTTFTRouter", "WeightedCapacityRouter",
           "routable_indices", "available_routers", "build_router", "register_router"]


@runtime_checkable
class ReplicaView(Protocol):
    """What a routing policy may observe about one replica.

    :class:`~repro.cluster.simulator.Replica` implements the full protocol;
    test doubles only need the attributes their policy touches (routers fall
    back to permissive defaults via ``getattr`` for the rest).

    Load signals
        ``outstanding_requests`` (queued + running), ``kv_utilization``
        (fraction of the KV budget in use) and ``mean_iteration_latency``
        (measured seconds per serving iteration, 0.0 before the first one).

    Capability signals (static per replica, heterogeneity-aware)
        ``device_throughput_tflops`` — roofline-attainable generation-phase
        throughput summed over the replica's devices;
        ``estimated_iteration_latency`` — roofline latency prior (seconds
        per iteration) used before any iteration has been measured;
        ``kv_budget_bytes`` — the replica's total KV-cache capacity;
        ``engine_kind`` — ``"npu"`` or ``"npu+pim"``.

    Lifecycle
        ``is_routable`` — False while the replica is warming, draining or
        stopped under autoscaling; routers must not select such replicas.
    """

    replica_id: int
    outstanding_requests: int
    kv_utilization: float
    mean_iteration_latency: float
    device_throughput_tflops: float
    estimated_iteration_latency: float
    kv_budget_bytes: int
    engine_kind: str
    is_routable: bool


def routable_indices(replicas: Sequence["ReplicaView"]) -> List[int]:
    """Indices a router may choose from: the active replicas.

    Views without lifecycle state (plain test doubles, pre-autoscaling
    callers) count as routable.  Raises if nothing is routable — the
    simulator rejects routes to non-routable replicas anyway, so a silent
    fallback could only mask a lifecycle bug (the built-in autoscaler
    guarantees at least one ``ACTIVE`` replica at all times).
    """
    active = [i for i, r in enumerate(replicas) if getattr(r, "is_routable", True)]
    if not active:
        raise ValueError("no routable replica: every replica is warming, "
                         "draining or stopped")
    return active


class RequestRouter:
    """Interface of a routing policy.

    ``select`` receives the replica views in index order plus the request to
    place and returns the chosen replica index.  Routers may keep internal
    state (e.g. the round-robin position); one router instance drives one
    cluster run.  Policies must restrict their choice to
    :func:`routable_indices` so autoscaled-out replicas receive no traffic.
    """

    name = "base"

    def select(self, replicas: Sequence["ReplicaView"], request: Request) -> int:
        raise NotImplementedError


class RoundRobinRouter(RequestRouter):
    """Cycle through the active replicas regardless of their load.

    The rotation is anchored to the last *chosen replica index*, not to a
    running counter: a ``cursor % len(replicas)`` implementation silently
    re-skews whenever the active-replica count changes mid-run (every
    autoscaling event would re-deal the deck), whereas picking the next
    active index after the previous choice stays fair across scale-ups and
    scale-downs.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._last_choice = -1

    def select(self, replicas: Sequence["ReplicaView"], request: Request) -> int:
        active = routable_indices(replicas)
        choice = next((i for i in active if i > self._last_choice), active[0])
        self._last_choice = choice
        return choice


class LeastOutstandingRouter(RequestRouter):
    """Send the request to the replica with the fewest outstanding requests."""

    name = "least-outstanding"

    def select(self, replicas: Sequence["ReplicaView"], request: Request) -> int:
        return min(routable_indices(replicas),
                   key=lambda i: (replicas[i].outstanding_requests, i))


class LeastKVUtilizationRouter(RequestRouter):
    """Send the request to the replica with the most free KV-cache budget."""

    name = "least-kv"

    def select(self, replicas: Sequence["ReplicaView"], request: Request) -> int:
        return min(routable_indices(replicas),
                   key=lambda i: (replicas[i].kv_utilization, i))


class SLOTTFTRouter(RequestRouter):
    """Route to the replica with the lowest predicted time-to-first-token.

    The prediction is ``(queue depth + 1) * per-iteration latency``: an
    iteration-level scheduler gives every outstanding request one slot per
    iteration, so the new request's prompt completes roughly one iteration
    after the queue ahead of it has been entered.  The latency is the
    replica's *measured* mean iteration latency; before a replica has
    measured any iteration the policy falls back to its roofline latency
    prior (``estimated_iteration_latency``), which ranks a big cold replica
    above a small cold one in the same units as warm replicas.
    """

    name = "slo-ttft"

    @staticmethod
    def predicted_ttft(replica: "ReplicaView") -> float:
        depth = getattr(replica, "outstanding_requests", 0)
        latency = (getattr(replica, "mean_iteration_latency", 0.0)
                   or getattr(replica, "estimated_iteration_latency", 0.0))
        if latency > 0:
            return (depth + 1) * latency
        capability = getattr(replica, "device_throughput_tflops", 0.0)
        if capability > 0:
            return (depth + 1) / capability
        return float(depth)

    def select(self, replicas: Sequence["ReplicaView"], request: Request) -> int:
        return min(routable_indices(replicas),
                   key=lambda i: (self.predicted_ttft(replicas[i]), i))


class WeightedCapacityRouter(RequestRouter):
    """Deterministic weighted round-robin proportional to replica capability.

    Each replica's weight is its roofline throughput estimate
    (``device_throughput_tflops``, defaulting to 1.0 for plain views); the
    router assigns every request to the active replica with the largest
    weighted deficit — ``argmin (assigned + 1) / weight`` — which converges
    to capability-proportional request counts without randomness.
    """

    name = "weighted-capacity"

    def __init__(self) -> None:
        self._assigned: Dict[int, int] = {}

    def select(self, replicas: Sequence["ReplicaView"], request: Request) -> int:
        def deficit(index: int) -> float:
            weight = getattr(replicas[index], "device_throughput_tflops", 0.0) or 1.0
            return (self._assigned.get(index, 0) + 1) / weight

        choice = min(routable_indices(replicas), key=lambda i: (deficit(i), i))
        self._assigned[choice] = self._assigned.get(choice, 0) + 1
        return choice


_ROUTER_FACTORIES: Dict[str, Callable[[], RequestRouter]] = {
    RoundRobinRouter.name: RoundRobinRouter,
    LeastOutstandingRouter.name: LeastOutstandingRouter,
    LeastKVUtilizationRouter.name: LeastKVUtilizationRouter,
    SLOTTFTRouter.name: SLOTTFTRouter,
    WeightedCapacityRouter.name: WeightedCapacityRouter,
}


def register_router(name: str, factory: Callable[[], RequestRouter]) -> None:
    """Register a custom routing policy under ``name`` (overwrites allowed)."""
    if not name:
        raise ValueError("router name must be non-empty")
    _ROUTER_FACTORIES[name] = factory


def available_routers() -> list:
    """Names of all registered routing policies."""
    return sorted(_ROUTER_FACTORIES)


def build_router(name: str) -> RequestRouter:
    """Create a router by policy name (the cluster config's ``routing`` knob)."""
    try:
        factory = _ROUTER_FACTORIES[name]
    except KeyError:
        raise ValueError(f"unknown routing policy {name!r}; "
                         f"expected one of {available_routers()}") from None
    return factory()
