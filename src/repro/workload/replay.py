"""Trace replay: external arrival-timestamp traces as a workload source.

The synthetic arrival processes (poisson / burst / poisson-burst / diurnal)
are parameterised models; real serving traffic is lumpier than any of them.
This module replays *recorded* traces — the standard methodology for LLM
serving evaluation — in two on-disk formats:

* ``"tsv"`` — the artifact's three-column TSV dataset format
  (``input_toks``, ``output_toks``, ``arrival_time_sec``), read through
  :func:`repro.workload.trace_io.read_trace`;
* ``"azure"`` — an Azure-LLM-inference-style CSV with a header naming
  ``TIMESTAMP`` (absolute wall-clock datetime or seconds),
  ``ContextTokens`` (prompt length) and ``GeneratedTokens`` (response
  length) columns, in any column order; extra columns are ignored.

:class:`TraceReplayArrivalGenerator` wraps a loaded trace in the same
``generate(num_requests)`` interface as the synthetic generators and layers
the replay transforms experiments need on top: time-window slicing (study
one burst of a day-long trace), seeded request subsampling (shrink a
million-row trace deterministically), rate rescaling (stress the same
arrival *shape* at a different intensity) and sequence-length clamping to
the served model's context window.  Transforms apply in that order —
window, sample, rate-scale, clamp — and the replayed timeline is re-zeroed
relative to the start of the trace (the window start when slicing), so the
first kept arrival lands at its offset *within* the replayed span.
"""

from __future__ import annotations

import csv
import math
import re
import warnings
from datetime import datetime, timezone
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .generator import RequestTrace
from .request import Request
from .trace_io import read_trace

__all__ = ["AZURE_COLUMNS", "TRACE_FORMATS", "read_azure_trace", "load_trace",
           "validate_replay_transforms", "TraceReplayArrivalGenerator",
           "trace_from_config"]

#: Required header columns of the Azure-style CSV format (case-insensitive,
#: any column order, extra columns ignored).
AZURE_COLUMNS = ("TIMESTAMP", "ContextTokens", "GeneratedTokens")

#: On-disk trace formats the replay subsystem understands.
TRACE_FORMATS = ("tsv", "azure")


def validate_replay_transforms(rate_scale: float,
                               window: Optional[Tuple[float, float]],
                               sample: float,
                               max_seq_len: Optional[int] = None) -> None:
    """Bounds checks shared by :class:`TraceReplayArrivalGenerator` and
    :class:`~repro.core.config.TraceReplayConfig` (one copy, two call sites).
    """
    if rate_scale <= 0:
        raise ValueError("rate_scale must be positive")
    if not 0 < sample <= 1:
        raise ValueError("sample must be in (0, 1]")
    if window is not None:
        start, end = window
        if start < 0 or end <= start:
            raise ValueError("window must satisfy 0 <= start < end")
    if max_seq_len is not None and max_seq_len < 2:
        raise ValueError("max_seq_len must leave room for a prompt token "
                         "and a generated token")


def _parse_timestamp(text: str, path: Path, line: int) -> float:
    """One TIMESTAMP cell as epoch seconds (floats and ISO datetimes)."""
    text = text.strip()
    try:
        seconds = float(text)
    except ValueError:
        pass
    else:
        # NaN/inf (pandas exports render missing values as 'nan') would
        # sail through every monotonicity comparison — reject them here.
        if not math.isfinite(seconds):
            raise ValueError(f"trace file {path} line {line}: TIMESTAMP "
                             f"{text!r} is not a finite number of seconds")
        return seconds
    # ISO-8601-ish datetimes; the Azure traces carry 7 fractional digits,
    # which Python 3.10's fromisoformat rejects, so trim the fractional
    # seconds (the digit run right after the dot — a following UTC offset
    # must survive untouched) to microseconds.
    candidate = text.replace("T", " ")
    if candidate.endswith(("Z", "z")):  # 3.10's fromisoformat rejects Z
        candidate = candidate[:-1] + "+00:00"
    fraction = re.search(r"\.(\d+)", candidate)
    if fraction:
        candidate = (candidate[:fraction.start()] + "." +
                     fraction.group(1)[:6] + candidate[fraction.end():])
    try:
        parsed = datetime.fromisoformat(candidate)
    except ValueError:
        raise ValueError(f"trace file {path} line {line}: TIMESTAMP {text!r} "
                         f"is neither a number of seconds nor an ISO "
                         f"datetime") from None
    if parsed.tzinfo is None:
        parsed = parsed.replace(tzinfo=timezone.utc)
    return parsed.timestamp()


def _parse_tokens(text: str, column: str, path: Path, line: int) -> int:
    """One token-count cell, floored to 1, with file/line error context."""
    try:
        return max(1, int(float(text)))
    except ValueError:
        raise ValueError(f"trace file {path} line {line}: {column} {text!r} "
                         f"is not a number") from None


def read_azure_trace(path: Union[str, Path], dataset: str = "azure") -> RequestTrace:
    """Read an Azure-style ``TIMESTAMP,ContextTokens,GeneratedTokens`` CSV.

    Timestamps are normalised to seconds relative to the first row (absolute
    datetimes carry no meaning inside the simulation), must be monotonically
    non-decreasing (``ValueError`` naming the line otherwise), and zero-token
    rows are floored to one token — real traces contain empty responses, the
    request model does not admit them.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        rows = list(csv.reader(handle))  # blank rows kept: line numbers in
    #                                      errors must match the file

    def is_blank(row):
        return not row or all(not cell.strip() for cell in row)

    header_index = next((i for i, row in enumerate(rows) if not is_blank(row)), None)
    if header_index is None:
        raise ValueError(f"trace file {path} is empty")

    header = [cell.strip().lower() for cell in rows[header_index]]
    try:
        columns = [header.index(name.lower()) for name in AZURE_COLUMNS]
    except ValueError:
        raise ValueError(f"trace file {path} is missing one of the required "
                         f"Azure columns {AZURE_COLUMNS} (found header "
                         f"{rows[header_index]!r})") from None

    timestamp_col, context_col, generated_col = columns
    requests: List[Request] = []
    origin: Optional[float] = None
    previous: Optional[float] = None
    for i, row in enumerate(rows[header_index + 1:]):
        line = i + header_index + 2  # 1-based file line number
        if is_blank(row):
            continue
        if len(row) <= max(columns):
            raise ValueError(f"trace file {path} line {line} has fewer "
                             f"columns than the header: {row!r}")
        timestamp = _parse_timestamp(row[timestamp_col], path, line)
        if previous is not None and timestamp < previous:
            raise ValueError(
                f"trace file {path} line {line}: TIMESTAMP is earlier than "
                f"the previous row's — arrival times must be monotonically "
                f"non-decreasing")
        previous = timestamp
        if origin is None:
            origin = timestamp
        requests.append(Request(
            request_id=len(requests),
            input_tokens=_parse_tokens(row[context_col], "ContextTokens", path, line),
            output_tokens=_parse_tokens(row[generated_col], "GeneratedTokens",
                                        path, line),
            arrival_time=timestamp - origin,
        ))
    if not requests:
        raise ValueError(f"trace file {path} has a header but no data rows")
    return RequestTrace(requests=requests, dataset=dataset, arrival_process="replay")


def load_trace(path: Union[str, Path], trace_format: str = "tsv",
               dataset: Optional[str] = None) -> RequestTrace:
    """Load an on-disk trace in one of the supported :data:`TRACE_FORMATS`."""
    if trace_format not in TRACE_FORMATS:
        raise ValueError(f"unknown trace format {trace_format!r}; expected "
                         f"one of {TRACE_FORMATS}")
    dataset = dataset or Path(path).stem
    if trace_format == "azure":
        return read_azure_trace(path, dataset=dataset)
    return read_trace(path, dataset=dataset, arrival_process="replay")


class TraceReplayArrivalGenerator:
    """Replays a recorded trace through the synthetic-generator interface.

    Parameters
    ----------
    path:
        Trace file to replay.
    trace_format:
        ``"tsv"`` (artifact dataset format) or ``"azure"`` (CSV adapter).
    rate_scale:
        Arrival-rate multiplier: ``2.0`` replays the same arrival shape at
        twice the intensity (timestamps divided by the factor).
    window:
        Optional ``(start, end)`` slice, in seconds relative to the start of
        the trace; arrivals in ``[start, end)`` are kept and re-zeroed to
        the window start.
    sample:
        Fraction of requests to keep, ``(0, 1]``.  Subsampling draws a
        deterministic order-preserving subset from ``seed``.
    seed:
        Seed of the subsampling draw.
    max_seq_len:
        Optional model context window; prompt and response lengths are
        clamped so ``input_tokens + output_tokens`` fits within it.
    dataset:
        Label stamped on generated traces (file stem by default).
    """

    def __init__(self, path: Union[str, Path], trace_format: str = "tsv",
                 rate_scale: float = 1.0,
                 window: Optional[Tuple[float, float]] = None,
                 sample: float = 1.0, seed: int = 0,
                 max_seq_len: Optional[int] = None,
                 dataset: Optional[str] = None) -> None:
        validate_replay_transforms(rate_scale, window, sample, max_seq_len)
        self.last_clamp_count = 0  # rows cut short by the last generate()
        self.path = Path(path)
        self.trace_format = trace_format
        self.rate_scale = rate_scale
        self.window = window
        self.sample = sample
        self.seed = seed
        self.max_seq_len = max_seq_len
        source = load_trace(self.path, trace_format)
        self.dataset = dataset or source.dataset
        origin = source.requests[0].arrival_time if source.requests else 0.0
        self._source: List[Tuple[int, int, float]] = [
            (r.input_tokens, r.output_tokens, r.arrival_time - origin)
            for r in source.requests]

    def __len__(self) -> int:
        return len(self._source)

    @property
    def source_duration(self) -> float:
        """Span of the loaded trace before any transform, in seconds."""
        if not self._source:
            return 0.0
        return self._source[-1][2] - self._source[0][2]

    def _clamp(self, input_tokens: int, output_tokens: int) -> Tuple[int, int]:
        if self.max_seq_len is None:
            return input_tokens, output_tokens
        clamped_input = min(input_tokens, self.max_seq_len - 1)
        clamped_output = min(output_tokens, self.max_seq_len - clamped_input)
        if (clamped_input, clamped_output) != (input_tokens, output_tokens):
            self.last_clamp_count += 1
        return clamped_input, clamped_output

    def generate(self, num_requests: Optional[int] = None) -> RequestTrace:
        """Produce the replayed trace, optionally capped to ``num_requests``.

        Unlike the synthetic generators, replay is bounded by the recorded
        trace: a cap larger than the (windowed, subsampled) trace returns
        every available request rather than raising.

        Rows whose lengths had to be cut into the model's context window are
        counted in ``last_clamp_count`` and reported through a
        ``UserWarning`` — clamping deletes recorded prefill/decode work, so
        results over a heavily clamped trace are not comparable across
        models with different context windows.
        """
        if num_requests is not None and num_requests <= 0:
            raise ValueError("num_requests must be positive when given")
        self.last_clamp_count = 0
        rows: Sequence[Tuple[int, int, float]] = self._source
        offset = 0.0
        if self.window is not None:
            start, end = self.window
            rows = [row for row in rows if start <= row[2] < end]
            offset = start
        if self.sample < 1.0 and rows:
            rng = np.random.default_rng(self.seed)
            keep = max(1, int(len(rows) * self.sample))
            indices = np.sort(rng.choice(len(rows), size=keep, replace=False))
            rows = [rows[i] for i in indices]
        if num_requests is not None:
            rows = rows[:num_requests]

        requests: List[Request] = []
        for input_tokens, output_tokens, arrival in rows:
            input_tokens, output_tokens = self._clamp(input_tokens, output_tokens)
            requests.append(Request(
                request_id=len(requests),
                input_tokens=input_tokens,
                output_tokens=output_tokens,
                arrival_time=(arrival - offset) / self.rate_scale,
            ))

        if self.last_clamp_count:
            warnings.warn(
                f"trace {self.path}: {self.last_clamp_count}/{len(requests)} "
                f"replayed requests were clamped into the model's "
                f"{self.max_seq_len}-token context window — recorded "
                f"prefill/decode work was cut", UserWarning, stacklevel=2)
        duration = requests[-1].arrival_time if requests else 0.0
        rate = len(requests) / duration if duration > 0 else None
        return RequestTrace(requests=requests, dataset=self.dataset,
                            arrival_process="replay", rate_per_second=rate)


def trace_from_config(config, max_seq_len: Optional[int] = None) -> RequestTrace:
    """Build the replayed trace a :class:`~repro.core.config.TraceReplayConfig`
    describes (the path :class:`~repro.cluster.simulator.ClusterSimulator`
    takes when its cluster config carries a trace instead of the caller
    passing a workload).
    """
    generator = TraceReplayArrivalGenerator(
        config.path, trace_format=config.format, rate_scale=config.rate_scale,
        window=config.window, sample=config.sample, seed=config.seed,
        max_seq_len=max_seq_len)
    return generator.generate(config.max_requests)
