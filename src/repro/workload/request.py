"""Request model for LLM inference serving.

A :class:`Request` is the unit of work entering the serving system: a prompt
of ``input_tokens`` arriving at ``arrival_time`` that must produce
``output_tokens`` generated tokens.  The scheduler tracks each request's
progress through the initiation and generation phases and the simulator
derives latency metrics (time to first token, end-to-end latency) from the
timestamps recorded here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["RequestState", "Request"]


class RequestState(enum.Enum):
    """Lifecycle of a request inside the serving system."""

    PENDING = "pending"        # arrived, waiting to be admitted into a batch
    INITIATION = "initiation"  # prompt is being processed this iteration
    GENERATION = "generation"  # autoregressively generating tokens
    EVICTED = "evicted"        # KV cache moved to host memory due to pressure
    FINISHED = "finished"      # all output tokens produced


@dataclass
class Request:
    """One inference request and its runtime bookkeeping.

    Attributes
    ----------
    request_id:
        Unique identifier.
    input_tokens:
        Prompt length in tokens.
    output_tokens:
        Number of tokens to generate before the request completes.
    arrival_time:
        Simulated wall-clock arrival time in seconds.
    """

    request_id: int
    input_tokens: int
    output_tokens: int
    arrival_time: float = 0.0

    state: RequestState = field(default=RequestState.PENDING, compare=False)
    generated_tokens: int = field(default=0, compare=False)
    prompt_processed: bool = field(default=False, compare=False)
    first_token_time: Optional[float] = field(default=None, compare=False)
    finish_time: Optional[float] = field(default=None, compare=False)
    admitted_time: Optional[float] = field(default=None, compare=False)
    eviction_count: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.input_tokens <= 0:
            raise ValueError("input_tokens must be positive")
        if self.output_tokens <= 0:
            raise ValueError("output_tokens must be positive")
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be non-negative")

    @property
    def context_length(self) -> int:
        """Tokens currently held in the KV cache for this request."""
        if not self.prompt_processed:
            return 0
        return self.input_tokens + self.generated_tokens

    @property
    def is_finished(self) -> bool:
        return self.state is RequestState.FINISHED

    @property
    def remaining_tokens(self) -> int:
        """Output tokens still to be generated."""
        return max(0, self.output_tokens - self.generated_tokens)

    @property
    def time_to_first_token(self) -> Optional[float]:
        """Latency from arrival to the first generated token, if known."""
        if self.first_token_time is None:
            return None
        return self.first_token_time - self.arrival_time

    @property
    def end_to_end_latency(self) -> Optional[float]:
        """Latency from arrival to completion, if the request finished."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    def record_prompt_done(self, time: float) -> None:
        """Mark the prompt as processed (end of the initiation phase)."""
        self.prompt_processed = True
        self.state = RequestState.GENERATION
        if self.first_token_time is None:
            self.first_token_time = time
        self.generated_tokens += 1
        self._maybe_finish(time)

    def record_generated_token(self, time: float) -> None:
        """Record one generated token in the generation phase."""
        if not self.prompt_processed:
            raise RuntimeError("cannot generate before the prompt is processed")
        self.generated_tokens += 1
        self._maybe_finish(time)

    def truncate(self, time: float) -> None:
        """Finish the request early, before all output tokens were produced.

        Serving systems do this when a sequence hits the model's maximum
        length; the tokens generated so far stand as the response.
        """
        self.state = RequestState.FINISHED
        self.finish_time = time

    def _maybe_finish(self, time: float) -> None:
        if self.generated_tokens >= self.output_tokens:
            self.state = RequestState.FINISHED
            self.finish_time = time
