"""TSV trace reading and writing, compatible with the artifact format.

The LLMServingSim artifact represents request datasets as TSV files with
three columns: input token length, output token length and arrival time.
This module round-trips :class:`~repro.workload.generator.RequestTrace`
objects through that format so traces can be stored, shared and replayed.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Union

from .generator import RequestTrace
from .request import Request

__all__ = ["write_trace", "read_trace", "TRACE_COLUMNS"]

#: Column order used in the TSV files.
TRACE_COLUMNS = ("input_toks", "output_toks", "arrival_time_sec")


def write_trace(trace: RequestTrace, path: Union[str, Path]) -> Path:
    """Write a request trace to a TSV file.

    The file starts with a header row naming the three columns, matching the
    artifact's ``dataset`` input format.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter="\t")
        writer.writerow(TRACE_COLUMNS)
        for request in trace.requests:
            writer.writerow([request.input_tokens, request.output_tokens,
                             f"{request.arrival_time:.6f}"])
    return path


def read_trace(path: Union[str, Path], dataset: str = "file") -> RequestTrace:
    """Read a request trace from a TSV file written by :func:`write_trace`.

    Files without a header row (plain three-column TSV, as in the original
    artifact) are also accepted.
    """
    path = Path(path)
    requests: List[Request] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter="\t")
        rows = list(reader)
    if not rows:
        raise ValueError(f"trace file {path} is empty")

    start = 0
    first = rows[0]
    if first and not _is_number(first[0]):
        start = 1  # skip header

    for i, row in enumerate(rows[start:]):
        if not row or all(not cell.strip() for cell in row):
            continue
        if len(row) < 3:
            raise ValueError(f"trace row {i + start} has fewer than 3 columns: {row!r}")
        requests.append(Request(
            request_id=len(requests),
            input_tokens=int(float(row[0])),
            output_tokens=int(float(row[1])),
            arrival_time=float(row[2]),
        ))
    return RequestTrace(requests=requests, dataset=dataset, arrival_process="file")


def _is_number(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True
