"""TSV trace reading and writing, compatible with the artifact format.

The LLMServingSim artifact represents request datasets as TSV files with
three columns: input token length, output token length and arrival time.
This module round-trips :class:`~repro.workload.generator.RequestTrace`
objects through that format so traces can be stored, shared and replayed.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import List, Union

from .generator import RequestTrace
from .request import Request

__all__ = ["write_trace", "read_trace", "TRACE_COLUMNS"]

#: Column order used in the TSV files.
TRACE_COLUMNS = ("input_toks", "output_toks", "arrival_time_sec")


def write_trace(trace: RequestTrace, path: Union[str, Path]) -> Path:
    """Write a request trace to a TSV file.

    The file starts with a header row naming the three columns, matching the
    artifact's ``dataset`` input format.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter="\t")
        writer.writerow(TRACE_COLUMNS)
        for request in trace.requests:
            writer.writerow([request.input_tokens, request.output_tokens,
                             f"{request.arrival_time:.6f}"])
    return path


def read_trace(path: Union[str, Path], dataset: str = "file",
               arrival_process: str = "file") -> RequestTrace:
    """Read a request trace from a TSV file written by :func:`write_trace`.

    Files without a header row (plain three-column TSV, as in the original
    artifact) are also accepted.  ``arrival_process`` labels the resulting
    trace (callers replaying a known process pass its name; the default
    ``"file"`` marks traces of unknown provenance).  Arrival times must be
    monotonically non-decreasing — a time-travel row raises ``ValueError``
    naming the offending line instead of silently producing a trace whose
    sort order hides the corruption.  Zero-token rows are floored to one
    token (real traces contain empty responses; the request model does not
    admit them), matching the Azure-format reader.
    """
    path = Path(path)
    requests: List[Request] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter="\t")
        rows = list(reader)
    if not rows:
        raise ValueError(f"trace file {path} is empty")

    start = 0
    first = rows[0]
    if first and not _is_number(first[0]):
        start = 1  # skip header

    previous_arrival = None
    for i, row in enumerate(rows[start:]):
        line = i + start + 1  # 1-based file line number for error messages
        if not row or all(not cell.strip() for cell in row):
            continue
        if len(row) < 3:
            raise ValueError(f"trace file {path} line {line} has fewer than "
                             f"3 columns: {row!r}")
        try:
            arrival = float(row[2])
        except ValueError:
            raise ValueError(f"trace file {path} line {line}: arrival time "
                             f"{row[2]!r} is not a number") from None
        if not math.isfinite(arrival):
            # NaN would sail through the monotonicity comparison below.
            raise ValueError(f"trace file {path} line {line}: arrival time "
                             f"{row[2]!r} is not finite")
        if previous_arrival is not None and arrival < previous_arrival:
            raise ValueError(
                f"trace file {path} line {line}: arrival time {arrival} is "
                f"earlier than the previous row's {previous_arrival} — "
                f"arrival times must be monotonically non-decreasing")
        previous_arrival = arrival
        try:
            input_tokens = max(1, int(float(row[0])))
            output_tokens = max(1, int(float(row[1])))
        except ValueError:
            raise ValueError(f"trace file {path} line {line}: token counts "
                             f"{row[0]!r}/{row[1]!r} are not numbers") from None
        requests.append(Request(
            request_id=len(requests),
            input_tokens=input_tokens,
            output_tokens=output_tokens,
            arrival_time=arrival,
        ))
    return RequestTrace(requests=requests, dataset=dataset,
                        arrival_process=arrival_process)


def _is_number(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True
