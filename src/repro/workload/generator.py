"""Request trace generation: arrival processes over dataset length samples.

The paper synthesizes request arrival patterns with a Poisson process over
lengths sampled from ShareGPT (validation, Figure 6) and uses 256 Alpaca
requests for the heterogeneous comparison (Figure 7).  This module provides
both: a Poisson arrival generator and a burst/deterministic generator, each
producing a list of :class:`~repro.workload.request.Request` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .datasets import DatasetProfile, LengthSampler, get_profile
from .request import Request

__all__ = ["RequestTrace", "PoissonArrivalGenerator", "BurstArrivalGenerator", "generate_trace"]


@dataclass
class RequestTrace:
    """An ordered list of requests plus the metadata used to create it."""

    requests: List[Request]
    dataset: str
    arrival_process: str
    rate_per_second: Optional[float] = None

    def __post_init__(self) -> None:
        self.requests.sort(key=lambda r: (r.arrival_time, r.request_id))

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    @property
    def total_input_tokens(self) -> int:
        return sum(r.input_tokens for r in self.requests)

    @property
    def total_output_tokens(self) -> int:
        return sum(r.output_tokens for r in self.requests)

    @property
    def duration(self) -> float:
        """Span between the first and last arrival."""
        if not self.requests:
            return 0.0
        return self.requests[-1].arrival_time - self.requests[0].arrival_time


class PoissonArrivalGenerator:
    """Generates requests with exponentially distributed inter-arrival times.

    Parameters
    ----------
    dataset:
        Name of the dataset profile to sample lengths from.
    rate_per_second:
        Mean arrival rate (lambda) of the Poisson process.
    seed:
        Random seed shared by the arrival and length samplers.
    """

    def __init__(self, dataset: str = "sharegpt", rate_per_second: float = 1.0, seed: int = 0) -> None:
        if rate_per_second <= 0:
            raise ValueError("rate_per_second must be positive")
        self.profile: DatasetProfile = get_profile(dataset)
        self.rate_per_second = rate_per_second
        self._rng = np.random.default_rng(seed)
        self._lengths = LengthSampler(self.profile, seed=seed + 1)

    def generate(self, num_requests: int) -> RequestTrace:
        """Produce a trace of ``num_requests`` requests."""
        if num_requests <= 0:
            raise ValueError("num_requests must be positive")
        inter_arrivals = self._rng.exponential(1.0 / self.rate_per_second, size=num_requests)
        arrival_times = np.cumsum(inter_arrivals)
        requests = []
        for i, arrival in enumerate(arrival_times):
            input_tokens, output_tokens = self._lengths.sample()
            requests.append(Request(
                request_id=i,
                input_tokens=input_tokens,
                output_tokens=output_tokens,
                arrival_time=float(arrival),
            ))
        return RequestTrace(
            requests=requests,
            dataset=self.profile.name,
            arrival_process="poisson",
            rate_per_second=self.rate_per_second,
        )


class BurstArrivalGenerator:
    """Generates requests that all arrive at (nearly) the same instant.

    Used for the one-shot experiments (e.g. the 256 Alpaca requests of the
    NeuPIMs comparison) where the serving system starts with a full queue.
    """

    def __init__(self, dataset: str = "alpaca", seed: int = 0, arrival_time: float = 0.0) -> None:
        self.profile: DatasetProfile = get_profile(dataset)
        self.arrival_time = arrival_time
        self._lengths = LengthSampler(self.profile, seed=seed + 1)

    def generate(self, num_requests: int) -> RequestTrace:
        """Produce a trace of ``num_requests`` simultaneous requests."""
        if num_requests <= 0:
            raise ValueError("num_requests must be positive")
        requests = []
        for i in range(num_requests):
            input_tokens, output_tokens = self._lengths.sample()
            requests.append(Request(
                request_id=i,
                input_tokens=input_tokens,
                output_tokens=output_tokens,
                arrival_time=self.arrival_time,
            ))
        return RequestTrace(
            requests=requests,
            dataset=self.profile.name,
            arrival_process="burst",
        )


def generate_trace(dataset: str, num_requests: int, arrival: str = "poisson",
                   rate_per_second: float = 1.0, seed: int = 0) -> RequestTrace:
    """Convenience front-end used by the CLI and the benchmarks.

    Parameters
    ----------
    dataset:
        ``"sharegpt"`` or ``"alpaca"``.
    num_requests:
        Number of requests to generate.
    arrival:
        ``"poisson"`` or ``"burst"``.
    rate_per_second:
        Poisson arrival rate (ignored for burst arrivals).
    seed:
        Random seed.
    """
    if arrival == "poisson":
        return PoissonArrivalGenerator(dataset, rate_per_second, seed).generate(num_requests)
    if arrival == "burst":
        return BurstArrivalGenerator(dataset, seed).generate(num_requests)
    raise ValueError(f"unknown arrival process {arrival!r}; expected 'poisson' or 'burst'")
