"""Request trace generation: arrival processes over dataset length samples.

The paper synthesizes request arrival patterns with a Poisson process over
lengths sampled from ShareGPT (validation, Figure 6) and uses 256 Alpaca
requests for the heterogeneous comparison (Figure 7).  This module provides
both, plus two burstier processes for the cluster serving experiments where
routing policies only differentiate under uneven load: a Poisson-burst
process (bursts arrive as a Poisson process, each carrying a geometric
number of simultaneous requests) and a diurnal ramp (a non-homogeneous
Poisson process whose rate follows a scaled-down day/night cycle).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .datasets import DatasetProfile, LengthSampler, get_profile
from .request import Request

__all__ = ["RequestTrace", "PoissonArrivalGenerator", "BurstArrivalGenerator",
           "PoissonBurstArrivalGenerator", "DiurnalArrivalGenerator",
           "available_arrivals", "generate_trace"]


@dataclass
class RequestTrace:
    """An ordered list of requests plus the metadata used to create it."""

    requests: List[Request]
    dataset: str
    arrival_process: str
    rate_per_second: Optional[float] = None

    def __post_init__(self) -> None:
        self.requests.sort(key=lambda r: (r.arrival_time, r.request_id))

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    @property
    def total_input_tokens(self) -> int:
        return sum(r.input_tokens for r in self.requests)

    @property
    def total_output_tokens(self) -> int:
        return sum(r.output_tokens for r in self.requests)

    @property
    def duration(self) -> float:
        """Span between the first and last arrival."""
        if not self.requests:
            return 0.0
        return self.requests[-1].arrival_time - self.requests[0].arrival_time


class PoissonArrivalGenerator:
    """Generates requests with exponentially distributed inter-arrival times.

    Parameters
    ----------
    dataset:
        Name of the dataset profile to sample lengths from.
    rate_per_second:
        Mean arrival rate (lambda) of the Poisson process.
    seed:
        Random seed shared by the arrival and length samplers.
    """

    def __init__(self, dataset: str = "sharegpt", rate_per_second: float = 1.0, seed: int = 0) -> None:
        if rate_per_second <= 0:
            raise ValueError("rate_per_second must be positive")
        self.profile: DatasetProfile = get_profile(dataset)
        self.rate_per_second = rate_per_second
        self._rng = np.random.default_rng(seed)
        self._lengths = LengthSampler(self.profile, seed=seed + 1)

    def generate(self, num_requests: int) -> RequestTrace:
        """Produce a trace of ``num_requests`` requests."""
        if num_requests <= 0:
            raise ValueError("num_requests must be positive")
        inter_arrivals = self._rng.exponential(1.0 / self.rate_per_second, size=num_requests)
        arrival_times = np.cumsum(inter_arrivals)
        requests = []
        for i, arrival in enumerate(arrival_times):
            input_tokens, output_tokens = self._lengths.sample()
            requests.append(Request(
                request_id=i,
                input_tokens=input_tokens,
                output_tokens=output_tokens,
                arrival_time=float(arrival),
            ))
        return RequestTrace(
            requests=requests,
            dataset=self.profile.name,
            arrival_process="poisson",
            rate_per_second=self.rate_per_second,
        )


class BurstArrivalGenerator:
    """Generates requests that all arrive at (nearly) the same instant.

    Used for the one-shot experiments (e.g. the 256 Alpaca requests of the
    NeuPIMs comparison) where the serving system starts with a full queue.
    """

    def __init__(self, dataset: str = "alpaca", seed: int = 0, arrival_time: float = 0.0) -> None:
        self.profile: DatasetProfile = get_profile(dataset)
        self.arrival_time = arrival_time
        self._lengths = LengthSampler(self.profile, seed=seed + 1)

    def generate(self, num_requests: int) -> RequestTrace:
        """Produce a trace of ``num_requests`` simultaneous requests."""
        if num_requests <= 0:
            raise ValueError("num_requests must be positive")
        requests = []
        for i in range(num_requests):
            input_tokens, output_tokens = self._lengths.sample()
            requests.append(Request(
                request_id=i,
                input_tokens=input_tokens,
                output_tokens=output_tokens,
                arrival_time=self.arrival_time,
            ))
        return RequestTrace(
            requests=requests,
            dataset=self.profile.name,
            arrival_process="burst",
        )


class PoissonBurstArrivalGenerator:
    """Generates bursty traffic: Poisson burst epochs carrying request groups.

    Burst epochs arrive as a Poisson process; each burst contains a
    geometrically distributed number of requests (mean ``burst_size_mean``)
    that arrive simultaneously at the burst epoch.  The epoch rate is set so
    the *average* request rate equals ``rate_per_second``, which makes the
    process a drop-in, heavier-tailed replacement for the plain Poisson
    generator in load-balancing experiments.
    """

    def __init__(self, dataset: str = "sharegpt", rate_per_second: float = 1.0,
                 burst_size_mean: float = 4.0, seed: int = 0) -> None:
        if rate_per_second <= 0:
            raise ValueError("rate_per_second must be positive")
        if burst_size_mean < 1:
            raise ValueError("burst_size_mean must be at least 1")
        self.profile: DatasetProfile = get_profile(dataset)
        self.rate_per_second = rate_per_second
        self.burst_size_mean = burst_size_mean
        self._rng = np.random.default_rng(seed)
        self._lengths = LengthSampler(self.profile, seed=seed + 1)

    def generate(self, num_requests: int) -> RequestTrace:
        """Produce a trace of ``num_requests`` requests in Poisson bursts."""
        if num_requests <= 0:
            raise ValueError("num_requests must be positive")
        burst_rate = self.rate_per_second / self.burst_size_mean
        requests: List[Request] = []
        epoch = 0.0
        while len(requests) < num_requests:
            epoch += float(self._rng.exponential(1.0 / burst_rate))
            burst = int(self._rng.geometric(1.0 / self.burst_size_mean))
            burst = min(burst, num_requests - len(requests))
            for _ in range(burst):
                input_tokens, output_tokens = self._lengths.sample()
                requests.append(Request(
                    request_id=len(requests),
                    input_tokens=input_tokens,
                    output_tokens=output_tokens,
                    arrival_time=epoch,
                ))
        return RequestTrace(
            requests=requests,
            dataset=self.profile.name,
            arrival_process="poisson-burst",
            rate_per_second=self.rate_per_second,
        )


class DiurnalArrivalGenerator:
    """Non-homogeneous Poisson arrivals following a day/night rate cycle.

    The instantaneous rate ramps sinusoidally between a trough and a peak
    over ``period_seconds`` (a scaled-down "day"), starting at the trough:
    ``rate(t) = mean * (1 + amplitude * -cos(2 pi t / period))`` with
    ``0 <= amplitude < 1``.  Arrivals are drawn by thinning against the peak
    rate, the standard construction for non-homogeneous Poisson processes.
    """

    def __init__(self, dataset: str = "sharegpt", rate_per_second: float = 1.0,
                 amplitude: float = 0.8, period_seconds: float = 240.0,
                 seed: int = 0) -> None:
        if rate_per_second <= 0:
            raise ValueError("rate_per_second must be positive")
        if not 0 <= amplitude < 1:
            raise ValueError("amplitude must be in [0, 1)")
        if period_seconds <= 0:
            raise ValueError("period_seconds must be positive")
        self.profile: DatasetProfile = get_profile(dataset)
        self.rate_per_second = rate_per_second
        self.amplitude = amplitude
        self.period_seconds = period_seconds
        self._rng = np.random.default_rng(seed)
        self._lengths = LengthSampler(self.profile, seed=seed + 1)

    def rate_at(self, time: float) -> float:
        """Instantaneous arrival rate at simulated time ``time``."""
        phase = 2.0 * math.pi * time / self.period_seconds
        return self.rate_per_second * (1.0 - self.amplitude * math.cos(phase))

    def generate(self, num_requests: int) -> RequestTrace:
        """Produce a trace of ``num_requests`` diurnally modulated arrivals."""
        if num_requests <= 0:
            raise ValueError("num_requests must be positive")
        peak_rate = self.rate_per_second * (1.0 + self.amplitude)
        requests: List[Request] = []
        clock = 0.0
        while len(requests) < num_requests:
            clock += float(self._rng.exponential(1.0 / peak_rate))
            if self._rng.uniform() * peak_rate > self.rate_at(clock):
                continue  # thinning: reject candidates above the current rate
            input_tokens, output_tokens = self._lengths.sample()
            requests.append(Request(
                request_id=len(requests),
                input_tokens=input_tokens,
                output_tokens=output_tokens,
                arrival_time=clock,
            ))
        return RequestTrace(
            requests=requests,
            dataset=self.profile.name,
            arrival_process="diurnal",
            rate_per_second=self.rate_per_second,
        )


def _build_poisson(dataset, num_requests, options):
    return PoissonArrivalGenerator(
        dataset, options["rate_per_second"], options["seed"]).generate(num_requests)


def _build_burst(dataset, num_requests, options):
    return BurstArrivalGenerator(dataset, options["seed"]).generate(num_requests)


def _build_poisson_burst(dataset, num_requests, options):
    return PoissonBurstArrivalGenerator(
        dataset, options["rate_per_second"], options["burst_size_mean"],
        options["seed"]).generate(num_requests)


def _build_diurnal(dataset, num_requests, options):
    return DiurnalArrivalGenerator(
        dataset, options["rate_per_second"], options["amplitude"],
        options["period_seconds"], options["seed"]).generate(num_requests)


def _build_replay(dataset, num_requests, options):
    from .replay import TraceReplayArrivalGenerator  # avoid an import cycle
    if options["trace_path"] is None:
        raise ValueError("arrival 'replay' requires trace_path")
    return TraceReplayArrivalGenerator(
        options["trace_path"], trace_format=options["trace_format"],
        rate_scale=options["trace_rate_scale"], window=options["trace_window"],
        sample=options["trace_sample"], seed=options["seed"],
        max_seq_len=options["max_seq_len"]).generate(num_requests)


#: Arrival-process registry of :func:`generate_trace`: name -> builder taking
#: ``(dataset, num_requests, options)``.  Replay lives here next to the
#: synthetic processes so every workload consumer (CLI, benchmarks, cluster
#: runs) selects recorded traces the same way it selects poisson arrivals.
ARRIVAL_GENERATORS = {
    "poisson": _build_poisson,
    "burst": _build_burst,
    "poisson-burst": _build_poisson_burst,
    "diurnal": _build_diurnal,
    "replay": _build_replay,
}


def available_arrivals() -> List[str]:
    """Names of the registered arrival processes, in registration order."""
    return list(ARRIVAL_GENERATORS)


def generate_trace(dataset: str, num_requests: int, arrival: str = "poisson",
                   rate_per_second: float = 1.0, seed: int = 0,
                   burst_size_mean: float = 4.0, amplitude: float = 0.8,
                   period_seconds: float = 240.0,
                   trace_path: Optional[str] = None, trace_format: str = "tsv",
                   trace_rate_scale: float = 1.0,
                   trace_window: Optional[tuple] = None,
                   trace_sample: float = 1.0,
                   max_seq_len: Optional[int] = None) -> RequestTrace:
    """Convenience front-end used by the CLI and the benchmarks.

    Parameters
    ----------
    dataset:
        ``"sharegpt"`` or ``"alpaca"`` (ignored by ``"replay"``, whose
        lengths come from the trace file).
    num_requests:
        Number of requests to generate (for ``"replay"``, a cap on the
        replayed trace).
    arrival:
        One of :func:`available_arrivals`: ``"poisson"``, ``"burst"``,
        ``"poisson-burst"``, ``"diurnal"`` or ``"replay"``.
    rate_per_second:
        Mean arrival rate (ignored for one-shot burst arrivals and replay).
    seed:
        Random seed (for ``"replay"``, seeds the subsampling draw).
    burst_size_mean:
        Mean burst size for the ``"poisson-burst"`` process.
    amplitude / period_seconds:
        Shape of the ``"diurnal"`` rate cycle.
    trace_path / trace_format / trace_rate_scale / trace_window / trace_sample:
        The ``"replay"`` process's source file and transforms — see
        :class:`~repro.workload.replay.TraceReplayArrivalGenerator`.
    max_seq_len:
        Optional context-window clamp applied by ``"replay"``.
    """
    builder = ARRIVAL_GENERATORS.get(arrival)
    if builder is None:
        known = ", ".join(repr(name) for name in ARRIVAL_GENERATORS)
        raise ValueError(f"unknown arrival process {arrival!r}; expected one of {known}")
    options = dict(rate_per_second=rate_per_second, seed=seed,
                   burst_size_mean=burst_size_mean, amplitude=amplitude,
                   period_seconds=period_seconds, trace_path=trace_path,
                   trace_format=trace_format, trace_rate_scale=trace_rate_scale,
                   trace_window=trace_window, trace_sample=trace_sample,
                   max_seq_len=max_seq_len)
    return builder(dataset, num_requests, options)
