"""Synthetic stand-ins for the ShareGPT and Alpaca request datasets.

The paper samples request lengths from ShareGPT (long, conversational
prompts and responses) and Alpaca (short instruction-following prompts and
responses).  Neither dataset is available offline, so this module provides
length distributions calibrated to the statistics commonly reported for
them: log-normally distributed prompt and response lengths with the means /
spreads listed in :data:`DATASET_PROFILES`.

The substitution preserves the behaviour that matters to the simulator: the
ratio of prefill to decode work, the variance of sequence lengths inside a
batch (which drives selective batching and KV paging), and the total memory
pressure of a request stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["DatasetProfile", "DATASET_PROFILES", "LengthSampler", "get_profile"]


@dataclass(frozen=True)
class DatasetProfile:
    """Log-normal length statistics of a request dataset.

    Attributes
    ----------
    name:
        Dataset name (``"sharegpt"`` or ``"alpaca"``).
    mean_input_tokens / mean_output_tokens:
        Target mean prompt / response lengths in tokens.
    sigma_input / sigma_output:
        Log-space standard deviations controlling the spread.
    min_tokens / max_tokens:
        Clamping bounds applied after sampling.
    """

    name: str
    mean_input_tokens: float
    mean_output_tokens: float
    sigma_input: float
    sigma_output: float
    min_tokens: int = 4
    max_tokens: int = 2048


#: Length statistics for the datasets used in the paper's evaluation.
#: ShareGPT has long, high-variance conversations; Alpaca has short
#: instruction prompts and short answers.
DATASET_PROFILES: Dict[str, DatasetProfile] = {
    "sharegpt": DatasetProfile(
        name="sharegpt",
        mean_input_tokens=161.0,
        mean_output_tokens=338.0,
        sigma_input=1.0,
        sigma_output=0.9,
    ),
    "alpaca": DatasetProfile(
        name="alpaca",
        mean_input_tokens=20.0,
        mean_output_tokens=58.0,
        sigma_input=0.7,
        sigma_output=0.8,
        max_tokens=1024,
    ),
}


def get_profile(name: str) -> DatasetProfile:
    """Look up a dataset profile by (case-insensitive) name."""
    key = name.lower()
    if key not in DATASET_PROFILES:
        known = ", ".join(sorted(DATASET_PROFILES))
        raise KeyError(f"unknown dataset {name!r}; known datasets: {known}")
    return DATASET_PROFILES[key]


class LengthSampler:
    """Samples (input_tokens, output_tokens) pairs from a dataset profile.

    The sampler is deterministic for a given seed so that experiments are
    reproducible run to run.
    """

    def __init__(self, profile: DatasetProfile, seed: int = 0) -> None:
        self.profile = profile
        self._rng = np.random.default_rng(seed)

    def _sample_lognormal(self, mean: float, sigma: float) -> int:
        # Choose mu so that the log-normal's mean equals the target mean.
        mu = np.log(mean) - 0.5 * sigma * sigma
        value = self._rng.lognormal(mean=mu, sigma=sigma)
        clamped = int(np.clip(round(value), self.profile.min_tokens, self.profile.max_tokens))
        return clamped

    def sample(self) -> Tuple[int, int]:
        """Draw one (prompt length, response length) pair."""
        input_tokens = self._sample_lognormal(self.profile.mean_input_tokens, self.profile.sigma_input)
        output_tokens = self._sample_lognormal(self.profile.mean_output_tokens, self.profile.sigma_output)
        return input_tokens, output_tokens

    def sample_many(self, count: int) -> List[Tuple[int, int]]:
        """Draw ``count`` length pairs."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.sample() for _ in range(count)]
