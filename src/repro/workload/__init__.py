"""Workload substrate: requests, synthetic datasets, arrival processes, trace I/O."""

from .datasets import DATASET_PROFILES, DatasetProfile, LengthSampler, get_profile
from .generator import (BurstArrivalGenerator, DiurnalArrivalGenerator,
                        PoissonArrivalGenerator, PoissonBurstArrivalGenerator,
                        RequestTrace, available_arrivals, generate_trace)
from .replay import (AZURE_COLUMNS, TRACE_FORMATS, TraceReplayArrivalGenerator,
                     load_trace, read_azure_trace, trace_from_config)
from .request import Request, RequestState
from .trace_io import read_trace, write_trace

__all__ = [
    "DATASET_PROFILES", "DatasetProfile", "LengthSampler", "get_profile",
    "BurstArrivalGenerator", "DiurnalArrivalGenerator", "PoissonArrivalGenerator",
    "PoissonBurstArrivalGenerator", "RequestTrace", "available_arrivals", "generate_trace",
    "AZURE_COLUMNS", "TRACE_FORMATS", "TraceReplayArrivalGenerator",
    "load_trace", "read_azure_trace", "trace_from_config",
    "Request", "RequestState",
    "read_trace", "write_trace",
]
