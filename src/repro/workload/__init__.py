"""Workload substrate: requests, synthetic datasets, arrival processes, trace I/O."""

from .datasets import DATASET_PROFILES, DatasetProfile, LengthSampler, get_profile
from .generator import (BurstArrivalGenerator, DiurnalArrivalGenerator,
                        PoissonArrivalGenerator, PoissonBurstArrivalGenerator,
                        RequestTrace, generate_trace)
from .request import Request, RequestState
from .trace_io import read_trace, write_trace

__all__ = [
    "DATASET_PROFILES", "DatasetProfile", "LengthSampler", "get_profile",
    "BurstArrivalGenerator", "DiurnalArrivalGenerator", "PoissonArrivalGenerator",
    "PoissonBurstArrivalGenerator", "RequestTrace", "generate_trace",
    "Request", "RequestState",
    "read_trace", "write_trace",
]
