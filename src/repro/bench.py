"""Tracked performance harness for the cluster co-simulation.

The paper's headline claim is *fast* simulation; this module keeps that
claim measurable as the codebase grows.  It runs a fixed matrix of cluster
scenarios — homogeneous, heterogeneous, autoscaled, and a steady-state
decode reuse study — under each execution backend, times the wall clock of
the *simulator itself*, verifies that every configuration produces
bit-identical simulated results, and emits a machine-readable
``BENCH_cluster.json`` report that CI archives per commit (the perf
trajectory).

Three speedup levers are tracked:

* **parallel replica execution** — the ``process-pool`` backend against the
  ``serial`` reference on multi-replica scenarios (near-linear on hosts
  with enough cores; CI fails the build when the parallel backend regresses
  below a tolerance of serial);
* **iteration-level memoization** — ``enable_iteration_reuse`` on a
  steady-state decode workload, reporting the iteration-cache hit rate and
  the modeled simulation-time reduction, under the serial *and* the
  process-pool backend (the shared singleflight cache must keep the
  process-pool hit rate at the serial backend's level);
* **the event-driven cluster engine** — the ``event-driven-4`` scenario
  runs an autoscaled, mostly-idle fleet under ``lockstep`` and
  ``event-driven`` engines and reports their wall-clock ratio (CI gates on
  it; the engines must be bit-identical).

Every backend-comparison scenario also runs a ``serial-lockstep`` arm, so
the report pins lockstep == event-driven fingerprints on the whole matrix.

Scenario sizes are deliberately small (gpt2-class replicas, tens of
requests) so the full matrix runs in minutes on a laptop; ``quick=True``
shrinks it further for CI smoke runs.  Absolute times are host-dependent —
the report records the host so trajectories compare like against like;
the speedup *ratios* are the tracked quantities.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .cluster.results import ClusterResult
from .cluster.simulator import ClusterSimulator
from .core.config import AutoscaleConfig, ClusterConfig, ReplicaSpec, ServingSimConfig
from .workload.generator import generate_trace
from .workload.replay import TraceReplayArrivalGenerator
from .workload.request import Request

#: The committed sample trace replayed by the ``trace-replay-4`` scenario.
SAMPLE_TRACE = (Path(__file__).resolve().parents[2]
                / "examples" / "traces" / "sample_azure.csv")

__all__ = ["BenchScenario", "BENCH_SCENARIOS", "cluster_result_fingerprint",
           "run_scenario", "run_bench", "write_report", "check_speedup",
           "check_engine_speedup", "SPEEDUP_SCENARIO", "ENGINE_SPEEDUP_SCENARIO",
           "MIN_CORES_FOR_SPEEDUP_CHECK", "SAMPLE_TRACE"]

#: The scenario whose serial/process-pool ratio gates CI.
SPEEDUP_SCENARIO = "homogeneous-4"

#: The scenario whose lockstep/event-driven ratio gates CI.
ENGINE_SPEEDUP_SCENARIO = "event-driven-4"

#: Below this core count a 4-replica fan-out cannot be expected to win, so
#: the CI speedup gate is skipped (with a note in the report).
MIN_CORES_FOR_SPEEDUP_CHECK = 4

_BACKENDS = ("serial", "process-pool")


def _gpt2_replica(**overrides) -> ServingSimConfig:
    defaults = dict(model_name="gpt2", npu_num=1, npu_mem_gb=4.0)
    defaults.update(overrides)
    return ServingSimConfig(**defaults)


def _steady_decode_requests(num_requests: int, input_tokens: int = 24,
                            output_tokens: int = 28, gap_seconds: float = 2.0) -> List[Request]:
    """A steady stream of identical requests: the memoization best case.

    Every request walks the same context-length trajectory, so after the
    first request (per replica class) every decode iteration is an
    iteration-cache hit — the "common case in steady-state decode" the
    reuse hierarchy targets.
    """
    return [Request(i, input_tokens, output_tokens, arrival_time=gap_seconds * i)
            for i in range(num_requests)]


@dataclass(frozen=True)
class BenchScenario:
    """One tracked entry of the performance matrix.

    ``make_config``/``make_workload`` take the effective request count, so
    quick mode only changes scale, never shape.  ``compare_backends``
    scenarios run once per execution backend (plus a lockstep-engine serial
    arm) and must be bit-identical; ``reuse_study`` scenarios run iteration
    reuse off/on serially plus a reuse-on process-pool arm, and must
    likewise be bit-identical; ``engine_study`` scenarios run the lockstep
    and event-driven cluster engines against each other.
    """

    name: str
    description: str
    num_requests: int
    quick_num_requests: int
    make_config: Callable[[int], ClusterConfig]
    make_workload: Callable[[int], Sequence[Request]]
    compare_backends: bool = True
    reuse_study: bool = False
    engine_study: bool = False

    def requests_for(self, quick: bool) -> int:
        return self.quick_num_requests if quick else self.num_requests


def _homogeneous_config(n: int) -> ClusterConfig:
    return ClusterConfig(num_replicas=4, routing="round-robin",
                         replica=_gpt2_replica())


def _homogeneous_workload(n: int):
    return generate_trace("alpaca", n, arrival="poisson-burst",
                          rate_per_second=8.0, seed=7)


def _heterogeneous_config(n: int) -> ClusterConfig:
    return ClusterConfig(
        routing="weighted-capacity",
        replicas=[ReplicaSpec(_gpt2_replica(), count=2, name="small"),
                  ReplicaSpec(_gpt2_replica(npu_num=4), count=2, name="large")])


def _heterogeneous_workload(n: int):
    return generate_trace("alpaca", n, arrival="poisson-burst",
                          rate_per_second=8.0, burst_size_mean=4.0, seed=11)


def _autoscaled_config(n: int) -> ClusterConfig:
    return ClusterConfig(
        num_replicas=4, routing="slo-ttft", replica=_gpt2_replica(),
        autoscale=AutoscaleConfig(min_replicas=1, max_replicas=4,
                                  window_seconds=4.0, target_rate_per_replica=1.5,
                                  warmup_seconds=0.5, cooldown_seconds=1.0))


def _autoscaled_workload(n: int):
    return generate_trace("alpaca", n, arrival="diurnal", rate_per_second=4.0,
                          amplitude=0.8, period_seconds=30.0, seed=5)


def _decode_config(n: int) -> ClusterConfig:
    return ClusterConfig(num_replicas=2, routing="round-robin",
                         replica=_gpt2_replica(enable_iteration_reuse=True))


def _event_driven_config(n: int) -> ClusterConfig:
    # A mostly-idle fleet is where the event-driven engine earns its keep:
    # the autoscaler parks 3 of 4 replicas (low arrival rate against a high
    # per-replica target), so lockstep broadcasts four pipe round-trips per
    # arrival while event-driven touches only the stale replica.
    return ClusterConfig(
        num_replicas=4, routing="least-outstanding",
        replica=_gpt2_replica(enable_iteration_reuse=True),
        execution_backend="process-pool",
        autoscale=AutoscaleConfig(min_replicas=1, max_replicas=4,
                                  window_seconds=6.0, target_rate_per_replica=4.0,
                                  warmup_seconds=0.5, cooldown_seconds=2.0))


def _event_driven_workload(n: int):
    return generate_trace("alpaca", n, arrival="poisson", rate_per_second=2.0,
                          seed=13)


def _trace_replay_config(n: int) -> ClusterConfig:
    return ClusterConfig(
        num_replicas=4, routing="least-outstanding", replica=_gpt2_replica(),
        autoscale=AutoscaleConfig(min_replicas=1, max_replicas=4,
                                  window_seconds=4.0, target_rate_per_replica=2.0,
                                  warmup_seconds=0.5, cooldown_seconds=1.0))


def _trace_replay_workload(n: int):
    # Replayed bursts hit the autoscaler with step changes the smooth
    # diurnal ramp never produces — the scale-up path under real traffic.
    if not SAMPLE_TRACE.is_file():
        raise FileNotFoundError(
            f"the trace-replay-4 scenario replays the committed sample trace "
            f"at {SAMPLE_TRACE}, which only exists in a repository checkout; "
            f"run the bench from the repo root (or regenerate the sample with "
            f"examples/traces/regenerate.py)")
    return TraceReplayArrivalGenerator(SAMPLE_TRACE, trace_format="azure",
                                       rate_scale=2.0).generate(n)


BENCH_SCENARIOS: Tuple[BenchScenario, ...] = (
    BenchScenario(
        name="homogeneous-4",
        description="4 identical gpt2 replicas, round-robin, poisson-burst "
                    "arrivals (the CI speedup-gate scenario)",
        num_requests=48, quick_num_requests=16,
        make_config=_homogeneous_config, make_workload=_homogeneous_workload),
    BenchScenario(
        name="heterogeneous-4",
        description="2 small + 2 large replicas, weighted-capacity routing",
        num_requests=40, quick_num_requests=12,
        make_config=_heterogeneous_config, make_workload=_heterogeneous_workload),
    BenchScenario(
        name="autoscaled-4",
        description="4 replicas behind slo-ttft routing with a diurnal "
                    "autoscaler (1:4 bounds)",
        num_requests=40, quick_num_requests=12,
        make_config=_autoscaled_config, make_workload=_autoscaled_workload),
    BenchScenario(
        name="trace-replay-4",
        description="4 gpt2 replicas autoscaled 1:4, replaying the committed "
                    "Azure-format sample trace at 2x rate",
        num_requests=48, quick_num_requests=16,
        make_config=_trace_replay_config, make_workload=_trace_replay_workload),
    BenchScenario(
        name="event-driven-4",
        description="4 gpt2 replicas autoscaled down to 1 under light "
                    "traffic, process-pool backend; lockstep vs "
                    "event-driven cluster engine (the CI engine-gate "
                    "scenario)",
        num_requests=40, quick_num_requests=12,
        make_config=_event_driven_config, make_workload=_event_driven_workload,
        compare_backends=False, engine_study=True),
    BenchScenario(
        name="steady-decode-reuse",
        description="2 replicas serving identical steady-state decode "
                    "requests; iteration-level memoization off vs on, plus "
                    "a reuse-on process-pool arm (shared-cache hit parity)",
        num_requests=12, quick_num_requests=8,
        make_config=_decode_config,
        make_workload=_steady_decode_requests,
        compare_backends=False, reuse_study=True),
)


# -- result fingerprinting ------------------------------------------------------


def cluster_result_fingerprint(result: ClusterResult) -> str:
    """Deterministic digest of everything a cluster simulation *simulated*.

    Covers the routing assignment, every per-replica iteration record,
    every request's latency milestones and the scaling timeline — exact
    float reprs, no rounding — so two runs agree on the fingerprint iff
    they are bit-identical in simulated behaviour.  Simulator-side
    accounting (wall clock, modeled time, cache counters) is deliberately
    excluded: it describes how fast the simulator ran, not what it
    simulated.
    """
    parts: List[str] = [result.routing, repr(sorted(result.assignments.items()))]
    for replica_result in result.replica_results:
        parts.append(repr([(r.index, r.start_time, r.end_time, r.latency,
                            r.num_requests, r.prompt_tokens, r.generated_tokens,
                            r.evictions, r.reloads)
                           for r in replica_result.iterations]))
        parts.append(repr(sorted(
            (q.request_id, q.arrival_time, q.first_token_time, q.finish_time,
             q.generated_tokens, q.state.value)
            for q in replica_result.requests)))
    parts.append(repr([(e.time, e.action, e.replica_id, e.replica_class,
                        e.provisioned_after) for e in result.scaling_timeline]))
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


# -- scenario execution ---------------------------------------------------------


def _timed_run(config: ClusterConfig, workload) -> Tuple[ClusterResult, float]:
    simulator = ClusterSimulator(config)
    started = time.perf_counter()
    result = simulator.run(workload)
    return result, time.perf_counter() - started


def _with_backend(config: ClusterConfig, backend: str) -> ClusterConfig:
    return dataclasses.replace(config, execution_backend=backend)


def _with_engine(config: ClusterConfig, engine: str) -> ClusterConfig:
    return dataclasses.replace(config, engine=engine)


def _with_iteration_reuse(config: ClusterConfig, enabled: bool) -> ClusterConfig:
    specs = [dataclasses.replace(
        spec, config=dataclasses.replace(spec.config, enable_iteration_reuse=enabled))
        for spec in config.replica_specs()]
    return dataclasses.replace(config, replicas=specs)


def run_scenario(scenario: BenchScenario, quick: bool = False) -> Dict:
    """Run one scenario arm-by-arm and return its report entry."""
    n = scenario.requests_for(quick)
    entry: Dict = {
        "name": scenario.name,
        "description": scenario.description,
        "num_requests": n,
    }

    if scenario.compare_backends:
        backends: Dict[str, Dict] = {}
        fingerprints = []
        # The serial-lockstep arm pins the event-driven engine (the default
        # on the other arms) against the legacy lockstep loop on every
        # scenario shape in the matrix; it does not enter the speedup ratio.
        arms = [("serial", "serial", "event-driven"),
                ("process-pool", "process-pool", "event-driven"),
                ("serial-lockstep", "serial", "lockstep")]
        for arm_name, backend, engine in arms:
            config = _with_engine(
                _with_backend(scenario.make_config(n), backend), engine)
            result, wall = _timed_run(config, scenario.make_workload(n))
            fingerprint = cluster_result_fingerprint(result)
            fingerprints.append(fingerprint)
            backends[arm_name] = {
                "wall_seconds": wall,
                "fingerprint": fingerprint,
                "finished_requests": len(result.finished_requests),
                "iterations": sum(len(r.iterations) for r in result.replica_results),
            }
        entry["backends"] = backends
        entry["bit_identical"] = len(set(fingerprints)) == 1
        entry["speedup"] = (backends["serial"]["wall_seconds"]
                            / backends["process-pool"]["wall_seconds"])

    if scenario.engine_study:
        engines: Dict[str, Dict] = {}
        fingerprints = []
        for engine in ("lockstep", "event-driven"):
            config = _with_engine(scenario.make_config(n), engine)
            result, wall = _timed_run(config, scenario.make_workload(n))
            fingerprint = cluster_result_fingerprint(result)
            fingerprints.append(fingerprint)
            engines[engine] = {
                "wall_seconds": wall,
                "fingerprint": fingerprint,
                "finished_requests": len(result.finished_requests),
                "iterations": sum(len(r.iterations) for r in result.replica_results),
            }
        entry["engines"] = engines
        entry["bit_identical"] = len(set(fingerprints)) == 1
        entry["engine_speedup"] = (engines["lockstep"]["wall_seconds"]
                                   / engines["event-driven"]["wall_seconds"])

    if scenario.reuse_study:
        arms: Dict[str, Dict] = {}
        fingerprints = []
        # The process-pool arm tracks shared-cache hit parity: the
        # singleflight cache service must keep cross-replica reuse working
        # across worker processes, not just in the serial backend.
        for arm, enabled, backend in (("reuse-off", False, "serial"),
                                      ("reuse-on", True, "serial"),
                                      ("reuse-on-process-pool", True, "process-pool")):
            config = _with_backend(
                _with_iteration_reuse(scenario.make_config(n), enabled), backend)
            result, wall = _timed_run(config, scenario.make_workload(n))
            hits = sum(r.iteration_cache_hits for r in result.replica_results)
            misses = sum(r.iteration_cache_misses for r in result.replica_results)
            modeled = sum(r.modeled_simulation_time.total for r in result.replica_results)
            fingerprint = cluster_result_fingerprint(result)
            fingerprints.append(fingerprint)
            arms[arm] = {
                "wall_seconds": wall,
                "fingerprint": fingerprint,
                "iteration_cache_hits": hits,
                "iteration_cache_misses": misses,
                "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
                "modeled_simulation_seconds": modeled,
            }
        entry["reuse"] = arms
        entry["bit_identical"] = len(set(fingerprints)) == 1
        entry["hit_rate"] = arms["reuse-on"]["hit_rate"]
        entry["hit_rate_process_pool"] = arms["reuse-on-process-pool"]["hit_rate"]
        entry["wall_speedup"] = (arms["reuse-off"]["wall_seconds"]
                                 / arms["reuse-on"]["wall_seconds"])
        entry["modeled_speedup"] = (
            arms["reuse-off"]["modeled_simulation_seconds"]
            / arms["reuse-on"]["modeled_simulation_seconds"])

    return entry


def run_bench(quick: bool = False,
              only: Optional[Sequence[str]] = None) -> Dict:
    """Run the scenario matrix and return the full report dictionary."""
    names = {s.name for s in BENCH_SCENARIOS}
    if only:
        unknown = set(only) - names
        if unknown:
            raise ValueError(f"unknown bench scenario(s) {sorted(unknown)}; "
                             f"expected a subset of {sorted(names)}")
    scenarios = [s for s in BENCH_SCENARIOS if not only or s.name in only]
    report: Dict = {
        "schema": "bench-cluster/v1",
        "quick": quick,
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "scenarios": [run_scenario(scenario, quick) for scenario in scenarios],
    }
    return report


def write_report(report: Dict, path: Union[str, Path]) -> Path:
    """Write the report as pretty-printed JSON (the CI artifact)."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def check_speedup(report: Dict, threshold: float,
                  scenario_name: str = SPEEDUP_SCENARIO) -> Tuple[bool, str]:
    """CI gate: the parallel backend must not regress below ``threshold``.

    ``threshold`` is the minimum acceptable ``serial / process-pool``
    wall-clock ratio (e.g. 0.9 tolerates a 10 % slowdown; > 1 demands a
    win).  On hosts with fewer than ``MIN_CORES_FOR_SPEEDUP_CHECK`` cores
    the check passes vacuously — a 4-replica fan-out cannot beat serial
    without cores to fan out to.
    """
    cpu_count = report.get("host", {}).get("cpu_count", 1)
    if cpu_count < MIN_CORES_FOR_SPEEDUP_CHECK:
        return True, (f"speedup check skipped: host has {cpu_count} core(s), "
                      f"needs {MIN_CORES_FOR_SPEEDUP_CHECK}")
    for entry in report["scenarios"]:
        if entry["name"] == scenario_name:
            speedup = entry.get("speedup")
            if speedup is None:
                return False, f"scenario {scenario_name!r} has no backend comparison"
            if not entry.get("bit_identical", False):
                return False, (f"scenario {scenario_name!r}: backends are not "
                               f"bit-identical")
            if speedup < threshold:
                return False, (f"scenario {scenario_name!r}: process-pool speedup "
                               f"{speedup:.2f}x is below the {threshold:.2f}x floor")
            return True, (f"scenario {scenario_name!r}: process-pool speedup "
                          f"{speedup:.2f}x (floor {threshold:.2f}x)")
    return False, f"scenario {scenario_name!r} not found in the report"


def check_engine_speedup(report: Dict, threshold: float,
                         scenario_name: str = ENGINE_SPEEDUP_SCENARIO,
                         ) -> Tuple[bool, str]:
    """CI gate: the event-driven engine must not regress below ``threshold``.

    ``threshold`` is the minimum acceptable ``lockstep / event-driven``
    wall-clock ratio on the engine-study scenario (0.9 tolerates noise; the
    engine's win grows with fleet idleness, which tiny CI scenarios only
    partially exhibit).  Like :func:`check_speedup`, hosts below
    ``MIN_CORES_FOR_SPEEDUP_CHECK`` cores skip the check — the scenario
    fans out over the process-pool backend.
    """
    cpu_count = report.get("host", {}).get("cpu_count", 1)
    if cpu_count < MIN_CORES_FOR_SPEEDUP_CHECK:
        return True, (f"engine speedup check skipped: host has {cpu_count} "
                      f"core(s), needs {MIN_CORES_FOR_SPEEDUP_CHECK}")
    for entry in report["scenarios"]:
        if entry["name"] == scenario_name:
            speedup = entry.get("engine_speedup")
            if speedup is None:
                return False, f"scenario {scenario_name!r} has no engine comparison"
            if not entry.get("bit_identical", False):
                return False, (f"scenario {scenario_name!r}: engines are not "
                               f"bit-identical")
            if speedup < threshold:
                return False, (f"scenario {scenario_name!r}: event-driven engine "
                               f"speedup {speedup:.2f}x is below the "
                               f"{threshold:.2f}x floor")
            return True, (f"scenario {scenario_name!r}: event-driven engine "
                          f"speedup {speedup:.2f}x (floor {threshold:.2f}x)")
    return False, f"scenario {scenario_name!r} not found in the report"
