"""Collective-communication payload sizing for model parallelism.

Tensor parallelism requires two all-reduces per transformer block (after the
attention output projection and after the FFN down projection), each over
the activations of every token processed this iteration.  Pipeline
parallelism exchanges the same activation tensor between consecutive stages.
This module centralizes those payload computations so the graph converter
and the analytical baselines agree on communication volumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.architectures import ModelConfig

__all__ = ["CollectiveSizing"]


@dataclass(frozen=True)
class CollectiveSizing:
    """Communication payload calculator for one model.

    Attributes
    ----------
    model:
        The model whose activations are being communicated.
    """

    model: ModelConfig

    def activation_bytes(self, num_tokens: int) -> float:
        """Bytes of one activation tensor for ``num_tokens`` tokens."""
        if num_tokens < 0:
            raise ValueError("num_tokens must be non-negative")
        return float(num_tokens * self.model.hidden_size * self.model.dtype_bytes)

    def allreduce_bytes(self, num_tokens: int) -> float:
        """Payload of one tensor-parallel all-reduce."""
        return self.activation_bytes(num_tokens)

    def allreduces_per_block(self, tensor_parallel: int) -> int:
        """Number of all-reduces each transformer block needs.

        Two for any tensor-parallel degree above one (attention output and
        FFN output), zero otherwise.
        """
        return 2 if tensor_parallel > 1 else 0

    def pipeline_transfer_bytes(self, num_tokens: int) -> float:
        """Payload of the activation hand-off between pipeline stages."""
        return self.activation_bytes(num_tokens)

    def iteration_allreduce_bytes(self, num_tokens: int, tensor_parallel: int,
                                  num_blocks: int) -> float:
        """Total all-reduce traffic of a full iteration."""
        per_block = self.allreduces_per_block(tensor_parallel) * self.allreduce_bytes(num_tokens)
        return per_block * num_blocks
