"""Graph converter: engine traces -> device-placed execution graphs.

The converter is the third component of the LLMServingSim workflow
(Figure 4): it takes the per-operator latency trace produced by the
execution engine stack for one representative transformer block, replicates
it across every block of the model, places the work onto the devices of the
system topology according to the configured parallelism strategy, and
inserts the communication operators the strategy requires:

* tensor parallelism — each batched operator is sharded across the group and
  two ALL-REDUCE collectives are inserted per block;
* selective batching — per-request attention operators are assigned to
  different devices of the group based on their request identifier;
* pipeline parallelism — consecutive stages are chained with point-to-point
  activation transfers;
* heterogeneous pools — PIM-mapped operators run on PIM devices, with
  inter-pool transfer operators inserted around them when the PIM devices
  form a separate pool;
* KV-cache paging — eviction / reload decisions of the scheduler become
  host<->device memory operators.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

from ..engine.trace import TraceEntry
from ..models.architectures import ModelConfig
from ..scheduler.kv_cache import KVMemoryEvent, KVMemoryEventType
from ..system.topology import DeviceType, PIMMode, SystemTopology
from .collectives import CollectiveSizing
from .execgraph import ExecutionGraph
from .parallelism import ParallelismPlan

__all__ = ["GraphGranularity", "GraphConverter", "ConversionStats"]


class GraphGranularity(enum.Enum):
    """Level of detail of the produced execution graph.

    ``OPERATOR`` creates one node per operator per device, the faithful
    setting used for validation experiments.  ``BLOCK`` merges runs of
    consecutive non-attention operators into a single node per device, which
    keeps graphs tractable when sweeping to thousands of devices
    (the Figure 10 scalability experiment).
    """

    OPERATOR = "operator"
    BLOCK = "block"


@dataclass
class ConversionStats:
    """Size statistics of a converted graph (used by simulation-time accounting)."""

    compute_nodes: int = 0
    collective_nodes: int = 0
    collective_participants: int = 0
    p2p_nodes: int = 0
    memory_nodes: int = 0

    @property
    def total_nodes(self) -> int:
        return (self.compute_nodes + self.collective_nodes
                + self.p2p_nodes + self.memory_nodes)


class GraphConverter:
    """Builds execution graphs from engine traces.

    Parameters
    ----------
    topology:
        The system topology (devices, groups, PIM provisioning).
    plan:
        The resolved parallelism plan.
    granularity:
        Graph detail level (see :class:`GraphGranularity`).
    """

    def __init__(self, topology: SystemTopology, plan: ParallelismPlan,
                 granularity: GraphGranularity = GraphGranularity.OPERATOR) -> None:
        if plan.pipeline_parallel != topology.num_groups:
            raise ValueError(
                f"parallelism plan expects {plan.pipeline_parallel} pipeline stages but the "
                f"topology has {topology.num_groups} groups")
        if plan.tensor_parallel != topology.tensor_parallel_degree:
            raise ValueError(
                f"parallelism plan expects tensor width {plan.tensor_parallel} but the topology "
                f"groups have {topology.tensor_parallel_degree} devices")
        self.topology = topology
        self.plan = plan
        self.granularity = granularity
        self.stats = ConversionStats()

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _coarsen(entries: Sequence[TraceEntry]) -> List[TraceEntry]:
        """Merge runs of consecutive non-attention entries into single entries."""
        merged: List[TraceEntry] = []
        run: List[TraceEntry] = []

        def flush() -> None:
            if not run:
                return
            first = run[0]
            total_latency = sum(e.latency for e in run)
            merged.append(TraceEntry(
                operator=replace(first.operator, name=first.operator.name + "+fused"),
                engine=first.engine,
                latency=total_latency,
                compute_time=sum(e.compute_time for e in run),
                memory_time=sum(e.memory_time for e in run),
                cached=all(e.cached for e in run),
                sub_batch=first.sub_batch))
            run.clear()

        for entry in entries:
            if entry.operator.is_attention:
                flush()
                merged.append(entry)
            else:
                run.append(entry)
        flush()
        return merged

    def _sub_batch_tokens(self, entries: Sequence[TraceEntry], fallback: int) -> int:
        for entry in entries:
            if not entry.operator.is_attention and entry.operator.m > 0:
                return entry.operator.m
        return fallback

    def _attention_device(self, request_index: int, group: Sequence[int]) -> int:
        """Round-robin assignment of per-request attention to group devices."""
        return group[request_index % len(group)]

    # -- main conversion -----------------------------------------------------

    def convert(self,
                model: ModelConfig,
                sub_batch_block_traces: Sequence[Sequence[TraceEntry]],
                embedding_trace: Sequence[TraceEntry],
                head_trace: Sequence[TraceEntry],
                memory_events: Sequence[KVMemoryEvent] = (),
                total_new_tokens: int = 0) -> ExecutionGraph:
        """Build the execution graph of one iteration.

        Parameters
        ----------
        model:
            The model being served (for communication payload sizing).
        sub_batch_block_traces:
            Per sub-batch trace of the representative transformer block, in
            layer order; replicated across all ``plan.num_blocks`` blocks.
        embedding_trace / head_trace:
            Traces of the embedding and LM-head operators (full batch).
        memory_events:
            KV-cache migrations decided by the scheduler for this iteration.
        total_new_tokens:
            Total tokens processed this iteration (payload fallback).
        """
        self.stats = ConversionStats()
        graph = ExecutionGraph()
        sizing = CollectiveSizing(model)
        tp = self.plan.tensor_parallel
        groups = self.topology.compute_groups
        pim_mode = self.topology.pim_mode
        pim_pool = self.topology.pim_pool

        if self.granularity is GraphGranularity.BLOCK:
            sub_batch_block_traces = [self._coarsen(entries) for entries in sub_batch_block_traces]

        # KV-cache migrations execute on the first device of the first group;
        # reloads gate the iteration's compute, evictions merely occupy the link.
        memory_node_ids: List[int] = []
        reload_node_ids: List[int] = []
        for index, event in enumerate(memory_events):
            node = graph.add_memory(
                name=f"kv_{event.event_type.value}.r{event.request_id}.{index}",
                device=groups[0][0], comm_bytes=event.num_bytes,
                direction="store" if event.event_type is KVMemoryEventType.EVICT else "load",
                request_id=event.request_id)
            memory_node_ids.append(node.node_id)
            if event.event_type is KVMemoryEventType.RELOAD:
                reload_node_ids.append(node.node_id)
            self.stats.memory_nodes += 1

        # Embedding on the first stage (sharded across its devices).
        embed_ids: List[int] = []
        for entry in embedding_trace:
            for device in groups[0]:
                node = graph.add_compute(
                    name=f"{entry.operator.name}.d{device}", device=device,
                    duration=entry.latency / tp, deps=reload_node_ids,
                    phase=entry.operator.phase.value)
                embed_ids.append(node.node_id)
                self.stats.compute_nodes += 1

        # Per sub-batch chains through every block of every stage.
        final_node_ids: List[int] = []
        for sub_batch_index, entries in enumerate(sub_batch_block_traces):
            if not entries:
                continue
            tokens = self._sub_batch_tokens(entries, total_new_tokens)
            # The dependency frontier of this sub-batch on each device.
            last_on_device: Dict[int, List[int]] = {d: list(embed_ids) for d in groups[0]}
            prev_stage_tail: List[int] = []

            for stage_index, group in enumerate(groups):
                block_start, block_end = self.plan.blocks_for_stage(stage_index)
                if stage_index > 0:
                    # Pipeline hand-off from the previous stage.
                    p2p = graph.add_p2p(
                        name=f"sb{sub_batch_index}.stage{stage_index}.recv",
                        src=groups[stage_index - 1][0], dst=group[0],
                        comm_bytes=sizing.pipeline_transfer_bytes(tokens),
                        deps=prev_stage_tail, sub_batch=sub_batch_index)
                    self.stats.p2p_nodes += 1
                    last_on_device = {d: [p2p.node_id] for d in group}

                for block in range(block_start, block_end):
                    last_on_device = self._convert_block(
                        graph, entries, model, sizing, tokens, sub_batch_index, block,
                        group, tp, pim_mode, pim_pool, last_on_device)

                prev_stage_tail = sorted({nid for ids in last_on_device.values() for nid in ids})

            final_node_ids.extend(prev_stage_tail)

        # LM head on the last stage, after every sub-batch finished.
        last_group = groups[-1]
        for entry in head_trace:
            for device in last_group:
                node = graph.add_compute(
                    name=f"{entry.operator.name}.d{device}", device=device,
                    duration=entry.latency / tp, deps=final_node_ids,
                    phase=entry.operator.phase.value)
                self.stats.compute_nodes += 1

        return graph

    # -- per-block conversion --------------------------------------------------

    def _convert_block(self, graph: ExecutionGraph, entries: Sequence[TraceEntry],
                       model: ModelConfig, sizing: CollectiveSizing, tokens: int,
                       sub_batch_index: int, block: int, group: Sequence[int], tp: int,
                       pim_mode: PIMMode, pim_pool: Sequence[int],
                       last_on_device: Dict[int, List[int]]) -> Dict[int, List[int]]:
        """Lay out one transformer block of one sub-batch onto a device group."""
        pending_attention: List[int] = []
        attention_index = 0
        allreduce_count = 0
        prefix = f"sb{sub_batch_index}.b{block}"

        def add_allreduce(deps: List[int], label: str) -> int:
            node = graph.add_collective(
                name=f"{prefix}.allreduce{label}", devices=list(group),
                comm_bytes=sizing.allreduce_bytes(tokens), deps=deps,
                sub_batch=sub_batch_index, block=block)
            self.stats.collective_nodes += 1
            self.stats.collective_participants += len(group)
            return node.node_id

        for entry in entries:
            op = entry.operator
            if op.is_attention:
                npu_device = self._attention_device(attention_index, group)
                if entry.engine is DeviceType.PIM and pim_mode is PIMMode.LOCAL:
                    target = self.topology.pim_partner(npu_device) or npu_device
                    deps = last_on_device[npu_device]
                    node = graph.add_compute(
                        name=f"{prefix}.{op.name}", device=target, duration=entry.latency,
                        deps=deps, sub_batch=sub_batch_index, block=block)
                    self.stats.compute_nodes += 1
                    pending_attention.append(node.node_id)
                elif entry.engine is DeviceType.PIM and pim_mode is PIMMode.POOL and pim_pool:
                    pim_device = pim_pool[attention_index % len(pim_pool)]
                    send_bytes = max(1.0, float(op.m * model.hidden_size * model.dtype_bytes))
                    send = graph.add_p2p(
                        name=f"{prefix}.{op.name}.send", src=npu_device, dst=pim_device,
                        comm_bytes=send_bytes, deps=last_on_device[npu_device],
                        pool_transfer=True, sub_batch=sub_batch_index)
                    compute = graph.add_compute(
                        name=f"{prefix}.{op.name}", device=pim_device, duration=entry.latency,
                        deps=[send.node_id], sub_batch=sub_batch_index, block=block)
                    recv = graph.add_p2p(
                        name=f"{prefix}.{op.name}.recv", src=pim_device, dst=npu_device,
                        comm_bytes=max(1.0, op.output_bytes), deps=[compute.node_id],
                        pool_transfer=True, sub_batch=sub_batch_index)
                    self.stats.p2p_nodes += 2
                    self.stats.compute_nodes += 1
                    pending_attention.append(recv.node_id)
                else:
                    deps = last_on_device[npu_device]
                    node = graph.add_compute(
                        name=f"{prefix}.{op.name}", device=npu_device, duration=entry.latency,
                        deps=deps, sub_batch=sub_batch_index, block=block)
                    self.stats.compute_nodes += 1
                    pending_attention.append(node.node_id)
                attention_index += 1
                continue

            # Batched (non-attention) operator: sharded across the group.
            new_ids: List[int] = []
            for device in group:
                deps = list(last_on_device[device])
                if pending_attention:
                    deps.extend(pending_attention)
                node = graph.add_compute(
                    name=f"{prefix}.{op.name}.d{device}", device=device,
                    duration=entry.latency / tp, deps=deps,
                    sub_batch=sub_batch_index, block=block)
                self.stats.compute_nodes += 1
                new_ids.append(node.node_id)
                last_on_device[device] = [node.node_id]

            if pending_attention:
                # This is the first batched operator after the attention
                # layers (the output projection): synchronize with a
                # tensor-parallel all-reduce.
                pending_attention = []
                if tp > 1:
                    allreduce_count += 1
                    ar = add_allreduce(new_ids, str(allreduce_count))
                    last_on_device = {d: [ar] for d in group}

        # End-of-block all-reduce after the FFN down projection.
        if tp > 1:
            tail = sorted({nid for ids in last_on_device.values() for nid in ids})
            allreduce_count += 1
            ar = add_allreduce(tail, str(allreduce_count))
            last_on_device = {d: [ar] for d in group}
        return last_on_device
