"""Execution graph representation (the Chakra-graph substitute).

The graph converter lowers hardware-simulation traces into an execution
graph whose nodes are compute intervals, collective communications,
point-to-point transfers and host<->device memory movements, each placed on
a specific device of the system topology.  The system simulator
(:mod:`repro.system.simulator`) walks this graph with a discrete-event
engine to produce the iteration's end-to-end latency.

The representation intentionally mirrors Chakra execution traces: nodes have
explicit data dependencies and a device placement, and communication nodes
carry byte counts rather than durations (the network model assigns their
timing during system simulation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

__all__ = ["GraphNodeType", "GraphNode", "ExecutionGraph"]


class GraphNodeType(enum.Enum):
    """Kind of work a graph node represents."""

    COMPUTE = "compute"          # fixed-duration compute on one device
    COLLECTIVE = "collective"    # all-reduce / all-gather across a device group
    P2P = "p2p"                  # point-to-point activation transfer
    MEMORY = "memory"            # host<->device KV-page transfer


@dataclass
class GraphNode:
    """One node of the execution graph.

    Attributes
    ----------
    node_id:
        Unique integer id within the graph.
    name:
        Human-readable label (operator name, collective name, ...).
    node_type:
        The :class:`GraphNodeType`.
    device:
        Id of the device executing the node.  For collectives this is the
        device *initiating* the collective; the participating group is given
        by ``comm_group``.
    duration:
        Pre-computed execution time in seconds for COMPUTE nodes (assigned by
        the execution engine stack).  Zero for communication nodes, whose
        timing is derived from ``comm_bytes`` by the network model.
    comm_bytes:
        Payload size for COLLECTIVE / P2P / MEMORY nodes.
    comm_group:
        Devices participating in a collective.
    peer_device:
        Destination device for P2P nodes (source is ``device``).
    deps:
        Ids of nodes that must complete before this node may start.
    metadata:
        Free-form annotations (phase, block index, request id, ...).
    """

    node_id: int
    name: str
    node_type: GraphNodeType
    device: int
    duration: float = 0.0
    comm_bytes: float = 0.0
    comm_group: Sequence[int] = field(default_factory=tuple)
    peer_device: Optional[int] = None
    deps: Set[int] = field(default_factory=set)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("duration must be non-negative")
        if self.comm_bytes < 0:
            raise ValueError("comm_bytes must be non-negative")
        self.deps = set(self.deps)
        self.comm_group = tuple(self.comm_group)


class ExecutionGraph:
    """A DAG of :class:`GraphNode` objects with device placement.

    The graph owns node-id allocation; use :meth:`add_compute`,
    :meth:`add_collective`, :meth:`add_p2p` and :meth:`add_memory` to build
    it incrementally.
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, GraphNode] = {}
        self._next_id = 0

    # -- construction -------------------------------------------------------

    def _allocate(self, node: GraphNode) -> GraphNode:
        self._nodes[node.node_id] = node
        return node

    def _new_id(self) -> int:
        node_id = self._next_id
        self._next_id += 1
        return node_id

    def add_compute(self, name: str, device: int, duration: float,
                    deps: Iterable[int] = (), **metadata: object) -> GraphNode:
        """Add a fixed-duration compute node."""
        return self._allocate(GraphNode(
            node_id=self._new_id(), name=name, node_type=GraphNodeType.COMPUTE,
            device=device, duration=duration, deps=set(deps), metadata=dict(metadata)))

    def add_collective(self, name: str, devices: Sequence[int], comm_bytes: float,
                       deps: Iterable[int] = (), **metadata: object) -> GraphNode:
        """Add a collective (all-reduce style) communication across devices."""
        devices = tuple(devices)
        if not devices:
            raise ValueError("a collective needs at least one participating device")
        return self._allocate(GraphNode(
            node_id=self._new_id(), name=name, node_type=GraphNodeType.COLLECTIVE,
            device=devices[0], comm_bytes=comm_bytes, comm_group=devices,
            deps=set(deps), metadata=dict(metadata)))

    def add_p2p(self, name: str, src: int, dst: int, comm_bytes: float,
                deps: Iterable[int] = (), **metadata: object) -> GraphNode:
        """Add a point-to-point transfer from ``src`` to ``dst``."""
        return self._allocate(GraphNode(
            node_id=self._new_id(), name=name, node_type=GraphNodeType.P2P,
            device=src, peer_device=dst, comm_bytes=comm_bytes,
            deps=set(deps), metadata=dict(metadata)))

    def add_memory(self, name: str, device: int, comm_bytes: float, direction: str,
                   deps: Iterable[int] = (), **metadata: object) -> GraphNode:
        """Add a host<->device memory transfer (KV-page eviction or reload).

        ``direction`` is ``"store"`` (device to host) or ``"load"`` (host to
        device).
        """
        if direction not in ("store", "load"):
            raise ValueError("direction must be 'store' or 'load'")
        meta = dict(metadata)
        meta["direction"] = direction
        return self._allocate(GraphNode(
            node_id=self._new_id(), name=name, node_type=GraphNodeType.MEMORY,
            device=device, comm_bytes=comm_bytes, deps=set(deps), metadata=meta))

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self):
        return iter(self._nodes.values())

    def node(self, node_id: int) -> GraphNode:
        return self._nodes[node_id]

    @property
    def nodes(self) -> List[GraphNode]:
        return list(self._nodes.values())

    def nodes_on_device(self, device: int) -> List[GraphNode]:
        return [n for n in self._nodes.values() if n.device == device]

    def devices(self) -> Set[int]:
        """All devices referenced by the graph."""
        devices: Set[int] = set()
        for node in self._nodes.values():
            devices.add(node.device)
            devices.update(node.comm_group)
            if node.peer_device is not None:
                devices.add(node.peer_device)
        return devices

    def validate(self) -> None:
        """Check referential integrity and acyclicity.

        Raises
        ------
        ValueError
            If a dependency points at a missing node or the graph has a cycle.
        """
        for node in self._nodes.values():
            for dep in node.deps:
                if dep not in self._nodes:
                    raise ValueError(f"node {node.node_id} depends on missing node {dep}")
        self.topological_order()  # raises on cycles

    def topological_order(self) -> List[GraphNode]:
        """Nodes in dependency order (Kahn's algorithm).

        Raises
        ------
        ValueError
            If the graph contains a cycle.
        """
        in_degree = {nid: len(n.deps) for nid, n in self._nodes.items()}
        dependents: Dict[int, List[int]] = {nid: [] for nid in self._nodes}
        for node in self._nodes.values():
            for dep in node.deps:
                if dep in dependents:
                    dependents[dep].append(node.node_id)

        ready = sorted(nid for nid, deg in in_degree.items() if deg == 0)
        order: List[GraphNode] = []
        queue = list(ready)
        while queue:
            nid = queue.pop(0)
            order.append(self._nodes[nid])
            for child in dependents[nid]:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    queue.append(child)
        if len(order) != len(self._nodes):
            raise ValueError("execution graph contains a cycle")
        return order

    @property
    def total_compute_time(self) -> float:
        """Sum of all compute-node durations (serial execution upper bound)."""
        return sum(n.duration for n in self._nodes.values()
                   if n.node_type is GraphNodeType.COMPUTE)

    @property
    def total_comm_bytes(self) -> float:
        """Sum of all communication payloads."""
        return sum(n.comm_bytes for n in self._nodes.values()
                   if n.node_type is not GraphNodeType.COMPUTE)

    def critical_path_compute_time(self) -> float:
        """Longest chain of compute durations ignoring communication costs.

        A cheap lower bound on iteration latency, used by tests and by the
        operator scheduler's heuristics.
        """
        finish: Dict[int, float] = {}
        for node in self.topological_order():
            start = max((finish[d] for d in node.deps), default=0.0)
            finish[node.node_id] = start + node.duration
        return max(finish.values(), default=0.0)
