"""Graph substrate: execution graphs, parallelism strategies and the graph converter."""

from .collectives import CollectiveSizing
from .converter import ConversionStats, GraphConverter, GraphGranularity
from .execgraph import ExecutionGraph, GraphNode, GraphNodeType
from .parallelism import ParallelismPlan, ParallelismStrategy, make_plan

__all__ = [
    "CollectiveSizing",
    "ConversionStats", "GraphConverter", "GraphGranularity",
    "ExecutionGraph", "GraphNode", "GraphNodeType",
    "ParallelismPlan", "ParallelismStrategy", "make_plan",
]
