"""Parallelism strategies: tensor, pipeline and hybrid model parallelism.

The paper supports three parallelization schemes (Section IV-A): tensor
parallelism shards every weight matrix across the devices of a group,
pipeline parallelism assigns contiguous ranges of transformer blocks to
different groups, and hybrid parallelism combines both (tensor parallelism
inside each group, pipeline parallelism across groups).

A :class:`ParallelismPlan` resolves a strategy against a concrete topology:
how many tensor-parallel shards exist, how many pipeline stages, and which
blocks run on which stage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from ..system.topology import SystemTopology

__all__ = ["ParallelismStrategy", "ParallelismPlan", "make_plan"]


class ParallelismStrategy(enum.Enum):
    """The artifact's ``parallel`` knob."""

    TENSOR = "tensor"
    PIPELINE = "pipeline"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class ParallelismPlan:
    """A resolved parallelism configuration.

    Attributes
    ----------
    strategy:
        The requested strategy.
    tensor_parallel:
        Number of devices sharing each weight shard (devices per group).
    pipeline_parallel:
        Number of pipeline stages (groups).
    num_blocks:
        Total transformer blocks being partitioned.
    """

    strategy: ParallelismStrategy
    tensor_parallel: int
    pipeline_parallel: int
    num_blocks: int

    def __post_init__(self) -> None:
        if self.tensor_parallel <= 0 or self.pipeline_parallel <= 0:
            raise ValueError("parallel degrees must be positive")
        if self.num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        # More stages than blocks is allowed: the surplus stages simply receive
        # zero blocks (they only forward activations), matching how the paper
        # sweeps parallelism configurations independently of the model depth.

    @property
    def total_devices(self) -> int:
        return self.tensor_parallel * self.pipeline_parallel

    def blocks_for_stage(self, stage: int) -> Tuple[int, int]:
        """Half-open block range ``[start, end)`` assigned to a pipeline stage.

        Blocks are distributed as evenly as possible, with earlier stages
        receiving the remainder.
        """
        if not 0 <= stage < self.pipeline_parallel:
            raise IndexError(f"stage {stage} out of range")
        base = self.num_blocks // self.pipeline_parallel
        remainder = self.num_blocks % self.pipeline_parallel
        start = stage * base + min(stage, remainder)
        size = base + (1 if stage < remainder else 0)
        return start, start + size

    def stage_of_block(self, block: int) -> int:
        """Pipeline stage that owns a given block index."""
        if not 0 <= block < self.num_blocks:
            raise IndexError(f"block {block} out of range")
        for stage in range(self.pipeline_parallel):
            start, end = self.blocks_for_stage(stage)
            if start <= block < end:
                return stage
        raise RuntimeError("unreachable")  # pragma: no cover

    def blocks_per_stage(self) -> List[int]:
        """Number of blocks on each stage."""
        return [self.blocks_for_stage(s)[1] - self.blocks_for_stage(s)[0]
                for s in range(self.pipeline_parallel)]


def make_plan(strategy: ParallelismStrategy, topology: SystemTopology, num_blocks: int) -> ParallelismPlan:
    """Resolve a strategy against a topology.

    * ``TENSOR``: a single group containing every compute device.
    * ``PIPELINE``: one stage per compute device (tensor width 1).
    * ``HYBRID``: the topology's group structure as-is (tensor parallelism
      inside each group, pipeline across groups).

    Raises
    ------
    ValueError
        If the topology's grouping is incompatible with the strategy (e.g.
        pure tensor parallelism requested on a multi-group topology).
    """
    num_devices = topology.num_compute_devices
    if strategy is ParallelismStrategy.TENSOR:
        if topology.num_groups != 1:
            raise ValueError("tensor parallelism requires a single NPU group "
                             f"(topology has {topology.num_groups})")
        return ParallelismPlan(strategy, tensor_parallel=num_devices,
                               pipeline_parallel=1, num_blocks=num_blocks)
    if strategy is ParallelismStrategy.PIPELINE:
        if topology.tensor_parallel_degree != 1:
            raise ValueError("pipeline parallelism requires groups of size 1 "
                             f"(topology groups have {topology.tensor_parallel_degree} devices)")
        return ParallelismPlan(strategy, tensor_parallel=1,
                               pipeline_parallel=num_devices, num_blocks=num_blocks)
    # Hybrid: take the grouping from the topology.
    return ParallelismPlan(strategy,
                           tensor_parallel=topology.tensor_parallel_degree,
                           pipeline_parallel=topology.num_groups,
                           num_blocks=num_blocks)
