"""LLMServingSim: the top-level iteration-level co-simulation loop.

This is the orchestrator tying every substrate together, following the
workflow of Figure 4:

1. The **scheduler** admits arrived requests into a batch, grows the KV
   cache of running requests, and decides page evictions / reloads.
2. The **execution engine stack** compiles the model for that batch (with
   block-replication reuse), maps operators onto the NPU / PIM engines and
   produces a latency trace, consulting the computation-reuse cache.
3. The **graph converter** replicates the block trace across the model's
   blocks, places work onto devices according to the parallelism strategy
   and inserts collectives, pipeline transfers and KV-migration operators.
4. The **system simulator** (ASTRA-sim substitute) plays the execution graph
   forward and reports the iteration latency.
5. The latency feeds back into the scheduler clock and the loop repeats
   until every request finishes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from ..engine.cache import SimulationCache
from ..engine.compiler import CompilerModel
from ..engine.iteration_cache import (IterationCacheEntry, IterationReuseCache,
                                      iteration_signature)
from ..engine.mapping import build_mapper
from ..engine.npu import NPUEngine
from ..engine.pim import PIMEngine
from ..engine.stack import ExecutionEngineStack
from ..graph.converter import GraphConverter
from ..graph.parallelism import make_plan
from ..models.architectures import ModelConfig, get_model
from ..models.graph import BatchComposition, build_iteration_graph
from ..scheduler.batch import IterationPlan
from ..scheduler.kv_cache import build_kv_manager
from ..scheduler.memory import compute_kv_budget
from ..scheduler.scheduler import build_scheduler
from ..scheduler.subbatch import SubBatchPartitioner
from ..system.network import NetworkModel
from ..system.simulator import SystemSimulator
from ..system.topology import DeviceType, PIMMode, build_topology
from ..workload.generator import RequestTrace
from ..workload.request import Request
from .config import ServingSimConfig
from .results import IterationRecord, ServingResult
from .simtime import SimTimeTracker

__all__ = ["LLMServingSim"]


class LLMServingSim:
    """Hardware/software co-simulator for LLM inference serving.

    Parameters
    ----------
    config:
        The run configuration.  All components (topology, engines, scheduler,
        graph converter, system simulator) are constructed from it and can be
        inspected or replaced before calling :meth:`run` — e.g. to plug in a
        custom accelerator engine via ``engine_stack.register_engine``.
    iteration_cache:
        Optional externally-owned iteration-level reuse cache.  Latencies
        memoized there depend on the full serving configuration, so a cache
        must only be shared between simulators built from the *same*
        configuration — the cluster layer shares one per replica class.
        ``None`` creates a private cache when
        ``config.enable_iteration_reuse`` is set.
    """

    def __init__(self, config: Optional[ServingSimConfig] = None,
                 iteration_cache: Optional[IterationReuseCache] = None) -> None:
        self.config = config or ServingSimConfig()
        cfg = self.config

        self.model: ModelConfig = get_model(cfg.model_name)
        self.topology = build_topology(
            num_devices=cfg.npu_num,
            num_groups=cfg.effective_groups,
            device_type=DeviceType.NPU,
            device_memory_bytes=cfg.npu_mem_bytes,
            pim_mode=cfg.pim_mode,
            pim_memory_bytes=cfg.pim_config.memory_capacity_bytes,
        )
        self.plan = make_plan(cfg.parallel, self.topology, self.model.num_layers)

        engines = {DeviceType.NPU: NPUEngine(cfg.npu_config)}
        if cfg.pim_mode is not PIMMode.NONE:
            engines[DeviceType.PIM] = PIMEngine(cfg.pim_config)
        self.engine_stack = ExecutionEngineStack(
            engines=engines,
            mapper=build_mapper(cfg.pim_mode),
            compiler=CompilerModel(
                seconds_per_operator=cfg.calibration.compile_seconds_per_operator,
                enable_block_reuse=cfg.enable_block_reuse,
                enable_cross_iteration_cache=cfg.enable_computation_reuse),
            cache=SimulationCache(enabled=cfg.enable_computation_reuse),
        )

        budget = compute_kv_budget(self.model, cfg.npu_num, cfg.npu_mem_bytes)
        self.memory_budget = budget
        kv_capacity = cfg.kv_capacity_bytes or budget.kv_capacity_bytes
        self.kv_manager = build_kv_manager(cfg.kv_manage, self.model,
                                           kv_capacity, cfg.kv_page_tokens)
        self.scheduler = build_scheduler(cfg.scheduling, self.kv_manager,
                                         cfg.max_batch, cfg.batch_delay)
        self.converter = GraphConverter(self.topology, self.plan, cfg.graph_granularity)
        self.system_simulator = SystemSimulator(self.topology, NetworkModel(cfg.network))
        self.partitioner = (SubBatchPartitioner(cfg.num_sub_batches)
                            if cfg.sub_batch else None)
        if iteration_cache is not None:
            self.iteration_cache: Optional[IterationReuseCache] = iteration_cache
        elif cfg.enable_iteration_reuse:
            self.iteration_cache = IterationReuseCache()
        else:
            self.iteration_cache = None
        self.simtime = SimTimeTracker(cfg.calibration)
        self.result = ServingResult(model_name=self.model.name)

    # -- incremental API -------------------------------------------------------
    #
    # ``submit`` + ``step`` expose the co-simulation loop one iteration at a
    # time so external drivers (notably :class:`repro.cluster.ClusterSimulator`)
    # can interleave several replicas on a common timeline.  ``run`` is the
    # batch front-end built on top of them.

    @property
    def clock(self) -> float:
        """The replica's current simulated wall-clock time."""
        return self.scheduler.clock

    @property
    def has_work(self) -> bool:
        """Whether any submitted request still needs processing."""
        return self.scheduler.has_work

    def submit(self, workload: "RequestTrace | Sequence[Request]") -> None:
        """Hand requests to the scheduler; callable repeatedly mid-simulation."""
        requests = list(workload.requests) if isinstance(workload, RequestTrace) else list(workload)
        self.scheduler.submit(requests)
        self.result.requests.extend(requests)

    def step(self) -> Optional[IterationRecord]:
        """Simulate one serving iteration, skipping idle gaps in the timeline.

        Returns the iteration's record, or ``None`` when no further progress
        is possible — either all work is done or the remaining requests are
        stuck (e.g. a request larger than the KV budget).
        """
        while self.scheduler.has_work:
            with self.simtime.measure("scheduler"):
                plan = self.scheduler.next_iteration()
            if plan is None:
                next_arrival = self.scheduler.next_arrival_time()
                if next_arrival is None:
                    return None
                target = next_arrival + self.config.batch_delay
                if self.scheduler.clock >= target:
                    # The clock already passed every pending arrival yet no
                    # batch could be formed: stalled, stop rather than spin.
                    return None
                self.scheduler.clock = target
                continue

            latency = self.simulate_iteration_latency(plan)
            start_time = self.scheduler.clock
            with self.simtime.measure("scheduler"):
                self.scheduler.complete_iteration(plan, latency)

            record = IterationRecord(
                index=plan.iteration_index,
                start_time=start_time,
                end_time=self.scheduler.clock,
                latency=latency,
                num_requests=plan.num_requests,
                prompt_tokens=plan.prompt_tokens,
                generated_tokens=plan.generation_tokens,
                evictions=sum(1 for e in plan.memory_events if e.event_type.value == "evict"),
                reloads=sum(1 for e in plan.memory_events if e.event_type.value == "reload"),
                kv_utilization=self.kv_manager.utilization(),
            )
            self.result.iterations.append(record)
            return record
        return None

    def collect_result(self) -> ServingResult:
        """Snapshot the accumulated result with up-to-date timing breakdowns."""
        self.result.measured_simulation_time = self.simtime.measured
        self.result.modeled_simulation_time = self.simtime.modeled
        return self.result

    # -- public API ------------------------------------------------------------

    def run(self, workload: "RequestTrace | Sequence[Request]",
            max_iterations: Optional[int] = None) -> ServingResult:
        """Simulate serving of a request workload to completion.

        Parameters
        ----------
        workload:
            A request trace or plain list of requests.
        max_iterations:
            Optional safety cap on the number of iterations simulated.

        Returns
        -------
        ServingResult
            Per-iteration records, request-level metrics and the
            simulation-time breakdown.
        """
        self.submit(workload)
        iterations = 0
        while self.scheduler.has_work:
            if max_iterations is not None and iterations >= max_iterations:
                break
            if self.step() is None:
                break
            iterations += 1
        return self.collect_result()

    # -- single-iteration pipeline ----------------------------------------------

    def simulate_single_batch(self, batch: BatchComposition) -> float:
        """Simulate one iteration for an explicit batch composition.

        Convenience entry point for the simulation-time experiments (Figures
        8-10), which measure the cost of simulating a single iteration with a
        fixed batch geometry rather than serving a full request trace.
        Returns the iteration's simulated latency; the per-component
        simulation-time accounting is available via :attr:`simtime`.
        """
        plan = IterationPlan(iteration_index=0, scheduled_at=self.scheduler.clock, batch=batch)
        return self.simulate_iteration_latency(plan)

    def simulate_iteration_latency(self, plan: IterationPlan) -> float:
        """Run the engine stack, graph converter and system simulator for one plan.

        With iteration-level reuse enabled, a plan whose signature (batch
        phases/context lengths, memory events, sub-batch partitioning) was
        simulated before short-circuits the whole pipeline and replays the
        memoized latency — which is exact, because the pipeline is a
        deterministic function of the signature for a fixed configuration.
        """
        batch = plan.batch

        signature = None
        if self.iteration_cache is not None and self.iteration_cache.enabled:
            num_sub_batches = (self.partitioner.num_sub_batches
                               if self.partitioner is not None else 1)
            signature = iteration_signature(batch, plan.memory_events, num_sub_batches)
            entry = self.iteration_cache.lookup(signature)
            if entry is not None:
                self.simtime.account_cached_iteration(plan.num_requests)
                self.result.iteration_cache_hits += 1
                self.last_system_result = None
                self.last_engine_report = replace(entry.engine_report,
                                                  served_from_iteration_cache=True)
                return entry.latency
            self.result.iteration_cache_misses += 1

        if self.partitioner is not None:
            sub_batches = self.partitioner.partition(batch)
        else:
            sub_batches = [batch]

        full_graph = build_iteration_graph(self.model, batch)
        if len(sub_batches) > 1:
            sub_graphs = [build_iteration_graph(self.model, sb) for sb in sub_batches]
            sub_batch_operator_lists = [g.block_operators for g in sub_graphs]
        else:
            sub_batch_operator_lists = [full_graph.block_operators]

        with self.simtime.measure("engine"):
            stack_result = self.engine_stack.simulate_iteration(
                full_graph, sub_batch_operator_lists)

        with self.simtime.measure("graph_converter"):
            exec_graph = self.converter.convert(
                model=self.model,
                sub_batch_block_traces=stack_result.sub_batch_traces,
                embedding_trace=list(stack_result.embedding_and_head_trace)[:1],
                head_trace=list(stack_result.embedding_and_head_trace)[1:],
                memory_events=plan.memory_events,
                total_new_tokens=batch.total_new_tokens,
            )

        with self.simtime.measure("system_sim"):
            system_result = self.system_simulator.simulate(exec_graph,
                                                           start_time=self.scheduler.clock)

        self.simtime.account_iteration(stack_result.report, self.converter.stats,
                                       plan.num_requests)
        self.last_system_result = system_result
        self.last_engine_report = stack_result.report
        if signature is not None:
            self.iteration_cache.store(signature, IterationCacheEntry(
                latency=system_result.makespan, engine_report=stack_result.report))
        return system_result.makespan
