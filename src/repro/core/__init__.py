"""Core package: configuration, orchestration loop, results and simulation-time accounting."""

from .config import ClusterConfig, ServingSimConfig
from .results import IterationRecord, ServingResult, ThroughputPoint
from .simtime import ComponentTimes, SimTimeCalibration, SimTimeTracker
from .simulator import LLMServingSim

__all__ = [
    "ServingSimConfig", "ClusterConfig",
    "IterationRecord", "ServingResult", "ThroughputPoint",
    "ComponentTimes", "SimTimeCalibration", "SimTimeTracker",
    "LLMServingSim",
]
