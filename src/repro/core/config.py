"""Top-level simulation configuration.

:class:`ServingSimConfig` mirrors the input parameters of the original
artifact (Appendix G: ``model_name``, ``npu_num``, ``max_batch``,
``batch_delay``, ``scheduling``, ``parallel``, ``npu_group``, ``npu_mem``,
``kv_manage``, ``pim_type``, ``sub_batch``, ...) and adds the knobs specific
to this re-implementation (computation-reuse switches, graph granularity,
network configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..engine.npu import NPUConfig, TABLE1_NPU
from ..engine.pim import PIMConfig, TABLE1_PIM
from ..graph.converter import GraphGranularity
from ..graph.parallelism import ParallelismStrategy
from ..system.network import NetworkConfig
from ..system.topology import PIMMode
from .simtime import SimTimeCalibration

__all__ = ["ServingSimConfig", "ClusterConfig"]


@dataclass
class ServingSimConfig:
    """Configuration of one LLMServingSim run.

    Attributes
    ----------
    model_name:
        Registered model to serve (e.g. ``"gpt3-7b"``).
    npu_num:
        Number of compute devices (the artifact's default is 16).
    npu_group:
        Number of pipeline-parallel groups for hybrid parallelism.
    parallel:
        Parallelism strategy (tensor / pipeline / hybrid).
    scheduling:
        Scheduling policy: ``"orca"`` (iteration-level) or ``"static"``.
    max_batch:
        Maximum requests per batch; 0 means unlimited.
    batch_delay:
        Minimum queueing delay before a request may be admitted (seconds).
    npu_mem_gb:
        Local memory per compute device in GB (artifact default 40 is for
        A100-class devices; Table I's NPU has 24).
    kv_manage:
        KV-cache management scheme: ``"vllm"`` (paged) or ``"max"``.
    kv_page_tokens:
        Page size in tokens for the paged manager.
    kv_capacity_bytes:
        Explicit KV-cache budget override in bytes.  ``None`` (the default)
        derives the budget from the device memory left after model weights
        and activations; tests and capacity studies set it directly.
    pim_type:
        PIM provisioning: ``"none"``, ``"local"`` or ``"pool"``.
    sub_batch:
        Enable NeuPIMs-style sub-batch interleaving (requires PIM).
    num_sub_batches:
        Number of sub-batches when interleaving is enabled.
    enable_block_reuse / enable_computation_reuse:
        The two fast-simulation techniques of Section IV-C.
    graph_granularity:
        Execution-graph detail level.
    npu_config / pim_config / network:
        Hardware and interconnect parameters (Table I defaults).
    calibration:
        Simulation-time calibration constants.
    skip_initiation:
        The artifact's ``gen`` flag: start every request directly in the
        generation phase (prompt treated as already cached).
    seed:
        Random seed for workload generation helpers.
    """

    model_name: str = "gpt3-7b"
    npu_num: int = 16
    npu_group: int = 1
    parallel: ParallelismStrategy = ParallelismStrategy.HYBRID
    scheduling: str = "orca"
    max_batch: int = 0
    batch_delay: float = 0.0
    npu_mem_gb: float = 24.0
    kv_manage: str = "vllm"
    kv_page_tokens: int = 16
    kv_capacity_bytes: Optional[int] = None
    pim_type: str = "none"
    sub_batch: bool = False
    num_sub_batches: int = 2
    enable_block_reuse: bool = True
    enable_computation_reuse: bool = True
    graph_granularity: GraphGranularity = GraphGranularity.OPERATOR
    npu_config: NPUConfig = field(default_factory=lambda: TABLE1_NPU)
    pim_config: PIMConfig = field(default_factory=lambda: TABLE1_PIM)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    calibration: SimTimeCalibration = field(default_factory=SimTimeCalibration)
    skip_initiation: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.npu_num <= 0:
            raise ValueError("npu_num must be positive")
        if self.npu_group <= 0:
            raise ValueError("npu_group must be positive")
        if self.npu_num % self.npu_group != 0:
            raise ValueError("npu_num must be divisible by npu_group")
        if self.npu_mem_gb <= 0:
            raise ValueError("npu_mem_gb must be positive")
        if self.pim_type not in ("none", "local", "pool"):
            raise ValueError("pim_type must be 'none', 'local' or 'pool'")
        if self.sub_batch and self.pim_type == "none":
            raise ValueError("sub_batch interleaving requires a PIM-enabled system")
        if self.num_sub_batches <= 0:
            raise ValueError("num_sub_batches must be positive")
        if self.kv_capacity_bytes is not None and self.kv_capacity_bytes <= 0:
            raise ValueError("kv_capacity_bytes must be positive when set")
        if isinstance(self.parallel, str):
            self.parallel = ParallelismStrategy(self.parallel)
        if isinstance(self.graph_granularity, str):
            self.graph_granularity = GraphGranularity(self.graph_granularity)

    @property
    def pim_mode(self) -> PIMMode:
        return PIMMode(self.pim_type)

    @property
    def npu_mem_bytes(self) -> int:
        return int(self.npu_mem_gb * 1024 ** 3)

    @property
    def effective_groups(self) -> int:
        """Number of device groups implied by the parallelism strategy."""
        if self.parallel is ParallelismStrategy.TENSOR:
            return 1
        if self.parallel is ParallelismStrategy.PIPELINE:
            return self.npu_num
        return self.npu_group


@dataclass
class ClusterConfig:
    """Configuration of a multi-replica serving cluster.

    A cluster is ``num_replicas`` independent :class:`ServingSimConfig`-shaped
    serving systems (each with its own scheduler, KV manager and engine stack)
    behind a request router.  Routing-policy names are resolved by
    :func:`repro.cluster.build_router`; the built-in policies are
    ``"round-robin"``, ``"least-outstanding"`` and ``"least-kv"``.

    Attributes
    ----------
    num_replicas:
        Number of serving replicas behind the router.
    routing:
        Name of the request-routing policy.
    replica:
        Configuration template every replica is built from.
    """

    num_replicas: int = 2
    routing: str = "round-robin"
    replica: ServingSimConfig = field(default_factory=ServingSimConfig)

    def __post_init__(self) -> None:
        if self.num_replicas <= 0:
            raise ValueError("num_replicas must be positive")
        if not self.routing:
            raise ValueError("routing policy name must be non-empty")
