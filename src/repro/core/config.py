"""Top-level simulation configuration.

:class:`ServingSimConfig` mirrors the input parameters of the original
artifact (Appendix G: ``model_name``, ``npu_num``, ``max_batch``,
``batch_delay``, ``scheduling``, ``parallel``, ``npu_group``, ``npu_mem``,
``kv_manage``, ``pim_type``, ``sub_batch``, ...) and adds the knobs specific
to this re-implementation (computation-reuse switches, graph granularity,
network configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..engine.npu import NPUConfig, TABLE1_NPU
from ..engine.pim import PIMConfig, TABLE1_PIM
from ..graph.converter import GraphGranularity
from ..graph.parallelism import ParallelismStrategy
from ..system.network import NetworkConfig
from ..system.topology import PIMMode
from .simtime import SimTimeCalibration

__all__ = ["ServingSimConfig", "ReplicaSpec", "AutoscaleConfig",
           "TraceReplayConfig", "ClusterConfig"]


@dataclass
class ServingSimConfig:
    """Configuration of one LLMServingSim run.

    Attributes
    ----------
    model_name:
        Registered model to serve (e.g. ``"gpt3-7b"``).
    npu_num:
        Number of compute devices (the artifact's default is 16).
    npu_group:
        Number of pipeline-parallel groups for hybrid parallelism.
    parallel:
        Parallelism strategy (tensor / pipeline / hybrid).
    scheduling:
        Scheduling policy: ``"orca"`` (iteration-level) or ``"static"``.
    max_batch:
        Maximum requests per batch; 0 means unlimited.
    batch_delay:
        Minimum queueing delay before a request may be admitted (seconds).
    npu_mem_gb:
        Local memory per compute device in GB (artifact default 40 is for
        A100-class devices; Table I's NPU has 24).
    kv_manage:
        KV-cache management scheme: ``"vllm"`` (paged) or ``"max"``.
    kv_page_tokens:
        Page size in tokens for the paged manager.
    kv_capacity_bytes:
        Explicit KV-cache budget override in bytes.  ``None`` (the default)
        derives the budget from the device memory left after model weights
        and activations; tests and capacity studies set it directly.
    pim_type:
        PIM provisioning: ``"none"``, ``"local"`` or ``"pool"``.
    sub_batch:
        Enable NeuPIMs-style sub-batch interleaving (requires PIM).
    num_sub_batches:
        Number of sub-batches when interleaving is enabled.
    enable_block_reuse / enable_computation_reuse:
        The two fast-simulation techniques of Section IV-C.
    enable_iteration_reuse:
        Iteration-level memoization: skip the whole simulation pipeline
        (graph build, engine stack, converter, system sim) for iterations
        whose signature — batch phases/context lengths, memory events,
        sub-batch partitioning — was simulated before.  Hits replay exact
        latencies, so simulated serving behaviour is unchanged; only the
        simulation-time accounting reflects the saved work.  Off by default
        because the simulation-time experiments (Figures 8-10) study the
        operator-level techniques in isolation.
    graph_granularity:
        Execution-graph detail level.
    npu_config / pim_config / network:
        Hardware and interconnect parameters (Table I defaults).
    calibration:
        Simulation-time calibration constants.
    skip_initiation:
        The artifact's ``gen`` flag: start every request directly in the
        generation phase (prompt treated as already cached).
    seed:
        Random seed for workload generation helpers.
    """

    model_name: str = "gpt3-7b"
    npu_num: int = 16
    npu_group: int = 1
    parallel: ParallelismStrategy = ParallelismStrategy.HYBRID
    scheduling: str = "orca"
    max_batch: int = 0
    batch_delay: float = 0.0
    npu_mem_gb: float = 24.0
    kv_manage: str = "vllm"
    kv_page_tokens: int = 16
    kv_capacity_bytes: Optional[int] = None
    pim_type: str = "none"
    sub_batch: bool = False
    num_sub_batches: int = 2
    enable_block_reuse: bool = True
    enable_computation_reuse: bool = True
    enable_iteration_reuse: bool = False
    graph_granularity: GraphGranularity = GraphGranularity.OPERATOR
    npu_config: NPUConfig = field(default_factory=lambda: TABLE1_NPU)
    pim_config: PIMConfig = field(default_factory=lambda: TABLE1_PIM)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    calibration: SimTimeCalibration = field(default_factory=SimTimeCalibration)
    skip_initiation: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.npu_num <= 0:
            raise ValueError("npu_num must be positive")
        if self.npu_group <= 0:
            raise ValueError("npu_group must be positive")
        if self.npu_num % self.npu_group != 0:
            raise ValueError("npu_num must be divisible by npu_group")
        if self.npu_mem_gb <= 0:
            raise ValueError("npu_mem_gb must be positive")
        if self.pim_type not in ("none", "local", "pool"):
            raise ValueError("pim_type must be 'none', 'local' or 'pool'")
        if self.sub_batch and self.pim_type == "none":
            raise ValueError("sub_batch interleaving requires a PIM-enabled system")
        if self.num_sub_batches <= 0:
            raise ValueError("num_sub_batches must be positive")
        if self.kv_capacity_bytes is not None and self.kv_capacity_bytes <= 0:
            raise ValueError("kv_capacity_bytes must be positive when set")
        if isinstance(self.parallel, str):
            self.parallel = ParallelismStrategy(self.parallel)
        if isinstance(self.graph_granularity, str):
            self.graph_granularity = GraphGranularity(self.graph_granularity)

    @property
    def pim_mode(self) -> PIMMode:
        return PIMMode(self.pim_type)

    @property
    def npu_mem_bytes(self) -> int:
        return int(self.npu_mem_gb * 1024 ** 3)

    @property
    def effective_groups(self) -> int:
        """Number of device groups implied by the parallelism strategy."""
        if self.parallel is ParallelismStrategy.TENSOR:
            return 1
        if self.parallel is ParallelismStrategy.PIPELINE:
            return self.npu_num
        return self.npu_group


@dataclass
class ReplicaSpec:
    """One homogeneous class of replicas inside a (possibly mixed) fleet.

    A heterogeneous cluster is described as a list of specs, each wrapping a
    full :class:`ServingSimConfig` plus the number of identical replicas to
    instantiate from it — e.g. two NPU-only replicas next to two NPU+PIM
    replicas, or a pool of small-``npu_num`` systems backing a few large ones.

    Attributes
    ----------
    config:
        The serving configuration every replica of this class is built from.
    count:
        Number of identical replicas to instantiate.
    name:
        Replica-class label used in per-class SLO reporting; derived from the
        distinguishing hardware knobs when left empty.
    """

    config: ServingSimConfig = field(default_factory=ServingSimConfig)
    count: int = 1
    name: str = ""

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("replica count must be positive")
        if not self.name:
            label = f"{self.config.model_name}-npu{self.config.npu_num}"
            if self.config.pim_type != "none":
                label += f"-pim-{self.config.pim_type}"
            self.name = label


@dataclass
class AutoscaleConfig:
    """Autoscaling policy of a cluster: replica count tracking arrival rate.

    The :class:`~repro.cluster.autoscaler.Autoscaler` watches a sliding
    window of request arrivals and keeps
    ``ceil(window_rate / target_rate_per_replica)`` replicas provisioned,
    clamped to ``[min_replicas, max_replicas]``.  Newly activated replicas
    spend ``warmup_seconds`` warming before they accept routes (model load /
    cache fill in a real deployment); deactivated replicas drain their
    outstanding requests before stopping.

    Attributes
    ----------
    min_replicas:
        Lower bound on provisioned replicas (also the initial fleet size).
    max_replicas:
        Upper bound on provisioned replicas; 0 means "the whole fleet".
    window_seconds:
        Width of the sliding arrival-rate window.
    target_rate_per_replica:
        Arrival rate (requests/s) one replica is provisioned for.
    warmup_seconds:
        Delay between activating a cold replica and it accepting routes.
    cooldown_seconds:
        Minimum time between two scaling decisions (flap damping).
    """

    min_replicas: int = 1
    max_replicas: int = 0
    window_seconds: float = 30.0
    target_rate_per_replica: float = 4.0
    warmup_seconds: float = 5.0
    cooldown_seconds: float = 10.0

    def __post_init__(self) -> None:
        if self.min_replicas <= 0:
            raise ValueError("min_replicas must be positive")
        if self.max_replicas and self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas (or 0 for the fleet size)")
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if self.target_rate_per_replica <= 0:
            raise ValueError("target_rate_per_replica must be positive")
        if self.warmup_seconds < 0:
            raise ValueError("warmup_seconds must be non-negative")
        if self.cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be non-negative")


@dataclass
class TraceReplayConfig:
    """A recorded arrival trace to replay as a cluster's workload.

    Describes the on-disk trace and the replay transforms applied by
    :class:`~repro.workload.replay.TraceReplayArrivalGenerator`.  When a
    :class:`ClusterConfig` carries one of these,
    :meth:`~repro.cluster.simulator.ClusterSimulator.run` can be called
    without a workload argument: the simulator loads the trace itself,
    clamping sequence lengths to the smallest context window in the fleet.

    Attributes
    ----------
    path:
        Trace file to replay.
    format:
        On-disk format: ``"tsv"`` (the artifact's dataset format) or
        ``"azure"`` (``TIMESTAMP,ContextTokens,GeneratedTokens`` CSV).
    rate_scale:
        Arrival-rate multiplier (``2.0`` replays the trace twice as fast).
    window:
        Optional ``(start, end)`` slice in seconds relative to the start of
        the trace.
    sample:
        Fraction of requests to keep, ``(0, 1]``; subsampling is seeded.
    seed:
        Seed of the subsampling draw.
    max_requests:
        Optional cap on the number of replayed requests.
    """

    path: str
    format: str = "tsv"
    rate_scale: float = 1.0
    window: Optional[Tuple[float, float]] = None
    sample: float = 1.0
    seed: int = 0
    max_requests: Optional[int] = None

    def __post_init__(self) -> None:
        from ..workload.replay import TRACE_FORMATS, validate_replay_transforms
        if not self.path:
            raise ValueError("trace path must be non-empty")
        if self.format not in TRACE_FORMATS:
            raise ValueError(f"trace format must be one of {TRACE_FORMATS}")
        validate_replay_transforms(self.rate_scale, self.window, self.sample)
        if self.max_requests is not None and self.max_requests <= 0:
            raise ValueError("max_requests must be positive when set")


@dataclass
class ClusterConfig:
    """Configuration of a multi-replica serving cluster.

    A cluster is a fleet of independent :class:`ServingSimConfig`-shaped
    serving systems (each with its own scheduler, KV manager and engine stack)
    behind a request router.  Routing-policy names are resolved by
    :func:`repro.cluster.build_router`; the built-in policies are
    ``"round-robin"``, ``"least-outstanding"``, ``"least-kv"``, ``"slo-ttft"``
    and ``"weighted-capacity"``.

    The fleet is described either by the single-template sugar
    (``num_replicas`` copies of ``replica``) or, for heterogeneous clusters,
    by an explicit ``replicas`` list of :class:`ReplicaSpec`; when the list is
    given it wins and ``num_replicas`` is derived from the spec counts.

    Attributes
    ----------
    num_replicas:
        Number of serving replicas behind the router (derived from
        ``replicas`` when that list is given).
    routing:
        Name of the request-routing policy.
    execution_backend:
        How replica simulations are executed by
        :class:`~repro.cluster.simulator.ClusterSimulator`: ``"serial"``
        steps replicas in-process, ``"process-pool"`` hosts each replica in
        a persistent worker process and fans out the between-arrival
        advances in parallel.  Both produce bit-identical results; names
        are resolved by :func:`repro.cluster.build_backend`.
    engine:
        How the cluster loop itself is driven: ``"event-driven"`` (the
        default) pops arrival/warm-up events off a heap and advances only
        the replicas whose next event precedes the popped time, so idle or
        drained replicas cost nothing; ``"lockstep"`` is the legacy
        advance-everything-per-arrival loop kept as the reference baseline
        during the transition.  Both engines are bit-identical in simulated
        behaviour (the determinism suite pins this).
    cache_dir:
        Optional directory persisting the per-class iteration-reuse caches
        across runs: caches are warm-started from it before the run and
        written back after, keyed by the replica class's full serving
        configuration, so parameter sweeps that revisit a configuration skip
        already-simulated iteration signatures.  Only meaningful when a
        replica class sets ``enable_iteration_reuse``.
    replica:
        Configuration template every replica is built from (single-template
        sugar; ignored when ``replicas`` is set).
    replicas:
        Heterogeneous fleet description: one :class:`ReplicaSpec` per replica
        class.  ``None`` expands the single-template form to one spec.
    autoscale:
        Optional :class:`AutoscaleConfig`; ``None`` keeps the whole fleet
        active for the entire run.
    trace_replay:
        Optional :class:`TraceReplayConfig`; when set,
        :meth:`~repro.cluster.simulator.ClusterSimulator.run` may be called
        without a workload — the cluster replays the configured trace.
    ttft_slo:
        Optional time-to-first-token SLO target (seconds) reported as
        per-class attainment in :class:`~repro.cluster.results.ClusterResult`.
    e2e_slo:
        Optional end-to-end latency SLO target (seconds), reported likewise.
    check_invariants:
        Audit every replica's simulator after each iteration with the
        runtime invariant checker
        (:class:`~repro.analysis.invariants.ReplicaInvariantChecker`):
        event-time monotonicity, KV-token conservation and cache-lookup
        accounting.  A violation raises
        :class:`~repro.analysis.invariants.InvariantViolation` naming the
        replica and request.  Overhead is a few comparisons per iteration;
        CLI flag ``--check-invariants``.
    """

    num_replicas: int = 2
    routing: str = "round-robin"
    execution_backend: str = "serial"
    engine: str = "event-driven"
    cache_dir: Optional[str] = None
    replica: ServingSimConfig = field(default_factory=ServingSimConfig)
    replicas: Optional[List[ReplicaSpec]] = None
    autoscale: Optional[AutoscaleConfig] = None
    trace_replay: Optional[TraceReplayConfig] = None
    ttft_slo: Optional[float] = None
    e2e_slo: Optional[float] = None
    check_invariants: bool = False

    def __post_init__(self) -> None:
        if self.replicas is not None:
            if not self.replicas:
                raise ValueError("replicas must be non-empty when given")
            self.num_replicas = sum(spec.count for spec in self.replicas)
        if self.num_replicas <= 0:
            raise ValueError("num_replicas must be positive")
        if not self.routing:
            raise ValueError("routing policy name must be non-empty")
        if not self.execution_backend:
            raise ValueError("execution backend name must be non-empty")
        if self.engine not in ("event-driven", "lockstep"):
            raise ValueError("engine must be 'event-driven' or 'lockstep'")
        if self.cache_dir is not None and not self.cache_dir:
            raise ValueError("cache_dir must be a non-empty path when set")
        if self.autoscale is not None:
            if self.autoscale.min_replicas > self.num_replicas:
                raise ValueError("autoscale.min_replicas exceeds the fleet size")
            if self.autoscale.max_replicas > self.num_replicas:
                raise ValueError("autoscale.max_replicas exceeds the fleet size")
        if self.ttft_slo is not None and self.ttft_slo <= 0:
            raise ValueError("ttft_slo must be positive when set")
        if self.e2e_slo is not None and self.e2e_slo <= 0:
            raise ValueError("e2e_slo must be positive when set")

    def replica_specs(self) -> List[ReplicaSpec]:
        """The fleet as replica-class specs (single template becomes one spec)."""
        if self.replicas is not None:
            return list(self.replicas)
        return [ReplicaSpec(config=self.replica, count=self.num_replicas)]

    def expanded_replicas(self) -> List[Tuple[str, ServingSimConfig]]:
        """One ``(class_name, config)`` pair per replica instance, in order."""
        expanded: List[Tuple[str, ServingSimConfig]] = []
        for spec in self.replica_specs():
            expanded.extend((spec.name, spec.config) for _ in range(spec.count))
        return expanded
