"""Simulation-time accounting (the "how long does the simulator take" model).

The paper evaluates LLMServingSim not only on the accuracy of the serving
behaviour it predicts but also on how long the *simulation itself* takes
(Figures 2(a), 8, 9 and 10).  The original artifact measures wall-clock time
of its C++/Python components; those absolute numbers depend on the
third-party compiler and simulators (PolyMath, GeneSys, ASTRA-sim) that are
not available here.

This module therefore tracks two things per component:

* **measured** wall-clock seconds of this re-implementation's components,
  useful for relative comparisons on the machine running the benchmarks; and
* **modeled** seconds derived from work counters (operators compiled,
  operators simulated, execution-graph nodes, collective participants)
  multiplied by calibration constants chosen so the *shape* of the paper's
  results holds: compilation/simulation dominates without reuse, reuse gives
  a ~6-12x reduction, ASTRA-sim's share grows with the tensor-parallel
  degree, and total time grows with the number of NPUs.

The four components match Figure 9's breakdown: scheduler, execution engine
stack (compiler + hardware simulators), graph converter, and ASTRA-sim
(system simulation).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator

from ..engine.stack import EngineStackReport
from ..graph.converter import ConversionStats

__all__ = ["SimTimeCalibration", "ComponentTimes", "SimTimeTracker"]

#: Component names used throughout the reports (Figure 9's legend).
COMPONENTS = ("scheduler", "engine", "graph_converter", "system_sim")


@dataclass(frozen=True)
class SimTimeCalibration:
    """Calibration constants of the modeled simulation-time accounting.

    The defaults reproduce the scale of Figure 9: a GPT3-30B iteration with
    batch 64 over 64 NPUs costs ~200 s of modeled simulation time without
    reuse and ~16-33 s with reuse depending on the parallelism strategy.

    Attributes
    ----------
    compile_seconds_per_operator:
        Cost of compiling one operator in the engine stack.
    simulate_seconds_per_non_attention_operator:
        Cost of cycle-level simulation of one non-attention operator
        (cache misses only).
    simulate_seconds_per_attention_operator:
        Cost of simulating one attention operator (cheaper, per the paper).
    scheduler_seconds_per_iteration:
        Fixed scheduling cost per iteration.
    scheduler_seconds_per_request:
        Additional scheduling cost per batched request.
    graph_seconds_per_node:
        Graph-converter cost per produced execution-graph node.
    graph_seconds_base:
        Fixed graph-converter cost per iteration.
    system_seconds_per_node:
        ASTRA-sim cost per execution-graph node.
    system_seconds_per_collective_participant:
        ASTRA-sim cost per (collective x participant), modeling the ring
        phases of each collective.
    system_seconds_base:
        Fixed ASTRA-sim start-up cost per iteration.
    iteration_cache_hit_seconds:
        Cost of serving a whole iteration from the iteration-level reuse
        cache: one signature hash and dictionary lookup instead of the
        engine stack, graph converter and system simulation.
    """

    compile_seconds_per_operator: float = 0.012
    simulate_seconds_per_non_attention_operator: float = 0.020
    simulate_seconds_per_attention_operator: float = 0.006
    scheduler_seconds_per_iteration: float = 0.20
    scheduler_seconds_per_request: float = 0.001
    graph_seconds_per_node: float = 0.00003
    graph_seconds_base: float = 0.4
    system_seconds_per_node: float = 0.0004
    system_seconds_per_collective_participant: float = 0.001
    system_seconds_base: float = 8.0
    iteration_cache_hit_seconds: float = 0.02


@dataclass
class ComponentTimes:
    """Per-component seconds (measured or modeled)."""

    scheduler: float = 0.0
    engine: float = 0.0
    graph_converter: float = 0.0
    system_sim: float = 0.0

    @property
    def total(self) -> float:
        return self.scheduler + self.engine + self.graph_converter + self.system_sim

    def as_dict(self) -> Dict[str, float]:
        return {
            "scheduler": self.scheduler,
            "engine": self.engine,
            "graph_converter": self.graph_converter,
            "system_sim": self.system_sim,
        }

    def add(self, other: "ComponentTimes") -> None:
        self.scheduler += other.scheduler
        self.engine += other.engine
        self.graph_converter += other.graph_converter
        self.system_sim += other.system_sim


class SimTimeTracker:
    """Accumulates measured and modeled simulation time across iterations."""

    def __init__(self, calibration: SimTimeCalibration = SimTimeCalibration()) -> None:
        self.calibration = calibration
        self.measured = ComponentTimes()
        self.modeled = ComponentTimes()
        self.iterations = 0
        self.iteration_cache_hits = 0

    # -- measured wall clock ---------------------------------------------------

    @contextmanager
    def measure(self, component: str) -> Iterator[None]:
        """Context manager adding elapsed wall-clock time to a component."""
        if component not in COMPONENTS:
            raise ValueError(f"unknown component {component!r}; expected one of {COMPONENTS}")
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            setattr(self.measured, component, getattr(self.measured, component) + elapsed)

    # -- modeled accounting ------------------------------------------------------

    def account_iteration(self, engine_report: EngineStackReport,
                          graph_stats: ConversionStats, num_requests: int) -> ComponentTimes:
        """Add one iteration's modeled component times and return them."""
        cal = self.calibration
        iteration = ComponentTimes()
        iteration.scheduler = (cal.scheduler_seconds_per_iteration
                               + cal.scheduler_seconds_per_request * num_requests)
        iteration.engine = (
            engine_report.compile_report.compiled_operators * cal.compile_seconds_per_operator
            + engine_report.simulated_non_attention_operators
            * cal.simulate_seconds_per_non_attention_operator
            + engine_report.simulated_attention_operators
            * cal.simulate_seconds_per_attention_operator)
        iteration.graph_converter = (cal.graph_seconds_base
                                     + cal.graph_seconds_per_node * graph_stats.total_nodes)
        iteration.system_sim = (
            cal.system_seconds_base
            + cal.system_seconds_per_node * graph_stats.total_nodes
            + cal.system_seconds_per_collective_participant * graph_stats.collective_participants)
        self.modeled.add(iteration)
        self.iterations += 1
        return iteration

    def account_cached_iteration(self, num_requests: int) -> ComponentTimes:
        """Account one iteration served from the iteration-level reuse cache.

        The scheduler still did its full work (it formed the plan), but the
        engine stack, graph converter and system simulation were all replaced
        by a single cache lookup, modeled by
        :attr:`SimTimeCalibration.iteration_cache_hit_seconds`.
        """
        cal = self.calibration
        iteration = ComponentTimes()
        iteration.scheduler = (cal.scheduler_seconds_per_iteration
                               + cal.scheduler_seconds_per_request * num_requests)
        iteration.engine = cal.iteration_cache_hit_seconds
        self.modeled.add(iteration)
        self.iterations += 1
        self.iteration_cache_hits += 1
        return iteration
