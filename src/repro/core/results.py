"""Result collection: per-iteration records, request metrics and throughput series.

The original artifact reports prompt / generation throughput at regular
intervals plus a simulation-time breakdown (its two TSV outputs).  This
module gathers the same information: an :class:`IterationRecord` per
iteration, request-level latency statistics, and helpers to bin token counts
into throughput-over-time series for the validation experiments.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Union

from ..workload.request import Request
from .simtime import ComponentTimes

__all__ = ["IterationRecord", "ThroughputPoint", "ServingResult"]


@dataclass(frozen=True)
class IterationRecord:
    """Summary of one simulated serving iteration.

    Attributes
    ----------
    index:
        Iteration counter.
    start_time / end_time:
        Simulated wall-clock interval the iteration occupied.
    latency:
        Iteration latency in seconds (``end_time - start_time``).
    num_requests:
        Requests in the iteration's batch.
    prompt_tokens:
        Prompt tokens processed (initiation-phase work).
    generated_tokens:
        Tokens produced by the iteration.
    evictions / reloads:
        KV-page migrations performed while forming the batch.
    kv_utilization:
        KV-cache occupancy right after the iteration was formed.
    """

    index: int
    start_time: float
    end_time: float
    latency: float
    num_requests: int
    prompt_tokens: int
    generated_tokens: int
    evictions: int = 0
    reloads: int = 0
    kv_utilization: float = 0.0


@dataclass(frozen=True)
class ThroughputPoint:
    """One bin of the throughput-over-time series."""

    time: float
    prompt_throughput: float
    generation_throughput: float


@dataclass
class ServingResult:
    """Full outcome of a serving simulation run.

    ``iteration_cache_hits`` / ``iteration_cache_misses`` count this run's
    lookups in the iteration-level reuse cache (both stay 0 when
    ``enable_iteration_reuse`` is off).  They describe *simulator* work
    saved, never simulated serving behaviour: a hit replays the exact
    latency the full pipeline would have produced.
    """

    model_name: str
    requests: List[Request] = field(default_factory=list)
    iterations: List[IterationRecord] = field(default_factory=list)
    measured_simulation_time: ComponentTimes = field(default_factory=ComponentTimes)
    modeled_simulation_time: ComponentTimes = field(default_factory=ComponentTimes)
    iteration_cache_hits: int = 0
    iteration_cache_misses: int = 0

    @property
    def iteration_cache_hit_rate(self) -> float:
        """Fraction of iteration-cache lookups that hit (0.0 when unused)."""
        lookups = self.iteration_cache_hits + self.iteration_cache_misses
        if lookups == 0:
            return 0.0
        return self.iteration_cache_hits / lookups

    # -- aggregate serving metrics --------------------------------------------

    @property
    def makespan(self) -> float:
        """Simulated time from the first iteration start to the last iteration end."""
        if not self.iterations:
            return 0.0
        return self.iterations[-1].end_time - self.iterations[0].start_time

    @property
    def total_prompt_tokens(self) -> int:
        return sum(r.prompt_tokens for r in self.iterations)

    @property
    def total_generated_tokens(self) -> int:
        return sum(r.generated_tokens for r in self.iterations)

    @property
    def prompt_throughput(self) -> float:
        """Average prompt tokens per second over the run."""
        if self.makespan <= 0:
            return 0.0
        return self.total_prompt_tokens / self.makespan

    @property
    def generation_throughput(self) -> float:
        """Average generated tokens per second over the run."""
        if self.makespan <= 0:
            return 0.0
        return self.total_generated_tokens / self.makespan

    @property
    def total_throughput(self) -> float:
        """All tokens (prompt + generated) per second."""
        if self.makespan <= 0:
            return 0.0
        return (self.total_prompt_tokens + self.total_generated_tokens) / self.makespan

    @property
    def finished_requests(self) -> List[Request]:
        return [r for r in self.requests if r.is_finished]

    def mean_end_to_end_latency(self) -> float:
        """Average request completion latency over finished requests."""
        latencies = [r.end_to_end_latency for r in self.finished_requests
                     if r.end_to_end_latency is not None]
        if not latencies:
            return 0.0
        return sum(latencies) / len(latencies)

    def mean_time_to_first_token(self) -> float:
        """Average time-to-first-token over requests that produced one."""
        ttfts = [r.time_to_first_token for r in self.requests
                 if r.time_to_first_token is not None]
        if not ttfts:
            return 0.0
        return sum(ttfts) / len(ttfts)

    # -- throughput-over-time series -------------------------------------------

    def throughput_series(self, bin_seconds: float = 30.0) -> List[ThroughputPoint]:
        """Bin iteration token counts into a throughput-over-time series.

        Token counts of an iteration are attributed to the bin containing the
        iteration's end time, matching how serving frameworks log throughput
        at regular reporting intervals (Figure 6's x-axis).
        """
        if bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")
        if not self.iterations:
            return []
        end = max(r.end_time for r in self.iterations)
        num_bins = int(end // bin_seconds) + 1
        prompt_bins = [0.0] * num_bins
        gen_bins = [0.0] * num_bins
        for record in self.iterations:
            index = min(num_bins - 1, int(record.end_time // bin_seconds))
            prompt_bins[index] += record.prompt_tokens
            gen_bins[index] += record.generated_tokens
        return [ThroughputPoint(time=(i + 1) * bin_seconds,
                                prompt_throughput=prompt_bins[i] / bin_seconds,
                                generation_throughput=gen_bins[i] / bin_seconds)
                for i in range(num_bins)]

    # -- TSV outputs (artifact-compatible) --------------------------------------

    def write_throughput_tsv(self, path: Union[str, Path], bin_seconds: float = 30.0) -> Path:
        """Write the ``*-throughput.tsv`` output of the artifact."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle, delimiter="\t")
            writer.writerow(["time_sec", "prompt_throughput_tok_s", "generation_throughput_tok_s"])
            for point in self.throughput_series(bin_seconds):
                writer.writerow([f"{point.time:.1f}", f"{point.prompt_throughput:.3f}",
                                 f"{point.generation_throughput:.3f}"])
        return path

    def write_simulation_time_tsv(self, path: Union[str, Path]) -> Path:
        """Write the ``*-simulation-time.tsv`` output of the artifact (milliseconds)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle, delimiter="\t")
            writer.writerow(["component", "measured_ms", "modeled_ms"])
            measured = self.measured_simulation_time.as_dict()
            modeled = self.modeled_simulation_time.as_dict()
            for component in measured:
                writer.writerow([component, f"{measured[component] * 1e3:.3f}",
                                 f"{modeled[component] * 1e3:.3f}"])
            writer.writerow(["total", f"{self.measured_simulation_time.total * 1e3:.3f}",
                             f"{self.modeled_simulation_time.total * 1e3:.3f}"])
        return path
