"""repro: a pure-Python reproduction of LLMServingSim (IISWC 2024).

LLMServingSim is a hardware/software co-simulation infrastructure for LLM
inference serving at scale.  This package re-implements the full system —
model operator graphs, request workloads, the Orca-style iteration-level
scheduler with vLLM paged KV caching, a pluggable execution-engine stack
(NPU systolic-array, PIM and GPU cost models), the Chakra-style graph
converter with tensor/pipeline/hybrid parallelism, and an ASTRA-sim-style
discrete-event system simulator — plus the baselines and benchmark harnesses
needed to regenerate every table and figure of the paper's evaluation.

Quickstart::

    from repro import LLMServingSim, ServingSimConfig, generate_trace

    config = ServingSimConfig(model_name="gpt3-7b", npu_num=4)
    trace = generate_trace("sharegpt", num_requests=32, rate_per_second=1.0)
    result = LLMServingSim(config).run(trace)
    print(result.generation_throughput, "tokens/s")
"""

from .cluster import (Autoscaler, ClusterResult, ClusterSimulator, ScalingEvent,
                      available_routers, build_router)
from .core.config import (AutoscaleConfig, ClusterConfig, ReplicaSpec,
                          ServingSimConfig, TraceReplayConfig)
from .core.results import IterationRecord, ServingResult, ThroughputPoint
from .core.simtime import ComponentTimes, SimTimeCalibration, SimTimeTracker
from .core.simulator import LLMServingSim
from .graph.parallelism import ParallelismStrategy
from .models.architectures import ModelConfig, available_models, get_model, register_model
from .workload.generator import RequestTrace, available_arrivals, generate_trace
from .workload.replay import TraceReplayArrivalGenerator
from .workload.request import Request, RequestState
from .workload.trace_io import read_trace, write_trace

__version__ = "0.2.0"

__all__ = [
    "LLMServingSim", "ServingSimConfig", "ServingResult", "IterationRecord", "ThroughputPoint",
    "ClusterSimulator", "ClusterConfig", "ClusterResult", "ReplicaSpec",
    "AutoscaleConfig", "TraceReplayConfig", "Autoscaler", "ScalingEvent",
    "available_routers", "build_router",
    "ComponentTimes", "SimTimeCalibration", "SimTimeTracker",
    "ParallelismStrategy",
    "ModelConfig", "available_models", "get_model", "register_model",
    "RequestTrace", "available_arrivals", "generate_trace",
    "TraceReplayArrivalGenerator", "Request", "RequestState",
    "read_trace", "write_trace",
    "__version__",
]
