"""Command-line interface mirroring the original artifact's entry point.

Example::

    llmservingsim --model-name gpt3-7b --npu-num 4 --dataset sharegpt \
        --num-requests 64 --rate 1.0 --output out/run1

produces the artifact's three outputs: a standard-output summary plus the
``*-throughput.tsv`` and ``*-simulation-time.tsv`` files.

The ``cluster`` subcommand serves the trace across a multi-replica cluster
behind a routing policy instead of a single system (``--backend
process-pool`` fans the replica simulations out across worker processes,
``--iteration-reuse`` enables iteration-level memoization)::

    llmservingsim cluster --replicas 4 --routing least-outstanding \
        --model-name gpt3-7b --npu-num 4 --num-requests 64 --arrival poisson-burst

Heterogeneous fleets are described with repeatable ``--replica-spec`` options
(each a comma-separated ``field=value`` list overriding the base serving
arguments, plus ``count=`` and ``name=``), and ``--autoscale min:max`` bounds
an autoscaler over the fleet::

    llmservingsim cluster --routing slo-ttft \
        --replica-spec count=2,npu_num=1,name=small \
        --replica-spec count=2,npu_num=4,name=large \
        --autoscale 2:4 --arrival diurnal --num-requests 64 --rate 8

Both the flat interface and the ``cluster`` subcommand replay recorded
arrival traces instead of synthesizing them: ``--trace`` names the file,
``--trace-format`` its on-disk format (the artifact's TSV or an Azure-style
``TIMESTAMP,ContextTokens,GeneratedTokens`` CSV), and the replay transforms
ride along (``--trace-rate-scale``, ``--trace-window start:end``,
``--trace-sample``)::

    llmservingsim cluster --trace examples/traces/sample_azure.csv \
        --trace-format azure --backend process-pool

The ``bench`` subcommand runs the tracked performance matrix (serial vs
process-pool backends, iteration-reuse on/off) and writes the
``BENCH_cluster.json`` report CI archives per commit::

    llmservingsim bench --quick --output BENCH_cluster.json

The ``lint`` subcommand runs the determinism & concurrency static analysis
(rule codes REP001-REP006, see docs/correctness.md) over the given paths::

    llmservingsim lint src --format json
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from .cluster import ClusterSimulator, available_backends, available_routers
from .core.config import (AutoscaleConfig, ClusterConfig, ReplicaSpec,
                          ServingSimConfig, TraceReplayConfig)
from .core.simulator import LLMServingSim
from .graph.parallelism import ParallelismStrategy
from .models.architectures import get_model
from .workload.generator import available_arrivals, generate_trace
from .workload.replay import TRACE_FORMATS, TraceReplayArrivalGenerator

__all__ = ["build_parser", "build_cluster_parser", "build_bench_parser", "main",
           "cluster_main", "bench_main", "parse_replica_spec",
           "parse_autoscale_bounds", "parse_trace_window"]

#: Synthetic processes selectable with --arrival; "replay" is selected by
#: naming a trace file with --trace instead.
ARRIVAL_CHOICES = [name for name in available_arrivals() if name != "replay"]


def _add_serving_args(parser: argparse.ArgumentParser, arrival_default: str = "poisson") -> None:
    """Arguments shared by the single-system interface and the cluster subcommand."""
    parser.add_argument("--model-name", default="gpt3-7b", help="model to serve")
    parser.add_argument("--npu-num", type=int, default=16, help="number of NPUs (per system)")
    parser.add_argument("--npu-group", type=int, default=1, help="NPU groups for hybrid parallelism")
    parser.add_argument("--npu-mem", type=float, default=24.0, help="NPU local memory in GB")
    parser.add_argument("--max-batch", type=int, default=0, help="maximum batch size (0 = unlimited)")
    parser.add_argument("--batch-delay", type=float, default=0.0, help="batching delay in seconds")
    parser.add_argument("--scheduling", choices=["orca", "static"], default="orca")
    parser.add_argument("--parallel", choices=["tensor", "pipeline", "hybrid"], default="hybrid")
    parser.add_argument("--kv-manage", choices=["vllm", "max"], default="vllm")
    parser.add_argument("--dataset", default="sharegpt", help="dataset profile or 'file'")
    parser.add_argument("--trace", "--trace-file", dest="trace", default=None,
                        metavar="PATH",
                        help="recorded arrival trace to replay instead of a "
                             "synthetic process (disables --arrival, --rate "
                             "and --num-requests; --trace-window and "
                             "--trace-sample subset the trace)")
    parser.add_argument("--trace-format", choices=list(TRACE_FORMATS), default="tsv",
                        help="on-disk format of --trace: the artifact's "
                             "3-column TSV or an Azure-style "
                             "TIMESTAMP,ContextTokens,GeneratedTokens CSV")
    parser.add_argument("--trace-rate-scale", type=_positive_float, default=1.0,
                        metavar="FACTOR",
                        help="replay the trace FACTOR times faster (arrival "
                             "timestamps divided by FACTOR)")
    parser.add_argument("--trace-window", type=parse_trace_window, default=None,
                        metavar="START:END",
                        help="replay only arrivals in [START, END) seconds "
                             "relative to the start of the trace")
    parser.add_argument("--trace-sample", type=_sample_fraction, default=1.0,
                        metavar="FRACTION",
                        help="replay a seeded random FRACTION of the trace's "
                             "requests (0 < FRACTION <= 1)")
    parser.add_argument("--num-requests", type=int, default=64)
    parser.add_argument("--rate", type=float, default=1.0, help="mean arrival rate (req/s)")
    parser.add_argument("--arrival", choices=ARRIVAL_CHOICES, default=arrival_default)
    parser.add_argument("--burst-size", type=float, default=4.0,
                        help="mean burst size for poisson-burst arrivals")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-iterations", type=int, default=None,
                        help="iteration cap (per system)")


def build_parser() -> argparse.ArgumentParser:
    """Create the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="llmservingsim",
        description="LLM inference serving HW/SW co-simulation (LLMServingSim reproduction)",
        epilog="Run 'llmservingsim cluster --help' for the multi-replica "
               "cluster serving subcommand.")
    _add_serving_args(parser, arrival_default="poisson")
    parser.add_argument("--pim-type", choices=["none", "local", "pool"], default="none")
    parser.add_argument("--sub-batch", action="store_true", help="enable sub-batch interleaving")
    parser.add_argument("--no-reuse", action="store_true",
                        help="disable computation-reuse optimizations")
    parser.add_argument("--output", default=None, help="output path prefix for TSV files")
    parser.add_argument("--bin-seconds", type=float, default=30.0,
                        help="throughput reporting interval")
    return parser


def parse_replica_spec(text: str, base: ServingSimConfig) -> ReplicaSpec:
    """Parse one ``--replica-spec`` value into a :class:`ReplicaSpec`.

    ``text`` is a comma-separated ``field=value`` list.  ``count=`` and
    ``name=`` shape the spec itself; every other key must be a scalar
    :class:`ServingSimConfig` field (e.g. ``npu_num``, ``model_name``,
    ``pim_type``) and overrides the base configuration built from the flat
    serving arguments.  Dashes in keys are accepted (``npu-num=4``).
    """
    count, name = 1, ""
    overrides = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep:
            raise argparse.ArgumentTypeError(
                f"replica-spec entry {part!r} is not of the form field=value")
        key = key.strip().replace("-", "_")
        value = value.strip()
        if key == "count":
            count = _convert_spec_value("count", value, int)
        elif key == "name":
            name = value
        else:
            overrides[key] = value

    kwargs = {f.name: getattr(base, f.name) for f in dataclasses.fields(ServingSimConfig)}
    for key, raw in overrides.items():
        if key not in kwargs:
            raise argparse.ArgumentTypeError(
                f"unknown ServingSimConfig field {key!r} in --replica-spec")
        default = kwargs[key]
        if isinstance(default, bool):
            kwargs[key] = raw.lower() in ("1", "true", "yes", "on")
        elif isinstance(default, int):
            kwargs[key] = _convert_spec_value(key, raw, int)
        elif isinstance(default, float):
            kwargs[key] = _convert_spec_value(key, raw, float)
        elif isinstance(default, str) or key in ("parallel", "graph_granularity"):
            kwargs[key] = raw  # enums convert themselves in __post_init__
        elif default is None:  # kv_capacity_bytes
            kwargs[key] = _convert_spec_value(key, raw, int)
        else:
            raise argparse.ArgumentTypeError(
                f"field {key!r} is not settable from --replica-spec")
    try:
        return ReplicaSpec(config=ServingSimConfig(**kwargs), count=count, name=name)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid --replica-spec: {exc}") from None


def _convert_spec_value(key: str, raw: str, converter):
    try:
        return converter(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"replica-spec field {key!r}: {raw!r} is not a valid "
            f"{converter.__name__}") from None


def _positive_float(text: str) -> float:
    """argparse type: a strictly positive float (e.g. --trace-rate-scale)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"{text!r} must be positive")
    return value


def _sample_fraction(text: str) -> float:
    """argparse type: a fraction in (0, 1] (the --trace-sample domain)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number") from None
    if not 0 < value <= 1:
        raise argparse.ArgumentTypeError(f"{text!r} must be in (0, 1]")
    return value


def parse_trace_window(text: str) -> Tuple[float, float]:
    """Parse ``--trace-window start:end`` into a ``(start, end)`` tuple."""
    start, sep, end = text.partition(":")
    try:
        if not sep:
            raise ValueError
        window = float(start), float(end)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"trace window {text!r} is not of the form start:end") from None
    if window[0] < 0 or window[1] <= window[0]:
        raise argparse.ArgumentTypeError(
            f"trace window {text!r} must satisfy 0 <= start < end")
    return window


def parse_autoscale_bounds(text: str) -> Tuple[int, int]:
    """Parse ``--autoscale min:max`` into an ``(min, max)`` tuple."""
    lower, sep, upper = text.partition(":")
    try:
        if not sep:
            raise ValueError
        return int(lower), int(upper)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"autoscale bounds {text!r} are not of the form min:max") from None


def build_cluster_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``cluster`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="llmservingsim cluster",
        description="Serve a request trace across a multi-replica cluster")
    parser.add_argument("--replicas", type=int, default=2,
                        help="number of serving replicas (ignored when "
                             "--replica-spec is given)")
    parser.add_argument("--routing", choices=available_routers(), default="round-robin",
                        help="request routing policy")
    parser.add_argument("--backend", choices=available_backends(), default="serial",
                        help="execution backend: 'serial' steps replicas "
                             "in-process, 'process-pool' fans them out "
                             "across worker processes (bit-identical results)")
    parser.add_argument("--iteration-reuse", action="store_true",
                        help="enable iteration-level memoization (replay "
                             "latencies of previously simulated iteration "
                             "signatures; shared per replica class)")
    engine_group = parser.add_mutually_exclusive_group()
    engine_group.add_argument("--event-driven", dest="engine",
                              action="store_const", const="event-driven",
                              help="drive the cluster with the event-driven "
                                   "engine: arrivals and warm-ups pop off a "
                                   "heap and only stale replicas advance "
                                   "(the default)")
    engine_group.add_argument("--lockstep", dest="engine",
                              action="store_const", const="lockstep",
                              help="drive the cluster with the legacy "
                                   "lockstep loop that advances every "
                                   "replica at every arrival (bit-identical "
                                   "to --event-driven; reference baseline)")
    parser.set_defaults(engine="event-driven")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persist per-class iteration-reuse caches under "
                             "DIR and warm-start from them, so parameter "
                             "sweeps pay for each unique iteration once "
                             "(only meaningful with --iteration-reuse)")
    parser.add_argument("--replica-spec", action="append", default=[],
                        metavar="FIELD=VALUE[,...]",
                        help="add a replica class: comma-separated ServingSimConfig "
                             "overrides plus count= and name= (repeatable; e.g. "
                             "count=2,npu_num=4,name=large)")
    parser.add_argument("--autoscale", type=parse_autoscale_bounds, default=None,
                        metavar="MIN:MAX",
                        help="autoscale the fleet between MIN and MAX active replicas")
    parser.add_argument("--autoscale-window", type=float, default=30.0,
                        help="sliding arrival-rate window in seconds")
    parser.add_argument("--autoscale-target-rate", type=float, default=4.0,
                        help="arrival rate (req/s) one replica is provisioned for")
    parser.add_argument("--autoscale-warmup", type=float, default=5.0,
                        help="warm-up delay before an activated replica takes routes")
    parser.add_argument("--autoscale-cooldown", type=float, default=10.0,
                        help="minimum seconds between scaling decisions")
    parser.add_argument("--ttft-slo", type=float, default=None,
                        help="TTFT SLO target in seconds (reports per-class attainment)")
    parser.add_argument("--e2e-slo", type=float, default=None,
                        help="end-to-end latency SLO target in seconds")
    parser.add_argument("--check-invariants", action="store_true",
                        help="audit every replica after each iteration "
                             "(event-time monotonicity, KV-token "
                             "conservation, cache-lookup accounting); a "
                             "violation aborts the run naming the replica")
    _add_serving_args(parser, arrival_default="poisson-burst")
    return parser


def cluster_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``cluster`` subcommand; returns a process exit code."""
    parser = build_cluster_parser()
    args = parser.parse_args(argv)

    base_config = ServingSimConfig(
        model_name=args.model_name,
        npu_num=args.npu_num,
        npu_group=args.npu_group,
        npu_mem_gb=args.npu_mem,
        max_batch=args.max_batch,
        batch_delay=args.batch_delay,
        scheduling=args.scheduling,
        parallel=ParallelismStrategy(args.parallel),
        kv_manage=args.kv_manage,
        enable_iteration_reuse=args.iteration_reuse,
        seed=args.seed,
    )
    try:
        specs = [parse_replica_spec(text, base_config) for text in args.replica_spec]
    except argparse.ArgumentTypeError as exc:
        parser.error(str(exc))  # clean usage error instead of a traceback

    autoscale = None
    if args.autoscale is not None:
        lower, upper = args.autoscale
        autoscale = AutoscaleConfig(
            min_replicas=lower,
            max_replicas=upper,
            window_seconds=args.autoscale_window,
            target_rate_per_replica=args.autoscale_target_rate,
            warmup_seconds=args.autoscale_warmup,
            cooldown_seconds=args.autoscale_cooldown,
        )

    trace_replay = None
    if args.trace:
        if not Path(args.trace).is_file():
            parser.error(f"trace file {args.trace} does not exist")
        trace_replay = TraceReplayConfig(
            path=args.trace, format=args.trace_format,
            rate_scale=args.trace_rate_scale, window=args.trace_window,
            sample=args.trace_sample, seed=args.seed)

    config = ClusterConfig(num_replicas=args.replicas, routing=args.routing,
                           execution_backend=args.backend, engine=args.engine,
                           cache_dir=args.cache_dir,
                           replica=base_config, replicas=specs or None,
                           autoscale=autoscale, trace_replay=trace_replay,
                           ttft_slo=args.ttft_slo, e2e_slo=args.e2e_slo,
                           check_invariants=args.check_invariants)

    if trace_replay is not None:
        trace = None  # the simulator replays config.trace_replay itself
    else:
        trace = generate_trace(args.dataset, args.num_requests, arrival=args.arrival,
                               rate_per_second=args.rate, seed=args.seed,
                               burst_size_mean=args.burst_size)

    result = ClusterSimulator(config).run(
        trace, max_iterations_per_replica=args.max_iterations)

    fleet = ", ".join(f"{spec.count}x {spec.name}" for spec in config.replica_specs())
    print(f"model                 : {base_config.model_name}")
    print(f"cluster               : {config.num_replicas} replica(s) [{fleet}], "
          f"{result.routing} routing")
    print(f"backend               : {config.execution_backend} "
          f"({config.engine} engine)")
    hits = sum(r.iteration_cache_hits for r in result.replica_results)
    misses = sum(r.iteration_cache_misses for r in result.replica_results)
    if hits + misses:
        print(f"iteration cache       : {hits}/{hits + misses} lookups hit "
              f"({hits / (hits + misses):.1%})")
    for row in result.summary_rows():
        print(f"{row[0]:<22}: {row[1]}")
    if result.scaling_timeline:
        print("scaling timeline      :")
        for event in result.scaling_timeline:
            print(f"  t={event.time:8.2f}s {event.action:<10} replica "
                  f"{event.replica_id} [{event.replica_class}] -> "
                  f"{event.provisioned_after} provisioned")
    return 0


def build_bench_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``bench`` subcommand."""
    from .bench import BENCH_SCENARIOS, ENGINE_SPEEDUP_SCENARIO, SPEEDUP_SCENARIO
    parser = argparse.ArgumentParser(
        prog="llmservingsim bench",
        description="Run the tracked cluster-simulation performance matrix "
                    "and emit a BENCH_cluster.json report")
    parser.add_argument("--quick", action="store_true",
                        help="shrink every scenario for CI smoke runs")
    parser.add_argument("--output", default="BENCH_cluster.json",
                        help="path of the JSON report (default: %(default)s)")
    parser.add_argument("--scenario", action="append", default=[],
                        choices=[s.name for s in BENCH_SCENARIOS],
                        help="run only the named scenario (repeatable; "
                             "default: the whole matrix)")
    parser.add_argument("--fail-below-speedup", type=float, default=None,
                        metavar="RATIO",
                        help="exit non-zero unless the process-pool backend "
                             f"reaches RATIO x serial wall-clock on the "
                             f"{SPEEDUP_SCENARIO!r} scenario (skipped on "
                             "hosts with too few cores)")
    parser.add_argument("--fail-below-engine-speedup", type=float, default=None,
                        metavar="RATIO",
                        help="exit non-zero unless the event-driven engine "
                             f"reaches RATIO x lockstep wall-clock on the "
                             f"{ENGINE_SPEEDUP_SCENARIO!r} scenario (skipped "
                             "on hosts with too few cores)")
    return parser


def bench_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``bench`` subcommand; returns a process exit code."""
    from .bench import (ENGINE_SPEEDUP_SCENARIO, SPEEDUP_SCENARIO,
                        check_engine_speedup, check_speedup, run_bench,
                        write_report)
    parser = build_bench_parser()
    args = parser.parse_args(argv)
    if (args.fail_below_speedup is not None and args.scenario
            and SPEEDUP_SCENARIO not in args.scenario):
        parser.error(f"--fail-below-speedup gates the {SPEEDUP_SCENARIO!r} "
                     f"scenario, which --scenario excluded from this run")
    if (args.fail_below_engine_speedup is not None and args.scenario
            and ENGINE_SPEEDUP_SCENARIO not in args.scenario):
        parser.error(f"--fail-below-engine-speedup gates the "
                     f"{ENGINE_SPEEDUP_SCENARIO!r} scenario, which "
                     f"--scenario excluded from this run")

    report = run_bench(quick=args.quick, only=args.scenario or None)
    print(f"host                  : {report['host']['cpu_count']} core(s), "
          f"python {report['host']['python']}")
    for entry in report["scenarios"]:
        print(f"scenario              : {entry['name']} "
              f"({entry['num_requests']} requests)")
        if "backends" in entry:
            for backend, stats in entry["backends"].items():
                print(f"  {backend:<20}: {stats['wall_seconds']:.2f} s wall, "
                      f"{stats['iterations']} iterations")
            print(f"  speedup             : {entry['speedup']:.2f}x "
                  f"(bit-identical: {entry['bit_identical']})")
        if "engines" in entry:
            for engine, stats in entry["engines"].items():
                print(f"  {engine:<20}: {stats['wall_seconds']:.2f} s wall, "
                      f"{stats['iterations']} iterations")
            print(f"  engine speedup      : {entry['engine_speedup']:.2f}x "
                  f"(bit-identical: {entry['bit_identical']})")
        if "reuse" in entry:
            for arm, stats in entry["reuse"].items():
                print(f"  {arm:<20}: {stats['wall_seconds']:.2f} s wall, "
                      f"{stats['modeled_simulation_seconds']:.1f} s modeled")
            print(f"  hit rate            : {entry['hit_rate']:.1%} serial, "
                  f"{entry['hit_rate_process_pool']:.1%} process-pool "
                  f"(modeled speedup {entry['modeled_speedup']:.2f}x, "
                  f"bit-identical: {entry['bit_identical']})")

    path = write_report(report, args.output)
    print(f"wrote {path}")

    broken = [e["name"] for e in report["scenarios"] if not e.get("bit_identical", True)]
    if broken:
        print(f"ERROR: non-deterministic scenario(s): {', '.join(broken)}")
        return 1
    if args.fail_below_speedup is not None:
        ok, message = check_speedup(report, args.fail_below_speedup)
        print(("OK: " if ok else "ERROR: ") + message)
        if not ok:
            return 1
    if args.fail_below_engine_speedup is not None:
        ok, message = check_engine_speedup(report, args.fail_below_engine_speedup)
        print(("OK: " if ok else "ERROR: ") + message)
        if not ok:
            return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    ``main(["cluster", ...])`` dispatches to the cluster subcommand,
    ``main(["bench", ...])`` to the performance harness, and
    ``main(["lint", ...])`` to the determinism static analysis; any other
    invocation keeps the artifact's original flat single-system interface.
    """
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "cluster":
        return cluster_main(argv[1:])
    if argv and argv[0] == "bench":
        return bench_main(argv[1:])
    if argv and argv[0] == "lint":
        from .analysis.lint import lint_main
        return lint_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)

    config = ServingSimConfig(
        model_name=args.model_name,
        npu_num=args.npu_num,
        npu_group=args.npu_group,
        npu_mem_gb=args.npu_mem,
        max_batch=args.max_batch,
        batch_delay=args.batch_delay,
        scheduling=args.scheduling,
        parallel=ParallelismStrategy(args.parallel),
        kv_manage=args.kv_manage,
        pim_type=args.pim_type,
        sub_batch=args.sub_batch,
        enable_block_reuse=not args.no_reuse,
        enable_computation_reuse=not args.no_reuse,
        seed=args.seed,
    )

    if args.trace:
        if not Path(args.trace).is_file():
            parser.error(f"trace file {args.trace} does not exist")
        trace = TraceReplayArrivalGenerator(
            args.trace, trace_format=args.trace_format,
            rate_scale=args.trace_rate_scale, window=args.trace_window,
            sample=args.trace_sample, seed=args.seed,
            max_seq_len=get_model(args.model_name).max_seq_len).generate()
    else:
        trace = generate_trace(args.dataset, args.num_requests, arrival=args.arrival,
                               rate_per_second=args.rate, seed=args.seed,
                               burst_size_mean=args.burst_size)

    simulator = LLMServingSim(config)
    result = simulator.run(trace, max_iterations=args.max_iterations)

    print(f"model                 : {config.model_name}")
    print(f"npus                  : {config.npu_num} ({config.parallel.value} parallelism, "
          f"{config.effective_groups} group(s))")
    print(f"requests              : {len(result.finished_requests)}/{len(result.requests)} finished")
    print(f"iterations            : {len(result.iterations)}")
    print(f"simulated makespan    : {result.makespan:.2f} s")
    print(f"prompt throughput     : {result.prompt_throughput:.1f} tokens/s")
    print(f"generation throughput : {result.generation_throughput:.1f} tokens/s")
    print(f"mean TTFT             : {result.mean_time_to_first_token():.3f} s")
    print(f"mean E2E latency      : {result.mean_end_to_end_latency():.3f} s")
    print(f"modeled sim time      : {result.modeled_simulation_time.total:.1f} s "
          f"({result.modeled_simulation_time.as_dict()})")

    if args.output:
        prefix = Path(args.output)
        throughput_path = result.write_throughput_tsv(
            prefix.with_name(prefix.name + "-throughput.tsv"), bin_seconds=args.bin_seconds)
        simtime_path = result.write_simulation_time_tsv(
            prefix.with_name(prefix.name + "-simulation-time.tsv"))
        print(f"wrote {throughput_path}")
        print(f"wrote {simtime_path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
