"""NeuPIMs reference throughput model (the Figure 7 comparison baseline).

NeuPIMs is an NPU-PIM heterogeneous acceleration system with sub-batch
interleaving.  The paper compares LLMServingSim configured as an NPU+PIM
system against NeuPIMs' own simulator across models and parallelization
schemes, reporting that LLMServingSim's throughput is somewhat lower because
it models system-level effects (inter-device links, synchronization) that
the NeuPIMs simulator omits, with per-configuration error under 20 % and a
geometric-mean error of 8.88 %.

The model here reproduces that role: an analytical NPU+PIM throughput bound
that ignores inter-device link and synchronization overheads, so it sits a
little above the full simulator just as the original NeuPIMs numbers do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..engine.mapping import HeterogeneousMapper
from ..engine.npu import NPUConfig, NPUEngine, TABLE1_NPU
from ..engine.pim import PIMConfig, PIMEngine, TABLE1_PIM
from ..models.architectures import ModelConfig, get_model
from ..models.graph import BatchComposition, SequenceSpec, build_iteration_graph
from ..models.layers import Phase
from ..system.topology import DeviceType
from ..workload.request import Request

__all__ = ["NeuPIMsConfig", "NeuPIMsReference"]


@dataclass
class NeuPIMsConfig:
    """Configuration of the NeuPIMs-style NPU+PIM throughput model.

    Attributes
    ----------
    model_name:
        Model being served.
    tensor_parallel / pipeline_parallel:
        Parallelization scheme (matching Figure 7's TP/PP labels).
    npu / pim:
        Hardware parameters; the paper uses the same PIM specification for
        both systems.
    num_sub_batches:
        Sub-batch interleaving factor (2 in NeuPIMs).
    """

    model_name: str = "gpt3-7b"
    tensor_parallel: int = 4
    pipeline_parallel: int = 1
    npu: NPUConfig = field(default_factory=lambda: TABLE1_NPU)
    pim: PIMConfig = field(default_factory=lambda: TABLE1_PIM)
    num_sub_batches: int = 2

    def __post_init__(self) -> None:
        if self.tensor_parallel <= 0 or self.pipeline_parallel <= 0:
            raise ValueError("parallel degrees must be positive")

    @property
    def num_devices(self) -> int:
        return self.tensor_parallel * self.pipeline_parallel


class NeuPIMsReference:
    """Analytical NPU+PIM serving throughput model without system-level overheads."""

    def __init__(self, config: Optional[NeuPIMsConfig] = None) -> None:
        self.config = config or NeuPIMsConfig()
        self.model: ModelConfig = get_model(self.config.model_name)
        self.npu_engine = NPUEngine(self.config.npu)
        self.pim_engine = PIMEngine(self.config.pim)
        self.mapper = HeterogeneousMapper()

    def iteration_latency(self, batch: BatchComposition) -> float:
        """Latency of one iteration under ideal NPU/PIM overlap.

        Batched operators are sharded over the tensor-parallel NPUs; attention
        operators run on the per-NPU PIM stacks.  With sub-batch interleaving
        the NPU-side and PIM-side work of different sub-batches overlap, so
        the iteration takes ``max(npu_time, pim_time)`` plus a pipeline-depth
        correction; without interconnect or synchronization costs this is an
        optimistic (higher-throughput) bound, as in the paper.
        """
        cfg = self.config
        graph = build_iteration_graph(self.model, batch)
        tp = cfg.tensor_parallel

        npu_time = 0.0
        pim_time = 0.0
        for op in graph.block_operators:
            engine = self.mapper.map_operator(op)
            if engine is DeviceType.PIM:
                pim_time += self.pim_engine.estimate(op).latency / tp
            else:
                npu_time += self.npu_engine.estimate(op).latency / tp

        if cfg.num_sub_batches > 1:
            block_time = max(npu_time, pim_time) + min(npu_time, pim_time) / cfg.num_sub_batches
        else:
            block_time = npu_time + pim_time

        other = sum(self.npu_engine.estimate(op).latency / tp
                    for op in list(graph.embedding_operators) + list(graph.head_operators))

        blocks_per_stage = self.model.num_layers / cfg.pipeline_parallel
        # Pipeline execution: steady-state latency of the deepest stage plus
        # the fill of the remaining stages for this single iteration.
        stage_time = block_time * blocks_per_stage
        total = stage_time * (1 + (cfg.pipeline_parallel - 1) / max(1, cfg.pipeline_parallel))
        return total + other

    def throughput(self, requests: Sequence[Request], max_batch_size: int = 0) -> float:
        """Aggregate token throughput (tokens/s) for a one-shot request set.

        Runs a simplified continuous-batching loop: all requests start
        queued, batches are re-formed each iteration, and the reported number
        is total processed tokens (prompt + generated) divided by the total
        simulated time — the metric Figure 7 plots.
        """
        pending: List[Request] = sorted(requests, key=lambda r: r.request_id)
        contexts = {r.request_id: 0 for r in pending}
        remaining = {r.request_id: r.output_tokens for r in pending}
        active: List[Request] = []
        clock = 0.0
        total_tokens = 0

        while pending or active:
            if pending:
                space = max_batch_size - len(active) if max_batch_size else len(pending)
                admitted = pending[:space] if space > 0 else []
                pending = pending[len(admitted):]
                active.extend(admitted)
            else:
                admitted = []

            sequences = []
            for request in active:
                if contexts[request.request_id] == 0:
                    sequences.append(SequenceSpec(request.request_id, 0,
                                                  request.input_tokens, Phase.INITIATION))
                    total_tokens += request.input_tokens
                else:
                    sequences.append(SequenceSpec(request.request_id,
                                                  contexts[request.request_id], 1,
                                                  Phase.GENERATION))
                total_tokens += 1
            if not sequences:
                break
            clock += self.iteration_latency(BatchComposition(sequences))

            finished: List[Request] = []
            for request in active:
                if contexts[request.request_id] == 0:
                    contexts[request.request_id] = request.input_tokens + 1
                else:
                    contexts[request.request_id] += 1
                remaining[request.request_id] -= 1
                if remaining[request.request_id] <= 0:
                    finished.append(request)
            for request in finished:
                active.remove(request)

        if clock <= 0:
            return 0.0
        return total_tokens / clock
