"""vLLM-on-GPU reference serving system (the Figure 6 "real system" stand-in).

The paper validates LLMServingSim against a real deployment: vLLM running on
four RTX 3090 GPUs.  That physical system is not available here, so this
module provides an *independent* serving emulator that plays the same role
for the validation experiment:

* it uses the GPU roofline engine with FlashAttention-style kernel
  efficiency (kernel-level optimizations the paper explicitly lists as a
  source of discrepancy between the simulator and the real system);
* it models continuous batching and paged KV caching the way vLLM does, but
  with its own, simpler latency composition (per-layer kernel times summed
  per iteration, NCCL-style all-reduce cost for tensor parallelism) rather
  than the execution-graph / discrete-event machinery of the simulator.

Because the code path, hardware model and kernel assumptions all differ from
the simulator's, comparing the two is a meaningful validation rather than a
tautology.  The error-rate target from the paper is an average around
14.7 % with matching throughput *trends* over time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..engine.gpu import GPUConfig, GPUEngine, RTX3090_GPU
from ..models.architectures import ModelConfig, get_model
from ..models.graph import BatchComposition, SequenceSpec, build_iteration_graph
from ..models.layers import Phase
from ..scheduler.kv_cache import PagedKVCacheManager
from ..scheduler.memory import compute_kv_budget
from ..system.network import NVLINK_LIKE, LinkSpec
from ..workload.generator import RequestTrace
from ..workload.request import Request
from ..core.results import IterationRecord, ServingResult

__all__ = ["VLLMReferenceConfig", "VLLMReferenceSystem"]


@dataclass
class VLLMReferenceConfig:
    """Configuration of the GPU reference serving system.

    Attributes
    ----------
    model_name:
        Model to serve.
    num_gpus:
        Tensor-parallel GPU count (the paper uses 1 or 4 depending on model
        size).
    gpu:
        GPU hardware / kernel-efficiency parameters.
    interconnect:
        Link used for tensor-parallel all-reduce between the GPUs.
    max_batch_size:
        Maximum requests per continuous-batching iteration (0 = unlimited).
    kv_page_tokens:
        vLLM block size in tokens.
    scheduling_overhead_s:
        Python-side scheduling overhead per iteration of the serving engine.
    """

    model_name: str = "gpt3-7b"
    num_gpus: int = 4
    gpu: GPUConfig = field(default_factory=lambda: RTX3090_GPU)
    interconnect: LinkSpec = field(default_factory=lambda: NVLINK_LIKE)
    max_batch_size: int = 0
    kv_page_tokens: int = 16
    scheduling_overhead_s: float = 300e-6

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ValueError("num_gpus must be positive")


class VLLMReferenceSystem:
    """Continuous-batching GPU serving emulator used as validation ground truth."""

    def __init__(self, config: Optional[VLLMReferenceConfig] = None) -> None:
        self.config = config or VLLMReferenceConfig()
        self.model: ModelConfig = get_model(self.config.model_name)
        self.engine = GPUEngine(self.config.gpu)
        budget = compute_kv_budget(self.model, self.config.num_gpus,
                                   self.config.gpu.memory_capacity_bytes)
        self.kv_manager = PagedKVCacheManager(self.model, budget.kv_capacity_bytes,
                                              self.config.kv_page_tokens)

    # -- iteration latency -----------------------------------------------------

    def iteration_latency(self, batch: BatchComposition) -> float:
        """Latency of one continuous-batching iteration on the GPU system.

        Per-operator kernel times of one transformer block are summed (GPU
        kernels of one stream execute back-to-back), scaled by the number of
        blocks, with tensor-parallel sharding of the batched operators and a
        per-block all-reduce pair when more than one GPU is used.
        """
        cfg = self.config
        graph = build_iteration_graph(self.model, batch)
        tp = cfg.num_gpus

        block_time = 0.0
        for op in graph.block_operators:
            estimate = self.engine.estimate(op)
            if op.is_attention:
                # Per-request attention kernels are spread over the GPUs.
                block_time += estimate.latency / tp
            else:
                block_time += estimate.latency / tp

        if tp > 1:
            payload = batch.total_new_tokens * self.model.hidden_size * self.model.dtype_bytes
            ring = 2.0 * (tp - 1) / tp * payload / (cfg.interconnect.bandwidth_gbs * 1e9)
            block_time += 2.0 * (ring + cfg.interconnect.latency_s * (tp - 1))

        other_time = 0.0
        for op in list(graph.embedding_operators) + list(graph.head_operators):
            other_time += self.engine.estimate(op).latency / tp

        return (block_time * self.model.num_layers + other_time
                + cfg.scheduling_overhead_s)

    # -- serving loop ------------------------------------------------------------

    def run(self, workload: "RequestTrace | Sequence[Request]",
            max_iterations: Optional[int] = None) -> ServingResult:
        """Serve a workload with continuous batching and paged KV caching."""
        requests = list(workload.requests) if isinstance(workload, RequestTrace) else list(workload)
        result = ServingResult(model_name=self.model.name, requests=requests)

        pending: List[Request] = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        running: List[Request] = []
        clock = 0.0
        iteration_index = 0

        while pending or running:
            if max_iterations is not None and iteration_index >= max_iterations:
                break

            # Admit arrived requests subject to KV capacity and batch size.
            initiation: List[Request] = []
            budget_left = (self.config.max_batch_size - len(running)
                           if self.config.max_batch_size else len(pending))
            for request in list(pending):
                if request.arrival_time > clock or budget_left <= 0:
                    break
                if not self.kv_manager.can_admit(request.input_tokens):
                    break
                self.kv_manager.admit(request.request_id, request.input_tokens)
                pending.remove(request)
                running.append(request)
                initiation.append(request)
                budget_left -= 1

            generation: List[Request] = []
            for request in running:
                if request in initiation:
                    continue
                if self.kv_manager.can_grow(request.request_id, 1):
                    self.kv_manager.grow(request.request_id, 1)
                    generation.append(request)

            if not initiation and not generation:
                if not pending:
                    break
                clock = max(clock, pending[0].arrival_time)
                continue

            sequences = [SequenceSpec(r.request_id, r.context_length, 1, Phase.GENERATION)
                         for r in generation]
            sequences += [SequenceSpec(r.request_id, 0, r.input_tokens, Phase.INITIATION)
                          for r in initiation]
            batch = BatchComposition(sequences)
            latency = self.iteration_latency(batch)
            start = clock
            clock += latency

            for request in initiation:
                request.record_prompt_done(clock)
            for request in generation:
                request.record_generated_token(clock)
            for request in list(running):
                if request.is_finished:
                    running.remove(request)
                    self.kv_manager.release(request.request_id)

            result.iterations.append(IterationRecord(
                index=iteration_index, start_time=start, end_time=clock, latency=latency,
                num_requests=len(initiation) + len(generation),
                prompt_tokens=sum(r.input_tokens for r in initiation),
                generated_tokens=len(initiation) + len(generation),
                kv_utilization=self.kv_manager.utilization()))
            iteration_index += 1

        return result
