"""Baselines: the reference systems and simulators LLMServingSim is compared against."""

from .neupims import NeuPIMsConfig, NeuPIMsReference
from .simcost import (GENESYS, MNPUSIM, NEUPIMS_SIM, BaselineSimulatorModel,
                      baseline_simulators, iteration_simulated_cycles)
from .vllm_reference import VLLMReferenceConfig, VLLMReferenceSystem

__all__ = [
    "NeuPIMsConfig", "NeuPIMsReference",
    "GENESYS", "MNPUSIM", "NEUPIMS_SIM", "BaselineSimulatorModel",
    "baseline_simulators", "iteration_simulated_cycles",
    "VLLMReferenceConfig", "VLLMReferenceSystem",
]
