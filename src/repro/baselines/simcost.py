"""Simulation-time cost models of the baseline accelerator simulators.

Figures 2(a) and 8 of the paper compare how long *the simulators themselves*
take to simulate one serving iteration: mNPUsim (~10 hours), GeneSys
(~1.5 hours) and NeuPIMs (~2 hours) versus LLMServingSim (minutes).  Those
third-party simulators cannot be run here, so this module provides
calibrated cost models: cycle-level simulators spend a roughly constant
amount of host time per simulated device cycle and per operator, so their
simulation time scales with the model's compute and the batch geometry.

The per-cycle constants are calibrated against the paper's Figure 2(a)
reference point (GPT3-7B, batch 32, sequence length 512) and scale with
model size exactly as a cycle-driven simulator would, preserving the shape
of Figures 2(a) and 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..engine.npu import NPUEngine, TABLE1_NPU
from ..models.architectures import ModelConfig, get_model
from ..models.graph import BatchComposition, SequenceSpec, build_iteration_graph
from ..models.layers import Phase

__all__ = ["BaselineSimulatorModel", "MNPUSIM", "GENESYS", "NEUPIMS_SIM",
           "baseline_simulators", "iteration_simulated_cycles"]


def iteration_simulated_cycles(model: ModelConfig, batch_size: int, seq_len: int,
                               phase: Phase = Phase.INITIATION) -> float:
    """Device cycles a cycle-accurate simulator must model for one iteration.

    Uses the NPU engine's cycle model summed over every operator of every
    transformer block (no block replication — baseline simulators simulate
    each layer independently) plus the PIM cycles for attention when the
    simulator models a heterogeneous device.
    """
    if phase is Phase.INITIATION:
        sequences = [SequenceSpec(i, 0, seq_len, Phase.INITIATION) for i in range(batch_size)]
    else:
        sequences = [SequenceSpec(i, seq_len, 1, Phase.GENERATION) for i in range(batch_size)]
    graph = build_iteration_graph(model, BatchComposition(sequences))
    npu = NPUEngine(TABLE1_NPU)
    block_cycles = sum(npu.estimate(op).simulated_cycles for op in graph.block_operators)
    other_cycles = sum(npu.estimate(op).simulated_cycles
                       for op in list(graph.embedding_operators) + list(graph.head_operators))
    return block_cycles * model.num_layers + other_cycles


@dataclass(frozen=True)
class BaselineSimulatorModel:
    """Host-time cost model of one baseline simulator.

    Attributes
    ----------
    name:
        Simulator name as used in the paper.
    seconds_per_gigacycle:
        Host seconds spent per billion simulated device cycles.
    per_operator_overhead_s:
        Host seconds of fixed overhead per simulated operator (compilation,
        trace generation, memory-system warm-up).
    models_pim:
        Whether the simulator also models a PIM device (NeuPIMs does).
    """

    name: str
    seconds_per_gigacycle: float
    per_operator_overhead_s: float
    models_pim: bool = False

    def iteration_time(self, model: ModelConfig, batch_size: int = 32,
                       seq_len: int = 512, phase: Phase = Phase.INITIATION) -> float:
        """Host seconds this simulator needs for one serving iteration."""
        cycles = iteration_simulated_cycles(model, batch_size, seq_len, phase)
        if phase is Phase.INITIATION:
            sequences = [SequenceSpec(i, 0, seq_len, phase) for i in range(batch_size)]
        else:
            sequences = [SequenceSpec(i, seq_len, 1, phase) for i in range(batch_size)]
        graph = build_iteration_graph(model, BatchComposition(sequences))
        operators = (len(graph.block_operators) * model.num_layers
                     + len(graph.embedding_operators) + len(graph.head_operators))
        time_s = (cycles / 1e9) * self.seconds_per_gigacycle + operators * self.per_operator_overhead_s
        if self.models_pim:
            time_s *= 1.15  # additional memory-device state to simulate
        return time_s


# Calibration reference: GPT3-7B, batch 32, seq 512 (Figure 2(a)):
# mNPUsim ~10 h, GeneSys ~1.5 h, NeuPIMs ~2 h for a single iteration.
_REFERENCE_CYCLES = None  # computed lazily in _calibrate()


def _calibrate(target_hours: float, per_operator_overhead_s: float, models_pim: bool) -> float:
    """Derive seconds-per-gigacycle from the Figure 2(a) reference point."""
    global _REFERENCE_CYCLES
    model = get_model("gpt3-7b")
    if _REFERENCE_CYCLES is None:
        _REFERENCE_CYCLES = iteration_simulated_cycles(model, 32, 512, Phase.INITIATION)
    sequences = [SequenceSpec(i, 0, 512, Phase.INITIATION) for i in range(32)]
    graph = build_iteration_graph(model, BatchComposition(sequences))
    operators = (len(graph.block_operators) * model.num_layers
                 + len(graph.embedding_operators) + len(graph.head_operators))
    target_seconds = target_hours * 3600.0
    if models_pim:
        target_seconds /= 1.15
    remaining = target_seconds - operators * per_operator_overhead_s
    return max(0.0, remaining) / (_REFERENCE_CYCLES / 1e9)


MNPUSIM = BaselineSimulatorModel(
    name="mNPUsim",
    seconds_per_gigacycle=_calibrate(10.0, per_operator_overhead_s=0.5, models_pim=False),
    per_operator_overhead_s=0.5,
    models_pim=False,
)

GENESYS = BaselineSimulatorModel(
    name="GeneSys",
    seconds_per_gigacycle=_calibrate(1.5, per_operator_overhead_s=0.3, models_pim=False),
    per_operator_overhead_s=0.3,
    models_pim=False,
)

NEUPIMS_SIM = BaselineSimulatorModel(
    name="NeuPIMs",
    seconds_per_gigacycle=_calibrate(2.0, per_operator_overhead_s=0.3, models_pim=True),
    per_operator_overhead_s=0.3,
    models_pim=True,
)


def baseline_simulators() -> List[BaselineSimulatorModel]:
    """The three baseline simulators of Figures 2(a) and 8."""
    return [MNPUSIM, GENESYS, NEUPIMS_SIM]
