"""Computation-reuse cache for hardware-simulation results.

The paper's second fast-simulation technique caches hardware-simulation
results and reuses them across iterations.  Attention and non-attention
operators are tracked separately: non-attention operators are expensive to
simulate but their shapes recur constantly (the batched token count repeats
across iterations), while attention operators are cheap but change shape
every iteration as contexts grow.

The cache key is the operator signature (type, phase, dimensions, byte
counts) plus the device class, so a hit is guaranteed to have identical
hardware behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..models.layers import Operator
from ..system.topology import DeviceType
from .base import OperatorEstimate

__all__ = ["CacheStats", "SimulationCache"]


@dataclass
class CacheStats:
    """Hit/miss counters split by operator kind."""

    attention_hits: int = 0
    attention_misses: int = 0
    non_attention_hits: int = 0
    non_attention_misses: int = 0

    @property
    def hits(self) -> int:
        return self.attention_hits + self.non_attention_hits

    @property
    def misses(self) -> int:
        return self.attention_misses + self.non_attention_misses

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class SimulationCache:
    """Memoizes :class:`OperatorEstimate` results per (device, operator shape).

    Parameters
    ----------
    enabled:
        When False every lookup misses; used by the "without reuse"
        experiment arms.
    max_entries:
        Optional bound on the number of cached entries; the cache evicts its
        oldest entry once full (insertion-ordered dict).
    """

    def __init__(self, enabled: bool = True, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive when given")
        self.enabled = enabled
        self.max_entries = max_entries
        self._entries: Dict[Tuple, OperatorEstimate] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def _key(self, device: DeviceType, operator: Operator) -> Tuple:
        return (device,) + operator.signature()

    def lookup(self, device: DeviceType, operator: Operator) -> Optional[OperatorEstimate]:
        """Return a cached estimate or ``None``, updating hit/miss statistics."""
        if not self.enabled:
            self._record(operator, hit=False)
            return None
        estimate = self._entries.get(self._key(device, operator))
        self._record(operator, hit=estimate is not None)
        return estimate

    def store(self, device: DeviceType, operator: Operator, estimate: OperatorEstimate) -> None:
        """Insert an estimate, evicting the oldest entry if the cache is full."""
        if not self.enabled:
            return
        if self.max_entries is not None and len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[self._key(device, operator)] = estimate

    def clear(self) -> None:
        """Drop all entries and reset statistics."""
        self._entries.clear()
        self.stats = CacheStats()

    def _record(self, operator: Operator, hit: bool) -> None:
        if operator.is_attention:
            if hit:
                self.stats.attention_hits += 1
            else:
                self.stats.attention_misses += 1
        else:
            if hit:
                self.stats.non_attention_hits += 1
            else:
                self.stats.non_attention_misses += 1
