"""PIM execution engine: bank-parallel GEMV cost model.

Stand-in for the paper's in-house PIM simulator.  Processing-in-memory
devices place a small compute unit next to every DRAM bank so memory-bound
GEMV work (the Score and Attend operators of the generation phase) runs at
the memory's aggregate internal bandwidth instead of the external interface
bandwidth.  Table I gives the PIM configuration: 4 banks per bank group, 32
banks per channel, 1 GHz, 32 GB capacity, 1 TB/s internal bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.layers import Operator, OpType
from ..system.topology import DeviceType
from .base import ExecutionEngine, OperatorEstimate

__all__ = ["PIMConfig", "PIMEngine", "TABLE1_PIM"]


@dataclass(frozen=True)
class PIMConfig:
    """PIM hardware parameters (Table I of the paper).

    Attributes
    ----------
    banks_per_bankgroup / banks_per_channel / num_channels:
        DRAM organization; the product bounds the bank-level parallelism.
    frequency_hz:
        In-bank compute clock.
    memory_capacity_bytes:
        Device capacity.
    internal_bandwidth_gbs:
        Aggregate in-memory bandwidth available to the bank compute units.
    macs_per_bank_per_cycle:
        Multiply-accumulate throughput of one bank's compute unit.
    launch_overhead_s:
        Fixed per-operator command overhead from the host-side PIM controller.
    """

    banks_per_bankgroup: int = 4
    banks_per_channel: int = 32
    num_channels: int = 16
    frequency_hz: float = 1e9
    memory_capacity_bytes: int = 32 * 1024 ** 3
    internal_bandwidth_gbs: float = 1000.0
    macs_per_bank_per_cycle: int = 16
    launch_overhead_s: float = 3e-6

    def __post_init__(self) -> None:
        if self.internal_bandwidth_gbs <= 0:
            raise ValueError("internal bandwidth must be positive")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")

    @property
    def total_banks(self) -> int:
        return self.banks_per_channel * self.num_channels

    @property
    def peak_flops(self) -> float:
        """Aggregate MAC throughput across all banks in FLOP/s."""
        return 2.0 * self.total_banks * self.macs_per_bank_per_cycle * self.frequency_hz


#: The exact PIM configuration from Table I (as used by NeuPIMs).
TABLE1_PIM = PIMConfig()


class PIMEngine(ExecutionEngine):
    """Analytical PIM simulator plug-in for memory-bound operators."""

    device_type = DeviceType.PIM

    #: Operator classes a PIM device is able to execute.
    SUPPORTED_TYPES = (OpType.GEMV, OpType.SOFTMAX, OpType.LAYERNORM, OpType.VECTOR, OpType.GEMM)

    def __init__(self, config: PIMConfig = TABLE1_PIM) -> None:
        self.config = config

    def supports(self, operator: Operator) -> bool:
        """PIM executes memory-bound operator classes only.

        GEMM is nominally supported (attention Score/Attend in the initiation
        phase are small GEMMs), but compute-bound projection GEMMs should be
        mapped to the NPU by the operator mapper; ``supports`` only states
        capability, not preference.
        """
        return operator.op_type in self.SUPPORTED_TYPES

    def estimate(self, operator: Operator) -> OperatorEstimate:
        """Latency of one operator on a single PIM device.

        The memory term uses the aggregate internal bandwidth; the compute
        term uses the bank compute units.  Both are far higher than what the
        external interface would allow, which is exactly the PIM advantage.
        """
        cfg = self.config
        compute_time = operator.flops / cfg.peak_flops if cfg.peak_flops else 0.0
        memory_time = operator.total_bytes / (cfg.internal_bandwidth_gbs * 1e9)
        latency = max(compute_time, memory_time) + cfg.launch_overhead_s
        cycles = max(compute_time, memory_time) * cfg.frequency_hz
        return OperatorEstimate(
            latency=latency,
            compute_time=compute_time,
            memory_time=memory_time,
            simulated_cycles=cycles,
        )
