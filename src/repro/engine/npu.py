"""NPU execution engine: analytical systolic-array + vector-unit cost model.

This is the stand-in for the GeneSys NPU simulator used in the paper.  The
hardware follows Table I: a 128x128 systolic array for matrix work, a 128-
lane vector unit for elementwise/normalization work, 1 GHz clock, 24 GB of
local memory at 936 GB/s.

The cost model uses the classic output-stationary tiling bound for GEMM
(tiles of the output matrix stream through the array, each tile taking the
reduction-dimension number of cycles plus a pipeline-fill term) and overlaps
computation with memory traffic, so an operator's latency is the maximum of
its compute time and its memory time plus a fixed launch overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.layers import Operator, OpType
from ..system.topology import DeviceType
from .base import ExecutionEngine, OperatorEstimate

__all__ = ["NPUConfig", "NPUEngine", "TABLE1_NPU"]


@dataclass(frozen=True)
class NPUConfig:
    """NPU hardware parameters (Table I of the paper).

    Attributes
    ----------
    systolic_rows / systolic_cols:
        Dimensions of the systolic array.
    vector_lanes:
        Width of the vector unit.
    frequency_hz:
        Core clock.
    memory_capacity_bytes:
        Local (HBM/GDDR) memory capacity.
    memory_bandwidth_gbs:
        Local memory bandwidth.
    launch_overhead_s:
        Fixed per-operator launch/dispatch overhead.
    """

    systolic_rows: int = 128
    systolic_cols: int = 128
    vector_lanes: int = 128
    frequency_hz: float = 1e9
    memory_capacity_bytes: int = 24 * 1024 ** 3
    memory_bandwidth_gbs: float = 936.0
    launch_overhead_s: float = 2e-6

    def __post_init__(self) -> None:
        if self.systolic_rows <= 0 or self.systolic_cols <= 0:
            raise ValueError("systolic array dimensions must be positive")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.memory_bandwidth_gbs <= 0:
            raise ValueError("memory bandwidth must be positive")

    @property
    def peak_flops(self) -> float:
        """Peak MAC throughput of the systolic array in FLOP/s (2 per MAC)."""
        return 2.0 * self.systolic_rows * self.systolic_cols * self.frequency_hz


#: The exact NPU configuration from Table I.
TABLE1_NPU = NPUConfig()


class NPUEngine(ExecutionEngine):
    """Analytical GeneSys-like NPU simulator plug-in."""

    device_type = DeviceType.NPU

    def __init__(self, config: NPUConfig = TABLE1_NPU) -> None:
        self.config = config

    # -- cycle models --------------------------------------------------------

    def _gemm_cycles(self, m: int, k: int, n: int) -> float:
        """Systolic GEMM cycles with output-tile packing.

        The output matrix is divided into ``systolic_rows x systolic_cols``
        element tiles; the compiler packs partial tiles (small ``m`` decode
        GEMMs) so the array stays utilized, which is what lets the Table-I
        NPU track the paper's GPU baseline.  Each packed tile streams ``k``
        reduction cycles plus an array fill/drain term.
        """
        cfg = self.config
        m = max(1, m)
        k = max(1, k)
        n = max(1, n)
        array_elems = cfg.systolic_rows * cfg.systolic_cols
        packed_tiles = -(-(m * n) // array_elems)
        fill = cfg.systolic_rows + cfg.systolic_cols
        return packed_tiles * (k + fill)

    def _vector_cycles(self, elements: float) -> float:
        """Vector-unit cycles for elementwise / reduction work."""
        return max(1.0, elements / self.config.vector_lanes)

    def _compute_cycles(self, op: Operator) -> float:
        if op.op_type in (OpType.GEMM, OpType.GEMV):
            return self._gemm_cycles(op.m, op.k, op.n)
        if op.op_type is OpType.EMBEDDING:
            # Table lookups are bandwidth work; a token-count of cycles keeps
            # the compute term negligible, as on real hardware.
            return max(1.0, op.m)
        # Softmax / layernorm / activation run on the vector unit; the flops
        # already include the constant factors for exp/rsqrt.
        return self._vector_cycles(op.flops / 2.0)

    # -- engine interface ----------------------------------------------------

    def estimate(self, operator: Operator) -> OperatorEstimate:
        """Latency of one operator on a single NPU device."""
        cfg = self.config
        cycles = self._compute_cycles(operator)
        compute_time = cycles / cfg.frequency_hz
        memory_time = operator.total_bytes / (cfg.memory_bandwidth_gbs * 1e9)
        latency = max(compute_time, memory_time) + cfg.launch_overhead_s
        return OperatorEstimate(
            latency=latency,
            compute_time=compute_time,
            memory_time=memory_time,
            simulated_cycles=max(cycles, memory_time * cfg.frequency_hz),
        )
