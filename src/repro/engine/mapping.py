"""Operator mapping onto heterogeneous accelerators.

Section IV-B of the paper: in a heterogeneous system, memory-bound operators
(the GEMV Score/Attend of the generation phase, softmax, layer
normalization) are mapped to PIM devices and compute-bound operators (QKV
generation, projections, FFN) to NPU devices.  Where the mapping decision is
made depends on the topology: for locally attached PIM the execution engine
decides internally, for PIM pools the scheduler decides and the graph
converter inserts inter-pool transfers.

The mapper here is the shared policy object used by both paths.  It is a
"skeleton" interface in the paper's sense: users can subclass
:class:`OperatorMapper` to explore alternative mapping strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..models.layers import Operator, OpType, Phase
from ..system.topology import DeviceType, PIMMode

__all__ = ["MappingDecision", "OperatorMapper", "HeterogeneousMapper", "HomogeneousMapper", "build_mapper"]


@dataclass(frozen=True)
class MappingDecision:
    """The device class chosen for one operator."""

    operator: Operator
    engine: DeviceType


class OperatorMapper:
    """Base mapping policy: everything runs on the primary compute device."""

    def __init__(self, primary: DeviceType = DeviceType.NPU) -> None:
        self.primary = primary

    def map_operator(self, operator: Operator) -> DeviceType:
        """Device class for a single operator."""
        return self.primary

    def map_operators(self, operators: Iterable[Operator]) -> List[MappingDecision]:
        """Map a whole operator list, preserving order."""
        return [MappingDecision(op, self.map_operator(op)) for op in operators]

    def split_by_engine(self, operators: Iterable[Operator]) -> Dict[DeviceType, List[Operator]]:
        """Group operators by their mapped device class (the simulation plan)."""
        plan: Dict[DeviceType, List[Operator]] = {}
        for decision in self.map_operators(operators):
            plan.setdefault(decision.engine, []).append(decision.operator)
        return plan


class HomogeneousMapper(OperatorMapper):
    """All operators on a single device class (NPU-only or GPU-only systems)."""


class HeterogeneousMapper(OperatorMapper):
    """NPU + PIM mapping policy from the paper.

    Parameters
    ----------
    map_layernorm_to_pim:
        Whether to also offload layer normalization (memory bound, see the
        roofline in Figure 2(b)) to PIM.  AttAcc/NeuPIMs-style systems do.
    map_prefill_attention_to_pim:
        Whether initiation-phase attention (GEMM-shaped) also goes to PIM.
        Default False: prefill attention has enough arithmetic intensity for
        the NPU, and NeuPIMs keeps it there.
    """

    def __init__(self, primary: DeviceType = DeviceType.NPU,
                 map_layernorm_to_pim: bool = False,
                 map_prefill_attention_to_pim: bool = False) -> None:
        super().__init__(primary)
        self.map_layernorm_to_pim = map_layernorm_to_pim
        self.map_prefill_attention_to_pim = map_prefill_attention_to_pim

    def map_operator(self, operator: Operator) -> DeviceType:
        if operator.is_attention:
            if operator.phase is Phase.GENERATION:
                return DeviceType.PIM
            if self.map_prefill_attention_to_pim:
                return DeviceType.PIM
            return self.primary
        if self.map_layernorm_to_pim and operator.op_type is OpType.LAYERNORM:
            return DeviceType.PIM
        return self.primary


def build_mapper(pim_mode: PIMMode, primary: DeviceType = DeviceType.NPU,
                 **kwargs: bool) -> OperatorMapper:
    """Choose the mapping policy implied by the system's PIM provisioning."""
    if pim_mode is PIMMode.NONE:
        return HomogeneousMapper(primary)
    return HeterogeneousMapper(primary, **kwargs)
