"""The execution engine stack: compiler + engines + cache + operator scheduler.

This is the component labelled "Execution Engine Stack" in Figure 4 of the
paper.  For every iteration it:

1. compiles the model for the batch configuration (with block-replication
   reuse),
2. maps each operator of each sub-batch onto an engine (NPU, PIM, GPU, ...),
3. obtains a latency estimate for every operator, consulting the
   computation-reuse cache first,
4. performs greedy operator scheduling so independent sub-batches overlap
   across heterogeneous engines, and
5. emits the merged trace the graph converter consumes, plus an
   :class:`EngineStackReport` with the work counters used for
   simulation-time accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..models.graph import IterationGraph
from ..models.layers import Operator
from ..system.topology import DeviceType
from .base import ExecutionEngine, OperatorEstimate
from .cache import SimulationCache
from .compiler import CompileReport, CompilerModel
from .mapping import OperatorMapper, HomogeneousMapper
from .npu import NPUEngine
from .op_scheduler import GreedyOperatorScheduler, OperatorSchedule
from .trace import Trace, TraceEntry

__all__ = ["EngineStackReport", "ExecutionEngineStack"]


@dataclass
class EngineStackReport:
    """Work accounting for one iteration of the engine stack.

    Attributes
    ----------
    compile_report:
        Compilation work (including block-replication savings).
    simulated_operators:
        Operators whose latency had to be freshly simulated (cache misses),
        split into attention / non-attention because the paper notes their
        very different simulation costs.
    cached_operators:
        Operators served from the computation-reuse cache.
    operators_by_engine:
        Number of operators mapped to each engine class.
    schedule_makespan:
        Overlapped makespan estimate of the operator schedule.
    served_from_iteration_cache:
        True when this report describes an iteration that was *not*
        re-simulated at all: the whole stack run was skipped and the report
        replayed from the iteration-level reuse cache
        (:class:`~repro.engine.iteration_cache.IterationReuseCache`).
    """

    compile_report: CompileReport = field(default_factory=CompileReport)
    simulated_attention_operators: int = 0
    simulated_non_attention_operators: int = 0
    cached_operators: int = 0
    operators_by_engine: Dict[DeviceType, int] = field(default_factory=dict)
    schedule_makespan: float = 0.0
    served_from_iteration_cache: bool = False

    @property
    def simulated_operators(self) -> int:
        return self.simulated_attention_operators + self.simulated_non_attention_operators

    @property
    def total_operators(self) -> int:
        return self.simulated_operators + self.cached_operators


class ExecutionEngineStack:
    """Pluggable per-iteration hardware simulation front-end.

    Parameters
    ----------
    engines:
        Mapping from device class to engine plug-in.  Defaults to a single
        NPU engine.
    mapper:
        Operator mapping policy (homogeneous by default).
    compiler:
        Compilation cost model.
    cache:
        Computation-reuse cache; pass ``SimulationCache(enabled=False)`` to
        model the "without reuse" configuration.
    """

    def __init__(self,
                 engines: Optional[Dict[DeviceType, ExecutionEngine]] = None,
                 mapper: Optional[OperatorMapper] = None,
                 compiler: Optional[CompilerModel] = None,
                 cache: Optional[SimulationCache] = None) -> None:
        # Note: ``cache`` defines __len__, so an empty cache is falsy — compare
        # against None explicitly rather than using ``or``.
        self.engines: Dict[DeviceType, ExecutionEngine] = (
            engines if engines is not None else {DeviceType.NPU: NPUEngine()})
        self.mapper = mapper if mapper is not None else HomogeneousMapper()
        self.compiler = compiler if compiler is not None else CompilerModel()
        self.cache = cache if cache is not None else SimulationCache()
        self.op_scheduler = GreedyOperatorScheduler()

    # -- plug-in management --------------------------------------------------

    def register_engine(self, engine: ExecutionEngine) -> None:
        """Attach an additional accelerator engine (the plug-in interface)."""
        self.engines[engine.device_type] = engine

    def engine_for(self, device_type: DeviceType) -> ExecutionEngine:
        if device_type not in self.engines:
            available = ", ".join(e.value for e in self.engines)
            raise KeyError(f"no engine registered for {device_type.value}; available: {available}")
        return self.engines[device_type]

    def reset(self) -> None:
        """Clear all cross-iteration state (cache and compiled shapes)."""
        self.cache.clear()
        self.compiler.reset()

    # -- estimation ----------------------------------------------------------

    def _estimate(self, operator: Operator, device_type: DeviceType,
                  report: EngineStackReport) -> "Tuple[OperatorEstimate, bool]":
        cached = self.cache.lookup(device_type, operator)
        if cached is not None:
            report.cached_operators += 1
            return cached, True
        engine = self.engine_for(device_type)
        if not engine.supports(operator):
            # Fall back to the primary engine when the mapped engine cannot
            # execute the operator (defensive: the default mappers never do this).
            engine = self.engine_for(self.mapper.primary)
            device_type = engine.device_type
        estimate = engine.estimate(operator)
        self.cache.store(device_type, operator, estimate)
        if operator.is_attention:
            report.simulated_attention_operators += 1
        else:
            report.simulated_non_attention_operators += 1
        return estimate, False

    def simulate_iteration(self, graph: IterationGraph,
                           sub_batch_operator_lists: Optional[Sequence[Sequence[Operator]]] = None
                           ) -> "EngineStackResult":
        """Run the engine stack for one iteration.

        Parameters
        ----------
        graph:
            The iteration's model graph (single representative block).
        sub_batch_operator_lists:
            Optional explicit sub-batch partitioning of the representative
            block's operators.  When omitted the whole block forms one
            sub-batch (no interleaving).

        Returns
        -------
        EngineStackResult
            The merged trace (single representative block), the per-operator
            estimates, and the work report.
        """
        report = EngineStackReport()
        report.compile_report = self.compiler.compile_iteration(graph)

        if sub_batch_operator_lists is None:
            sub_batch_operator_lists = [list(graph.block_operators)]

        sub_batch_traces: List[List[TraceEntry]] = []
        for sub_batch_index, operators in enumerate(sub_batch_operator_lists):
            entries: List[TraceEntry] = []
            for operator in operators:
                device_type = self.mapper.map_operator(operator)
                report.operators_by_engine[device_type] = (
                    report.operators_by_engine.get(device_type, 0) + 1)
                estimate, was_cached = self._estimate(operator, device_type, report)
                entries.append(TraceEntry(
                    operator=operator, engine=device_type, latency=estimate.latency,
                    compute_time=estimate.compute_time, memory_time=estimate.memory_time,
                    cached=was_cached, sub_batch=sub_batch_index))
            sub_batch_traces.append(entries)

        # Embedding and LM head always run on the primary engine.
        extra_entries: List[TraceEntry] = []
        for operator in list(graph.embedding_operators) + list(graph.head_operators):
            device_type = self.mapper.primary
            report.operators_by_engine[device_type] = (
                report.operators_by_engine.get(device_type, 0) + 1)
            estimate, was_cached = self._estimate(operator, device_type, report)
            extra_entries.append(TraceEntry(
                operator=operator, engine=device_type, latency=estimate.latency,
                compute_time=estimate.compute_time, memory_time=estimate.memory_time,
                cached=was_cached, sub_batch=0))

        schedule = self.op_scheduler.schedule(sub_batch_traces)
        report.schedule_makespan = schedule.makespan

        return EngineStackResult(
            block_trace=schedule.trace,
            embedding_and_head_trace=_trace_from(extra_entries),
            sub_batch_traces=[list(entries) for entries in sub_batch_traces],
            schedule=schedule,
            report=report,
        )


def _trace_from(entries: Sequence[TraceEntry]) -> Trace:
    trace = Trace()
    trace.extend(entries)
    return trace


@dataclass
class EngineStackResult:
    """Output of :meth:`ExecutionEngineStack.simulate_iteration`.

    ``block_trace`` holds the operator-scheduled (interleaved) order used for
    reporting; ``sub_batch_traces`` preserves each sub-batch's layer order,
    which is what the graph converter consumes.
    """

    block_trace: Trace
    embedding_and_head_trace: Trace
    sub_batch_traces: List[List[TraceEntry]]
    schedule: OperatorSchedule
    report: EngineStackReport
