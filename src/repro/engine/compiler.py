"""Compiler model with transformer-block replication reuse.

The paper identifies model compilation (PolyMath in the artifact) as a major
bottleneck of the execution-engine stack and removes most of it with "model
redundancy reuse": because every transformer block of a decoder LLM has the
same structure, only one block is compiled and the result is replicated
across all ``num_layers`` blocks.

This module models that behaviour.  Compilation itself is symbolic here — the
analytical engines need no lowering — but the *cost* of compilation is
accounted in work units so the simulation-time experiments (Figures 8, 9 and
10) can reproduce the with/without-reuse gap.  A compiled-artifact cache
additionally skips recompilation of previously seen (operator-shape, engine)
combinations across iterations, mirroring the artifact's caching of compiled
models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set, Tuple

from ..models.graph import IterationGraph
from ..models.layers import Operator

__all__ = ["CompileReport", "CompilerModel"]


@dataclass
class CompileReport:
    """Accounting of one iteration's compilation work.

    Attributes
    ----------
    compiled_operators:
        Number of operators actually compiled this iteration.
    replicated_operators:
        Number of operators whose compiled form was obtained by replicating
        another block's result (model redundancy reuse).
    cached_operators:
        Number of operators skipped entirely because an identical shape was
        compiled in a previous iteration.
    modeled_time_s:
        Modeled compilation time in seconds.
    """

    compiled_operators: int = 0
    replicated_operators: int = 0
    cached_operators: int = 0
    modeled_time_s: float = 0.0

    @property
    def total_operators(self) -> int:
        return self.compiled_operators + self.replicated_operators + self.cached_operators


class CompilerModel:
    """Models per-iteration compilation cost of the execution-engine stack.

    Parameters
    ----------
    seconds_per_operator:
        Modeled cost of compiling a single operator.  The default is
        calibrated so that compiling a full GPT3-30B iteration (batch 64)
        without any reuse contributes on the order of 100 s of engine-stack
        time, matching the scale of Figure 9's "without reuse" bars.
    enable_block_reuse:
        Compile one transformer block and replicate it (Section IV-C).
    enable_cross_iteration_cache:
        Skip compilation of operator shapes seen in earlier iterations.
    """

    def __init__(self, seconds_per_operator: float = 0.012,
                 enable_block_reuse: bool = True,
                 enable_cross_iteration_cache: bool = True) -> None:
        if seconds_per_operator < 0:
            raise ValueError("seconds_per_operator must be non-negative")
        self.seconds_per_operator = seconds_per_operator
        self.enable_block_reuse = enable_block_reuse
        self.enable_cross_iteration_cache = enable_cross_iteration_cache
        self._compiled_signatures: Set[Tuple] = set()

    def reset(self) -> None:
        """Forget all previously compiled shapes (start of a new simulation)."""
        self._compiled_signatures.clear()

    # -- compilation accounting ----------------------------------------------

    def compile_iteration(self, graph: IterationGraph) -> CompileReport:
        """Account the compilation work for one iteration's model graph."""
        report = CompileReport()

        block_ops = list(graph.block_operators)
        other_ops = list(graph.embedding_operators) + list(graph.head_operators)

        if self.enable_block_reuse:
            # One block is compiled; the remaining (num_blocks - 1) copies are
            # replicas of the compiled artifact.
            self._compile_ops(block_ops, report)
            report.replicated_operators += len(block_ops) * (graph.num_blocks - 1)
        else:
            for _ in range(graph.num_blocks):
                self._compile_ops(block_ops, report)
        self._compile_ops(other_ops, report)

        report.modeled_time_s = report.compiled_operators * self.seconds_per_operator
        return report

    def _compile_ops(self, operators: Iterable[Operator], report: CompileReport) -> None:
        for op in operators:
            signature = op.signature()
            if self.enable_cross_iteration_cache and signature in self._compiled_signatures:
                report.cached_operators += 1
                continue
            report.compiled_operators += 1
            self._compiled_signatures.add(signature)
