"""Execution-engine plug-in interface.

LLMServingSim treats accelerator compiler-and-simulator stacks as plug-ins:
any hardware that can turn an operator into a latency estimate can be
attached to the serving simulator.  :class:`ExecutionEngine` is the abstract
interface every plug-in implements; :class:`OperatorEstimate` is the result
it returns.  The built-in plug-ins are the NPU systolic-array engine
(:mod:`repro.engine.npu`), the PIM engine (:mod:`repro.engine.pim`) and a GPU
roofline engine (:mod:`repro.engine.gpu`) used for the vLLM reference system.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..models.layers import Operator
from ..system.topology import DeviceType

__all__ = ["OperatorEstimate", "ExecutionEngine"]


@dataclass(frozen=True)
class OperatorEstimate:
    """Latency estimate for one operator on one device.

    Attributes
    ----------
    latency:
        Wall-clock execution time in seconds on a single device.
    compute_time:
        Time the operator would take if it were purely compute bound.
    memory_time:
        Time the operator would take if it were purely memory bound.
    simulated_cycles:
        Number of device cycles the hardware simulator had to model; this is
        the work-unit count used by the simulation-time cost accounting.
    """

    latency: float
    compute_time: float
    memory_time: float
    simulated_cycles: float

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError("latency must be non-negative")

    @property
    def is_memory_bound(self) -> bool:
        """True when the memory term dominates the estimate."""
        return self.memory_time >= self.compute_time


class ExecutionEngine(abc.ABC):
    """Abstract accelerator compiler-and-simulator stack.

    Concrete engines provide a :attr:`device_type`, an analytical
    :meth:`estimate` for a single operator, and engine-specific constants via
    their constructors.  Engines must be stateless with respect to
    estimation: the same operator always yields the same estimate, which is
    what makes the computation-reuse cache sound.
    """

    #: Device class the engine simulates; overridden by subclasses.
    device_type: DeviceType = DeviceType.NPU

    @property
    def name(self) -> str:
        """Engine name used in reports."""
        return f"{self.device_type.value}-engine"

    @abc.abstractmethod
    def estimate(self, operator: Operator) -> OperatorEstimate:
        """Estimate the execution of ``operator`` on one device of this class."""

    def supports(self, operator: Operator) -> bool:
        """Whether this engine can execute the operator at all.

        The default accepts everything; restricted engines (e.g. PIM, which
        only runs memory-bound GEMV-class work) override this.
        """
        return True
