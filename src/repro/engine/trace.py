"""Execution-engine trace format.

Each execution engine (NPU, PIM, GPU) simulates the operators mapped to it
and emits :class:`TraceEntry` records: the operator, the engine/device class
that ran it, the estimated latency and whether the estimate came from the
computation-reuse cache.  The operator scheduler merges per-engine traces
into a single :class:`Trace` that the graph converter consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from ..models.layers import Operator
from ..system.topology import DeviceType

__all__ = ["TraceEntry", "Trace"]


@dataclass(frozen=True)
class TraceEntry:
    """One simulated operator in an engine trace.

    Attributes
    ----------
    operator:
        The operator that was simulated.
    engine:
        Device class the operator was mapped to.
    latency:
        Estimated execution latency in seconds on a single device.
    compute_time / memory_time:
        The compute-bound and memory-bound components of the latency (the
        larger of the two dominates under the overlap model).
    cached:
        True if the estimate was served from the computation-reuse cache.
    sub_batch:
        Index of the sub-batch the operator belongs to (operator scheduling
        interleaves sub-batches across heterogeneous engines).
    """

    operator: Operator
    engine: DeviceType
    latency: float
    compute_time: float = 0.0
    memory_time: float = 0.0
    cached: bool = False
    sub_batch: int = 0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError("latency must be non-negative")


@dataclass
class Trace:
    """An ordered collection of trace entries for one iteration."""

    entries: List[TraceEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def append(self, entry: TraceEntry) -> None:
        self.entries.append(entry)

    def extend(self, entries: Iterable[TraceEntry]) -> None:
        self.entries.extend(entries)

    @property
    def total_latency(self) -> float:
        """Serial sum of all entry latencies."""
        return sum(e.latency for e in self.entries)

    @property
    def cache_hits(self) -> int:
        return sum(1 for e in self.entries if e.cached)

    @property
    def cache_misses(self) -> int:
        return sum(1 for e in self.entries if not e.cached)

    def by_engine(self) -> Dict[DeviceType, List[TraceEntry]]:
        """Group entries by the engine that produced them."""
        grouped: Dict[DeviceType, List[TraceEntry]] = {}
        for entry in self.entries:
            grouped.setdefault(entry.engine, []).append(entry)
        return grouped

    def latency_by_engine(self) -> Dict[DeviceType, float]:
        """Serial latency attributable to each engine."""
        return {engine: sum(e.latency for e in entries)
                for engine, entries in self.by_engine().items()}

    def entries_for_sub_batch(self, sub_batch: int) -> List[TraceEntry]:
        return [e for e in self.entries if e.sub_batch == sub_batch]
