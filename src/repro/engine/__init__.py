"""Execution engine stack: pluggable accelerator compiler-and-simulator models."""

from .base import ExecutionEngine, OperatorEstimate
from .cache import CacheStats, SimulationCache
from .compiler import CompileReport, CompilerModel
from .gpu import GPUConfig, GPUEngine, RTX3090_GPU
from .iteration_cache import (IterationCacheEntry, IterationCacheService,
                              IterationCacheStats, IterationReuseCache,
                              RemoteIterationCache, SharedIterationCache,
                              iteration_cache_file, iteration_signature,
                              load_iteration_cache, save_iteration_cache)
from .mapping import (HeterogeneousMapper, HomogeneousMapper, MappingDecision,
                      OperatorMapper, build_mapper)
from .npu import NPUConfig, NPUEngine, TABLE1_NPU
from .op_scheduler import GreedyOperatorScheduler, OperatorSchedule, ScheduledOperator
from .pim import PIMConfig, PIMEngine, TABLE1_PIM
from .stack import EngineStackReport, EngineStackResult, ExecutionEngineStack
from .trace import Trace, TraceEntry

__all__ = [
    "ExecutionEngine", "OperatorEstimate",
    "CacheStats", "SimulationCache",
    "CompileReport", "CompilerModel",
    "GPUConfig", "GPUEngine", "RTX3090_GPU",
    "IterationCacheEntry", "IterationCacheStats", "IterationReuseCache",
    "SharedIterationCache", "RemoteIterationCache", "IterationCacheService",
    "iteration_signature", "iteration_cache_file", "save_iteration_cache",
    "load_iteration_cache",
    "HeterogeneousMapper", "HomogeneousMapper", "MappingDecision", "OperatorMapper", "build_mapper",
    "NPUConfig", "NPUEngine", "TABLE1_NPU",
    "GreedyOperatorScheduler", "OperatorSchedule", "ScheduledOperator",
    "PIMConfig", "PIMEngine", "TABLE1_PIM",
    "EngineStackReport", "EngineStackResult", "ExecutionEngineStack",
    "Trace", "TraceEntry",
]
