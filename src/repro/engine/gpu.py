"""GPU execution engine: roofline model with kernel-efficiency factors.

This engine plays two roles:

* It demonstrates the plug-in interface with a third device class beyond the
  NPU and PIM engines of the paper.
* It powers the :class:`~repro.baselines.vllm_reference.VLLMReferenceSystem`,
  the stand-in for the real 4x RTX 3090 vLLM deployment the paper validates
  against (Figure 6).  The reference system must differ from the simulator's
  NPU model in the ways the paper describes — GPU datapath and kernel-level
  optimizations such as FlashAttention — so this engine models attention with
  a higher effective-bandwidth factor and applies realistic kernel efficiency
  to GEMM work.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.layers import Operator, OpType
from ..system.topology import DeviceType
from .base import ExecutionEngine, OperatorEstimate

__all__ = ["GPUConfig", "GPUEngine", "RTX3090_GPU"]


@dataclass(frozen=True)
class GPUConfig:
    """GPU hardware and kernel-efficiency parameters.

    Attributes
    ----------
    peak_tflops:
        Peak tensor-core throughput for the serving datatype (FP16).
    memory_bandwidth_gbs:
        Device memory bandwidth.
    memory_capacity_bytes:
        Device memory capacity.
    gemm_efficiency:
        Fraction of peak a well-tuned GEMM kernel achieves.
    attention_bandwidth_efficiency:
        Effective fraction of peak bandwidth achieved by fused
        FlashAttention-style kernels (which avoid materializing the score
        matrix, so their effective traffic is lower than the analytical
        operator bytes).
    vector_bandwidth_efficiency:
        Effective bandwidth fraction for elementwise / normalization kernels.
    kernel_launch_overhead_s:
        Fixed per-kernel launch overhead.
    """

    name: str = "rtx-3090"
    peak_tflops: float = 71.0
    memory_bandwidth_gbs: float = 936.0
    memory_capacity_bytes: int = 24 * 1024 ** 3
    gemm_efficiency: float = 0.55
    attention_bandwidth_efficiency: float = 1.35
    vector_bandwidth_efficiency: float = 0.82
    kernel_launch_overhead_s: float = 5e-6

    def __post_init__(self) -> None:
        if self.peak_tflops <= 0 or self.memory_bandwidth_gbs <= 0:
            raise ValueError("peaks must be positive")
        if not 0 < self.gemm_efficiency <= 1:
            raise ValueError("gemm_efficiency must be in (0, 1]")


#: NVIDIA RTX 3090, the GPU used in the paper's real-system baseline.
RTX3090_GPU = GPUConfig()


class GPUEngine(ExecutionEngine):
    """Roofline-based GPU cost model with kernel-efficiency corrections."""

    device_type = DeviceType.GPU

    def __init__(self, config: GPUConfig = RTX3090_GPU) -> None:
        self.config = config

    def estimate(self, operator: Operator) -> OperatorEstimate:
        """Latency of one operator on a single GPU."""
        cfg = self.config
        peak_flops = cfg.peak_tflops * 1e12
        bandwidth = cfg.memory_bandwidth_gbs * 1e9

        if operator.op_type in (OpType.GEMM, OpType.GEMV) and not operator.is_attention:
            compute_time = operator.flops / (peak_flops * cfg.gemm_efficiency)
            memory_time = operator.total_bytes / bandwidth
        elif operator.is_attention:
            # Fused attention kernels stream the KV cache once and never
            # materialize the score matrix: model this as a bandwidth boost.
            compute_time = operator.flops / (peak_flops * cfg.gemm_efficiency)
            memory_time = operator.total_bytes / (bandwidth * cfg.attention_bandwidth_efficiency)
        else:
            compute_time = operator.flops / (peak_flops * 0.25)
            memory_time = operator.total_bytes / (bandwidth * cfg.vector_bandwidth_efficiency)

        latency = max(compute_time, memory_time) + cfg.kernel_launch_overhead_s
        return OperatorEstimate(
            latency=latency,
            compute_time=compute_time,
            memory_time=memory_time,
            simulated_cycles=latency * 1.4e9,
        )
