"""Iteration-level memoization: reuse whole-iteration simulation results.

The operator-level :class:`~repro.engine.cache.SimulationCache` reuses the
hardware estimate of *one operator*; this module lifts the paper's
computation-reuse idea one level up the hierarchy.  Serving workloads are
highly repetitive at iteration granularity: in steady-state decode the same
batch geometry (phases, context lengths, memory traffic) recurs across
requests, across batch waves and — in a cluster — across same-class
replicas.  When an iteration's *signature* has been simulated before, the
entire pipeline behind the scheduler (iteration-graph build, engine stack,
graph converter, system simulation) can be skipped and the memoized latency
replayed.

The signature deliberately excludes request identifiers: two iterations with
the same per-sequence ``(phase, context_length, new_tokens)`` composition,
the same KV-migration traffic and the same sub-batch partitioning produce
bit-identical execution graphs and therefore bit-identical latencies, no
matter which requests they serve.  That makes a hit *exact*, not
approximate — memoization on/off changes simulation wall-clock, never the
simulated serving behaviour.

One cache serves one hardware/software configuration: latencies depend on
the full :class:`~repro.core.config.ServingSimConfig`, so a cache may only
be shared between simulators built from the same configuration (the cluster
layer shares one cache per :class:`~repro.core.config.ReplicaSpec` class).

Three sharing tiers build on the plain :class:`IterationReuseCache`:

* :class:`SharedIterationCache` — a thread-safe cache with **singleflight**
  deduplication: concurrent misses on one signature elect a single leader
  to simulate it while late arrivals block until the leader stores the
  entry, so a signature is never computed twice no matter how many
  same-class replicas race on it.
* :class:`IterationCacheService` / :class:`RemoteIterationCache` — serve a
  master-hosted :class:`SharedIterationCache` to worker *processes* over
  pipes, restoring the serial backend's cross-replica hit rate under the
  ``process-pool`` execution backend (worker-private caches would re-miss
  every signature once per worker).
* :func:`save_iteration_cache` / :func:`load_iteration_cache` — optional
  on-disk persistence (``ClusterConfig.cache_dir``) keyed by the owning
  serving configuration, so parameter sweeps revisiting a configuration
  warm-start instead of re-simulating known signatures.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import traceback
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_for_connections
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..models.graph import BatchComposition
from ..scheduler.kv_cache import KVMemoryEvent
from .stack import EngineStackReport

__all__ = ["IterationCacheStats", "IterationCacheEntry", "IterationReuseCache",
           "SharedIterationCache", "RemoteIterationCache", "IterationCacheService",
           "iteration_signature", "iteration_cache_file", "save_iteration_cache",
           "load_iteration_cache"]


def iteration_signature(batch: BatchComposition,
                        memory_events: Sequence[KVMemoryEvent] = (),
                        num_sub_batches: int = 1) -> Tuple:
    """Hashable signature of one iteration's simulation input.

    Captures everything the engine stack, graph converter and system
    simulator see (for a fixed serving configuration):

    * the batch composition — per-sequence ``(phase, context_length,
      new_tokens)`` in batch order, *without* request ids;
    * the KV migration traffic — per-event ``(kind, bytes)`` in order,
      again without request ids (the converter sizes memory operators by
      payload, not by owner);
    * the sub-batch partitioning degree (the partition itself is a
      deterministic function of the batch and this count).
    """
    return (
        tuple((s.phase.value, s.context_length, s.new_tokens)
              for s in batch.sequences),
        tuple((e.event_type.value, e.num_bytes) for e in memory_events),
        num_sub_batches,
    )


@dataclass
class IterationCacheStats:
    """Hit/miss counters of the iteration-level cache."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


@dataclass(frozen=True)
class IterationCacheEntry:
    """Memoized outcome of simulating one iteration signature.

    ``latency`` is the system simulator's makespan (independent of the
    scheduler clock the iteration started at); ``engine_report`` is the
    engine stack's work accounting from the original simulation, kept so a
    hit can still expose what the simulated iteration looked like.
    """

    latency: float
    engine_report: EngineStackReport


class IterationReuseCache:
    """Memoizes whole-iteration latencies per iteration signature.

    Parameters
    ----------
    enabled:
        When False every lookup misses and nothing is stored.  Simulators
        with reuse disabled simply carry no cache at all; the flag exists
        for externally-injected caches (e.g. flipping one shared cache off
        mid-experiment without rebuilding the fleet).
    max_entries:
        Optional bound on cached signatures; the oldest entry is evicted
        once full (insertion-ordered dict, like the operator-level cache).
    """

    def __init__(self, enabled: bool = True, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive when given")
        self.enabled = enabled
        self.max_entries = max_entries
        self._entries: Dict[Tuple, IterationCacheEntry] = {}
        self.stats = IterationCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, signature: Tuple) -> Optional[IterationCacheEntry]:
        """Return the memoized entry or ``None``, updating hit/miss counters."""
        if not self.enabled:
            self.stats.misses += 1
            return None
        entry = self._entries.get(signature)
        if entry is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return entry

    def peek(self, signature: Tuple) -> Optional[IterationCacheEntry]:
        """Return the memoized entry or ``None`` without touching the counters."""
        if not self.enabled:
            return None
        return self._entries.get(signature)

    def store(self, signature: Tuple, entry: IterationCacheEntry) -> None:
        """Insert an entry, evicting the oldest signature if the cache is full."""
        if not self.enabled:
            return
        if self.max_entries is not None and len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[signature] = entry

    def clear(self) -> None:
        """Drop all entries and reset statistics."""
        self._entries.clear()
        self.stats = IterationCacheStats()


class SharedIterationCache(IterationReuseCache):
    """Thread-safe iteration cache with singleflight miss deduplication.

    The plain :class:`IterationReuseCache` lets every concurrent miss on the
    same signature run the full simulation pipeline; on a shared cache that
    is pure waste — the entries are exact, so one computation serves
    everyone.  This subclass adds the **singleflight** discipline: the first
    misser of a signature becomes its *leader* and simulates it, every later
    misser blocks in :meth:`acquire` until the leader :meth:`store`\\ s the
    entry (or :meth:`abandon`\\ s it, in which case a waiter is promoted to
    leader and retries).

    ``lookup``/``store``/``peek``/``clear`` stay non-blocking and merely
    become thread-safe, so the cache still drops into
    :class:`~repro.core.simulator.LLMServingSim` unchanged; the blocking
    :meth:`acquire` entry point is what concurrent consumers — the
    in-process users of one shared cache, and the
    :class:`IterationCacheService` on behalf of worker processes — use
    instead of ``lookup``.
    """

    #: Lock discipline, enforced statically by `repro lint` rule REP006:
    #: these attributes may only be touched inside `with self._lock:` (or in
    #: a method documented as lock-held).
    _LOCK_GUARDED = ("_entries", "_inflight")

    def __init__(self, enabled: bool = True, max_entries: Optional[int] = None) -> None:
        super().__init__(enabled=enabled, max_entries=max_entries)
        self._lock = threading.Lock()
        self._inflight: Dict[Tuple, threading.Event] = {}

    def lookup(self, signature: Tuple) -> Optional[IterationCacheEntry]:
        with self._lock:
            return super().lookup(signature)

    def peek(self, signature: Tuple) -> Optional[IterationCacheEntry]:
        with self._lock:
            return super().peek(signature)

    def store(self, signature: Tuple, entry: IterationCacheEntry) -> None:
        """Insert an entry and release every waiter blocked on its signature."""
        with self._lock:
            super().store(signature, entry)
            event = self._inflight.pop(signature, None)
        if event is not None:
            event.set()

    def clear(self) -> None:
        with self._lock:
            super().clear()
            inflight, self._inflight = self._inflight, {}
        for event in inflight.values():
            event.set()

    # -- singleflight ----------------------------------------------------------

    def acquire(self, signature: Tuple) -> Tuple[Optional[IterationCacheEntry], bool]:
        """Hit, lead, or wait: the singleflight entry point.

        Returns ``(entry, False)`` on a hit.  On a miss with nobody
        computing the signature, returns ``(None, True)`` — the caller is
        the leader and must :meth:`store` (or :meth:`abandon`) it.  On a
        miss while a leader is in flight, blocks until the leader finishes,
        then returns the stored entry as a hit — or retries for leadership
        if the leader abandoned.
        """
        while True:
            with self._lock:
                entry = self._entries.get(signature) if self.enabled else None
                if entry is not None:
                    self.stats.hits += 1
                    return entry, False
                if not self.enabled:
                    self.stats.misses += 1
                    return None, True
                event = self._inflight.get(signature)
                if event is None:
                    self._inflight[signature] = threading.Event()
                    self.stats.misses += 1
                    return None, True
            event.wait()

    def abandon(self, signature: Tuple) -> None:
        """Give up leadership of a signature (the simulation failed).

        Waiters wake, find no entry, and re-run the election — exactly one
        of them becomes the new leader.
        """
        with self._lock:
            event = self._inflight.pop(signature, None)
        if event is not None:
            event.set()


class RemoteIterationCache:
    """Worker-process proxy of a master-hosted :class:`SharedIterationCache`.

    Duck-types the ``enabled``/``lookup``/``store``/``stats`` surface that
    :class:`~repro.core.simulator.LLMServingSim` consumes, forwarding every
    operation over a pipe to the master's :class:`IterationCacheService`.
    ``lookup`` blocks while another worker leads the same signature (the
    singleflight wait happens server-side: the reply is simply deferred
    until the leader stores), so a worker never re-simulates a signature a
    sibling is already computing.  ``store`` is fire-and-forget — the
    in-order pipe guarantees the service applies it before the worker's
    next lookup.
    """

    def __init__(self, connection) -> None:
        self._connection = connection
        self.enabled = True
        self.stats = IterationCacheStats()

    def lookup(self, signature: Tuple) -> Optional[IterationCacheEntry]:
        self._connection.send(("get", signature))
        status, entry = self._connection.recv()
        if status == "hit":
            self.stats.hits += 1
            return entry
        self.stats.misses += 1
        return None

    def store(self, signature: Tuple, entry: IterationCacheEntry) -> None:
        self._connection.send(("put", signature, entry))

    def close(self) -> None:
        self._connection.close()


class IterationCacheService:
    """Serve shared iteration caches to worker processes over pipes.

    The master process hosts one :class:`SharedIterationCache` per replica
    class; this service runs a daemon thread multiplexing the workers'
    cache pipes onto those caches:

    * ``("get", signature)`` replies ``("hit", entry)`` when the signature
      is cached, ``("lead", None)`` when the asking worker should simulate
      it, and *defers the reply* when another worker already leads it — the
      asker blocks in its ``recv`` until the leader's ``put`` fans the
      entry out to every waiter (singleflight across processes);
    * ``("put", signature, entry)`` stores the entry and releases the
      waiters; no reply is sent.

    A worker can lead at most one signature at a time (its ``store`` always
    precedes its next ``lookup``), so the wait graph is a star around the
    service and cannot deadlock.  If a leader's process dies, its pipe
    drops and the first waiter is promoted to leader, so a crash never
    strands the queue.
    """

    def __init__(self, caches: Dict[str, IterationReuseCache]) -> None:
        import multiprocessing

        self._multiprocessing = multiprocessing
        self._caches = dict(caches)
        self._connections: List = []
        #: Connection -> replica class; keyed by the connection object itself
        #: (never by id(): ids are reused after garbage collection).
        self._class_of: Dict[object, str] = {}
        #: (class_name, signature) -> list of connections awaiting the entry.
        self._waiters: Dict[Tuple[str, Tuple], List] = {}
        #: connection -> keys it currently leads (for crash promotion).
        self._leading: Dict[object, set] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    def register(self, class_name: str):
        """Create the cache pipe of one worker; returns the worker-side end."""
        if class_name not in self._caches:
            raise ValueError(f"no shared cache for replica class {class_name!r}")
        if self._thread is not None:
            raise RuntimeError("register() must precede start()")
        parent, child = self._multiprocessing.Pipe()
        self._connections.append(parent)
        self._class_of[parent] = class_name
        return child

    def start(self) -> None:
        if self._thread is not None or not self._connections:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._serve, daemon=True,
                                        name="iteration-cache-service")
        self._thread.start()

    def close(self) -> None:
        """Stop serving and drop the pipes; must be idempotent."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        for connection in self._connections:
            connection.close()
        self._connections = []
        self._waiters.clear()
        self._leading.clear()

    # -- the serving loop ------------------------------------------------------

    def _serve(self) -> None:
        live = list(self._connections)
        while live and not self._stop.is_set():
            try:
                ready = _wait_for_connections(live, timeout=0.05)
            except OSError:  # pragma: no cover - close() raced the wait
                return
            for connection in ready:
                try:
                    message = connection.recv()
                except (EOFError, OSError):
                    live.remove(connection)
                    self._handle_disconnect(connection)
                    continue
                try:
                    self._handle(connection, message)
                except Exception:  # pragma: no cover - defensive: keep serving
                    traceback.print_exc()

    def _handle(self, connection, message) -> None:
        kind, signature = message[0], message[1]
        class_name = self._class_of[connection]
        cache = self._caches[class_name]
        key = (class_name, signature)
        if kind == "get":
            entry = cache.peek(signature)
            if entry is not None:
                cache.stats.hits += 1
                connection.send(("hit", entry))
            elif not cache.enabled:
                cache.stats.misses += 1
                connection.send(("lead", None))
            elif key in self._waiters:
                self._waiters[key].append(connection)  # reply deferred to the put
            else:
                self._waiters[key] = []
                self._leading.setdefault(connection, set()).add(key)
                cache.stats.misses += 1
                connection.send(("lead", None))
        elif kind == "put":
            entry = message[2]
            cache.store(signature, entry)
            self._leading.get(connection, set()).discard(key)
            for waiter in self._waiters.pop(key, []):
                cache.stats.hits += 1
                waiter.send(("hit", entry))
        else:
            raise ValueError(f"unknown cache-service command {kind!r}")

    def _handle_disconnect(self, connection) -> None:
        """Promote a waiter for every signature the dead worker led."""
        for key in self._leading.pop(connection, set()):
            waiters = self._waiters.get(key)
            if waiters:
                promoted = waiters.pop(0)
                self._leading.setdefault(promoted, set()).add(key)
                promoted.send(("lead", None))
            else:
                self._waiters.pop(key, None)
        for waiters in self._waiters.values():
            while connection in waiters:
                waiters.remove(connection)


# -- on-disk persistence ---------------------------------------------------------

_CACHE_SCHEMA = "iteration-cache/v1"


def iteration_cache_file(cache_dir: Union[str, Path], config) -> Path:
    """Cache file for one serving configuration inside ``cache_dir``.

    Entries are only valid for the exact configuration that produced them,
    so the file name carries a digest of the configuration's repr — two
    replica classes (or two sweep points) never collide.
    """
    digest = hashlib.sha256(repr(config).encode()).hexdigest()[:16]
    return Path(cache_dir) / f"iteration-cache-{digest}.pkl"


def save_iteration_cache(cache: IterationReuseCache, path: Union[str, Path],
                         config) -> Path:
    """Persist a cache's entries atomically (write-then-rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"schema": _CACHE_SCHEMA, "config": repr(config),
               "entries": dict(cache._entries)}
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)
    return path


def load_iteration_cache(cache: IterationReuseCache, path: Union[str, Path],
                         config) -> int:
    """Warm-start a cache from disk; returns the number of entries loaded.

    A missing, corrupt, or configuration-mismatched file loads nothing — a
    stale cache directory must never poison a run, so every failure mode
    degrades to a cold start.
    """
    path = Path(path)
    if not path.is_file():
        return 0
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        if (payload.get("schema") != _CACHE_SCHEMA
                or payload.get("config") != repr(config)):
            return 0
        entries = payload["entries"]
    except Exception:
        return 0
    loaded = 0
    for signature, entry in entries.items():
        if cache.peek(signature) is None:
            cache.store(signature, entry)
            loaded += 1
    return loaded
