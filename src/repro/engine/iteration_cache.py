"""Iteration-level memoization: reuse whole-iteration simulation results.

The operator-level :class:`~repro.engine.cache.SimulationCache` reuses the
hardware estimate of *one operator*; this module lifts the paper's
computation-reuse idea one level up the hierarchy.  Serving workloads are
highly repetitive at iteration granularity: in steady-state decode the same
batch geometry (phases, context lengths, memory traffic) recurs across
requests, across batch waves and — in a cluster — across same-class
replicas.  When an iteration's *signature* has been simulated before, the
entire pipeline behind the scheduler (iteration-graph build, engine stack,
graph converter, system simulation) can be skipped and the memoized latency
replayed.

The signature deliberately excludes request identifiers: two iterations with
the same per-sequence ``(phase, context_length, new_tokens)`` composition,
the same KV-migration traffic and the same sub-batch partitioning produce
bit-identical execution graphs and therefore bit-identical latencies, no
matter which requests they serve.  That makes a hit *exact*, not
approximate — memoization on/off changes simulation wall-clock, never the
simulated serving behaviour.

One cache serves one hardware/software configuration: latencies depend on
the full :class:`~repro.core.config.ServingSimConfig`, so a cache may only
be shared between simulators built from the same configuration (the cluster
layer shares one cache per :class:`~repro.core.config.ReplicaSpec` class).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..models.graph import BatchComposition
from ..scheduler.kv_cache import KVMemoryEvent
from .stack import EngineStackReport

__all__ = ["IterationCacheStats", "IterationCacheEntry", "IterationReuseCache",
           "iteration_signature"]


def iteration_signature(batch: BatchComposition,
                        memory_events: Sequence[KVMemoryEvent] = (),
                        num_sub_batches: int = 1) -> Tuple:
    """Hashable signature of one iteration's simulation input.

    Captures everything the engine stack, graph converter and system
    simulator see (for a fixed serving configuration):

    * the batch composition — per-sequence ``(phase, context_length,
      new_tokens)`` in batch order, *without* request ids;
    * the KV migration traffic — per-event ``(kind, bytes)`` in order,
      again without request ids (the converter sizes memory operators by
      payload, not by owner);
    * the sub-batch partitioning degree (the partition itself is a
      deterministic function of the batch and this count).
    """
    return (
        tuple((s.phase.value, s.context_length, s.new_tokens)
              for s in batch.sequences),
        tuple((e.event_type.value, e.num_bytes) for e in memory_events),
        num_sub_batches,
    )


@dataclass
class IterationCacheStats:
    """Hit/miss counters of the iteration-level cache."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


@dataclass(frozen=True)
class IterationCacheEntry:
    """Memoized outcome of simulating one iteration signature.

    ``latency`` is the system simulator's makespan (independent of the
    scheduler clock the iteration started at); ``engine_report`` is the
    engine stack's work accounting from the original simulation, kept so a
    hit can still expose what the simulated iteration looked like.
    """

    latency: float
    engine_report: EngineStackReport


class IterationReuseCache:
    """Memoizes whole-iteration latencies per iteration signature.

    Parameters
    ----------
    enabled:
        When False every lookup misses and nothing is stored.  Simulators
        with reuse disabled simply carry no cache at all; the flag exists
        for externally-injected caches (e.g. flipping one shared cache off
        mid-experiment without rebuilding the fleet).
    max_entries:
        Optional bound on cached signatures; the oldest entry is evicted
        once full (insertion-ordered dict, like the operator-level cache).
    """

    def __init__(self, enabled: bool = True, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive when given")
        self.enabled = enabled
        self.max_entries = max_entries
        self._entries: Dict[Tuple, IterationCacheEntry] = {}
        self.stats = IterationCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, signature: Tuple) -> Optional[IterationCacheEntry]:
        """Return the memoized entry or ``None``, updating hit/miss counters."""
        if not self.enabled:
            self.stats.misses += 1
            return None
        entry = self._entries.get(signature)
        if entry is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return entry

    def store(self, signature: Tuple, entry: IterationCacheEntry) -> None:
        """Insert an entry, evicting the oldest signature if the cache is full."""
        if not self.enabled:
            return
        if self.max_entries is not None and len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[signature] = entry

    def clear(self) -> None:
        """Drop all entries and reset statistics."""
        self._entries.clear()
        self.stats = IterationCacheStats()
