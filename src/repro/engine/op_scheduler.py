"""Greedy operator scheduling across heterogeneous execution engines.

After operator mapping, each execution engine has simulated its share of the
iteration's operators and produced trace entries.  The operator scheduler
(Line 14 of Algorithm 1 in the paper) decides the execution order of
operators from multiple sub-batches so that independent sub-batches overlap
across heterogeneous accelerators — e.g. while the PIM devices run one
sub-batch's attention, the NPUs run another sub-batch's FFN.

The heuristic is a greedy list scheduler: at every step it starts the next
runnable operator (the head of some sub-batch's operator list) on the engine
that becomes free the earliest, preferring the operator that can start
soonest.  The result is a merged :class:`~repro.engine.trace.Trace` plus the
overlapped makespan estimate used for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..system.topology import DeviceType
from .trace import Trace, TraceEntry

__all__ = ["ScheduledOperator", "OperatorSchedule", "GreedyOperatorScheduler"]


@dataclass(frozen=True)
class ScheduledOperator:
    """One trace entry with its assigned start/end time on its engine class."""

    entry: TraceEntry
    start: float
    end: float


@dataclass
class OperatorSchedule:
    """Result of operator scheduling for one iteration."""

    scheduled: List[ScheduledOperator] = field(default_factory=list)
    makespan: float = 0.0
    engine_busy_time: Dict[DeviceType, float] = field(default_factory=dict)

    @property
    def trace(self) -> Trace:
        """The merged trace in scheduled execution order."""
        merged = Trace()
        merged.extend(s.entry for s in self.scheduled)
        return merged

    def overlap_efficiency(self) -> float:
        """Busy-time / makespan ratio of the busiest engine pair.

        1.0 means perfect overlap of the two engine classes; values close to
        the serial sum / makespan ratio indicate little overlap.
        """
        if self.makespan <= 0:
            return 0.0
        total_busy = sum(self.engine_busy_time.values())
        return total_busy / self.makespan


class GreedyOperatorScheduler:
    """Greedy list scheduler over per-sub-batch operator traces.

    Operators inside a sub-batch are dependent (they follow the model's layer
    order) and therefore run serially; operators of different sub-batches are
    independent and may overlap whenever they target different engine
    classes.
    """

    def schedule(self, sub_batch_traces: Sequence[Sequence[TraceEntry]]) -> OperatorSchedule:
        """Schedule the entries of every sub-batch.

        Parameters
        ----------
        sub_batch_traces:
            One ordered list of trace entries per sub-batch.

        Returns
        -------
        OperatorSchedule
            The merged schedule with per-engine busy times and the makespan.
        """
        schedule = OperatorSchedule()
        if not sub_batch_traces:
            return schedule

        # Cursor into each sub-batch's entry list and the time the sub-batch's
        # previous operator finishes (dependency within the sub-batch).
        cursors = [0] * len(sub_batch_traces)
        sub_batch_ready = [0.0] * len(sub_batch_traces)
        engine_free: Dict[DeviceType, float] = {}

        remaining = sum(len(entries) for entries in sub_batch_traces)
        while remaining > 0:
            # Choose the runnable operator that can start the earliest;
            # tie-break on sub-batch index for determinism.
            best: Tuple[float, int] = (float("inf"), -1)
            for index, entries in enumerate(sub_batch_traces):
                cursor = cursors[index]
                if cursor >= len(entries):
                    continue
                entry = entries[cursor]
                start = max(sub_batch_ready[index], engine_free.get(entry.engine, 0.0))
                if (start, index) < best:
                    best = (start, index)
            start, index = best
            entry = sub_batch_traces[index][cursors[index]]
            end = start + entry.latency

            cursors[index] += 1
            remaining -= 1
            sub_batch_ready[index] = end
            engine_free[entry.engine] = end
            schedule.engine_busy_time[entry.engine] = (
                schedule.engine_busy_time.get(entry.engine, 0.0) + entry.latency)
            schedule.scheduled.append(ScheduledOperator(entry=entry, start=start, end=end))
            schedule.makespan = max(schedule.makespan, end)

        return schedule
