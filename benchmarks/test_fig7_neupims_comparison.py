"""Figure 7 — NPU+PIM heterogeneous throughput versus NeuPIMs.

The paper serves 256 Alpaca requests on an NPU+PIM system under six
model/parallelism configurations and compares LLMServingSim's throughput
with the NeuPIMs simulator: LLMServingSim is consistently somewhat lower
(it models inter-device links and synchronization that NeuPIMs omits) with
per-configuration error below 20% and a geometric-mean error of 8.88%.

The workload is scaled to 64 requests with a batch cap so the bench runs in
minutes; the comparison structure (who is higher, by how much) is preserved.
"""

import pytest
from conftest import run_once

from repro import LLMServingSim, ParallelismStrategy, ServingSimConfig
from repro.analysis import geometric_mean_error, print_table, relative_error
from repro.baselines import NeuPIMsConfig, NeuPIMsReference
from repro.graph import GraphGranularity
from repro.workload import BurstArrivalGenerator

#: (model, tensor parallel, pipeline parallel) — a subset of Figure 7's x-axis.
CONFIGS = [
    ("gpt3-7b", 4, 1),
    ("gpt3-7b", 2, 2),
    ("gpt3-13b", 4, 2),
    ("gpt3-30b", 8, 1),
]

NUM_REQUESTS = 64
MAX_BATCH = 32

_ERRORS = []


def run_config(model_name: str, tp: int, pp: int):
    requests = BurstArrivalGenerator("alpaca", seed=5).generate(NUM_REQUESTS).requests
    # Sub-batch interleaving is left off here: at this scaled-down batch size
    # (32 versus the paper's 256+) the batched GEMMs are weight-bound, so
    # splitting them would re-read the weights per sub-batch and distort the
    # comparison; the NeuPIMs reference model represents the large-batch
    # operating point where that cost is amortized.
    config = ServingSimConfig(
        model_name=model_name,
        npu_num=tp * pp,
        npu_group=pp,
        parallel=ParallelismStrategy.HYBRID,
        pim_type="local",
        sub_batch=False,
        max_batch=MAX_BATCH,
        graph_granularity=GraphGranularity.BLOCK,
    )
    sim_result = LLMServingSim(config).run(requests)
    sim_tput = sim_result.total_throughput

    neupims = NeuPIMsReference(NeuPIMsConfig(model_name=model_name,
                                             tensor_parallel=tp, pipeline_parallel=pp))
    ref_requests = BurstArrivalGenerator("alpaca", seed=5).generate(NUM_REQUESTS).requests
    ref_tput = neupims.throughput(ref_requests, max_batch_size=MAX_BATCH)
    return sim_tput, ref_tput


@pytest.mark.parametrize("model_name,tp,pp", CONFIGS)
def test_fig7_neupims_throughput(benchmark, model_name, tp, pp):
    sim_tput, ref_tput = run_once(benchmark, run_config, model_name, tp, pp)
    error = relative_error(sim_tput, ref_tput)
    _ERRORS.append(error)

    print_table(f"Figure 7: {model_name} TP{tp} PP{pp} (paper: error < 20%, geomean 8.88%)",
                ["system", "throughput (tok/s)"],
                [["LLMServingSim (NPU+PIM)", f"{sim_tput:.1f}"],
                 ["NeuPIMs reference", f"{ref_tput:.1f}"],
                 ["relative error", f"{error * 100:.1f}%"]])

    # NeuPIMs (no link/synchronization modelling) should not be slower than
    # the full system simulation, and the two should stay within 40% at this
    # scaled-down batch size (the paper reports <20% at batch sizes of 256+).
    assert ref_tput >= sim_tput * 0.95
    assert error < 0.40


def test_fig7_geometric_mean_error(benchmark):
    def geomean():
        return geometric_mean_error(_ERRORS) if _ERRORS else 0.0

    value = run_once(benchmark, geomean)
    print_table("Figure 7: geometric mean error across configurations",
                ["metric", "value"],
                [["geomean error", f"{value * 100:.2f}%"], ["paper geomean", "8.88%"]])
    if _ERRORS:
        assert value < 0.35
