"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(see DESIGN.md for the per-experiment index).  The experiments are scaled
down from the paper's exact workload sizes so the whole suite runs on a
laptop in minutes — EXPERIMENTS.md records both the paper's parameters and
the ones used here.
"""

from __future__ import annotations

import pytest

from repro.models import BatchComposition, Phase, SequenceSpec


def make_uniform_batch(batch_size: int, seq_len: int, phase: Phase = Phase.INITIATION) -> BatchComposition:
    """A batch of ``batch_size`` identical sequences (the Figures 8-10 input)."""
    if phase is Phase.INITIATION:
        seqs = [SequenceSpec(i, 0, seq_len, phase) for i in range(batch_size)]
    else:
        seqs = [SequenceSpec(i, seq_len, 1, phase) for i in range(batch_size)]
    return BatchComposition(seqs)


@pytest.fixture
def uniform_batch_factory():
    return make_uniform_batch


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark.

    The experiments here are deterministic end-to-end simulations, so there
    is no value in repeating them for statistical timing; a single round
    keeps the suite fast while still recording wall-clock time.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
