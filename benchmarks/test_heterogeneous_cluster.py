"""Heterogeneous fleet routing — capability-aware policies vs. blind ones.

The ROADMAP's heterogeneous-cluster scenario: a fleet mixing small (1 NPU)
and large (4 NPU) GPT3-7B replicas serves the same bursty trace under every
routing policy.  Blind round-robin deals requests 50/50 and queues them on
the small replicas, while the capability-aware policies
(``weighted-capacity`` proportional to the roofline estimate, ``slo-ttft``
on predicted TTFT) shift load towards the large replicas — visible in the
per-replica split and in the tail TTFT percentiles the policies are judged
by.  GPT3-7B is used (rather than GPT2) because its compute-dominated
iterations actually scale with ``npu_num``, so the roofline capability
signal reflects real service-rate differences.
"""

from conftest import run_once

from repro import ClusterConfig, ClusterSimulator, ReplicaSpec, ServingSimConfig, generate_trace
from repro.analysis import print_table
from repro.cluster import available_routers

NUM_REQUESTS = 48
RATE = 24.0  # well above the small replicas' service rate


def fleet():
    small = ServingSimConfig(model_name="gpt3-7b", npu_num=1, max_batch=4,
                             graph_granularity="block")
    large = ServingSimConfig(model_name="gpt3-7b", npu_num=4, max_batch=4,
                             graph_granularity="block")
    return [ReplicaSpec(config=small, count=2, name="small"),
            ReplicaSpec(config=large, count=2, name="large")]


def bursty_trace():
    return generate_trace("alpaca", NUM_REQUESTS, arrival="poisson-burst",
                          rate_per_second=RATE, burst_size_mean=6.0, seed=23)


def sweep():
    metrics = {}
    for routing in available_routers():
        config = ClusterConfig(routing=routing, replicas=fleet())
        result = ClusterSimulator(config).run(bursty_trace())
        assert len(result.finished_requests) == NUM_REQUESTS
        slos = result.slo_metrics()
        metrics[routing] = {
            "split": result.requests_per_replica(),
            "throughput": result.generation_throughput,
            "ttft_p95": slos["ttft"].p95,
            "e2e_p99": slos["e2e"].p99,
        }
    return metrics


def test_capability_aware_routing_beats_round_robin(benchmark):
    metrics = run_once(benchmark, sweep)

    rows = [[routing,
             "/".join(str(c) for c in m["split"]),
             f"{m['throughput']:.1f}",
             f"{m['ttft_p95']:.3f}",
             f"{m['e2e_p99']:.3f}"]
            for routing, m in metrics.items()]
    print_table(
        f"Heterogeneous 2x small + 2x large GPT3-7B fleet, {NUM_REQUESTS} bursty requests",
        ["routing", "req/replica", "gen tok/s", "TTFT p95 (s)", "E2E p99 (s)"],
        rows,
    )

    # Capability-aware policies must beat blind alternation on tail latency:
    # round-robin queues half the burst on the small replicas.
    assert (metrics["weighted-capacity"]["ttft_p95"]
            < metrics["round-robin"]["ttft_p95"])
    assert metrics["slo-ttft"]["ttft_p95"] < metrics["round-robin"]["ttft_p95"]
    # And the split must actually lean towards the large replicas.
    wc_split = metrics["weighted-capacity"]["split"]
    assert sum(wc_split[2:]) > sum(wc_split[:2])
