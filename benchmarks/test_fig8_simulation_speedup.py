"""Figure 8 — one-iteration simulation time: baselines versus LLMServingSim.

The paper measures the time to simulate one iteration (batch 32, sequence
length 512) of GPT3-7B/13B/30B with mNPUsim, GeneSys, NeuPIMs and
LLMServingSim, reporting average speedups of 491x, 34.7x and 45x
respectively.  Here the baselines come from the calibrated cost models and
LLMServingSim's time is its modeled per-component simulation time for the
same iteration (block-replication reuse on, no warm cache — the paper's
setting for this figure).
"""

import pytest
from conftest import make_uniform_batch, run_once

from repro import LLMServingSim, ServingSimConfig
from repro.analysis import print_table
from repro.baselines import baseline_simulators
from repro.models import Phase, get_model

MODELS = ["gpt3-7b", "gpt3-13b", "gpt3-30b"]
BATCH, SEQ = 32, 512

_RESULTS = {}


def measure(model_name: str):
    batch = make_uniform_batch(BATCH, SEQ, Phase.INITIATION)
    sim = LLMServingSim(ServingSimConfig(model_name=model_name, npu_num=16,
                                         enable_computation_reuse=False))
    sim.simulate_single_batch(batch)
    own_time = sim.simtime.modeled.total

    model = get_model(model_name)
    baseline_times = {b.name: b.iteration_time(model, BATCH, SEQ) for b in baseline_simulators()}
    return own_time, baseline_times


@pytest.mark.parametrize("model_name", MODELS)
def test_fig8_simulation_time(benchmark, model_name):
    own_time, baseline_times = run_once(benchmark, measure, model_name)
    _RESULTS[model_name] = (own_time, baseline_times)

    rows = [["LLMServingSim", f"{own_time / 60:.2f}"]]
    rows += [[name, f"{seconds / 60:.1f}"] for name, seconds in baseline_times.items()]
    print_table(f"Figure 8: one-iteration simulation time (minutes), {model_name}",
                ["simulator", "minutes"], rows)

    # LLMServingSim is the fastest by a wide margin for every model.
    assert all(own_time < seconds / 10 for seconds in baseline_times.values())


def test_fig8_average_speedups(benchmark):
    def compute():
        speedups = {"mNPUsim": [], "GeneSys": [], "NeuPIMs": []}
        for own_time, baseline_times in _RESULTS.values():
            for name, seconds in baseline_times.items():
                speedups[name].append(seconds / own_time)
        return {name: sum(v) / len(v) for name, v in speedups.items() if v}

    speedups = run_once(benchmark, compute)
    paper = {"mNPUsim": 490.98, "GeneSys": 34.71, "NeuPIMs": 44.97}
    rows = [[name, f"{speedups.get(name, 0.0):.1f}x", f"{paper[name]:.1f}x"] for name in paper]
    print_table("Figure 8: average simulation speedup of LLMServingSim",
                ["baseline", "this repo", "paper"], rows)

    if speedups:
        # Shape: mNPUsim yields the largest speedup; every baseline is at
        # least an order of magnitude slower than LLMServingSim.
        assert speedups["mNPUsim"] > speedups["NeuPIMs"] > speedups["GeneSys"] > 10
