"""Figure 6 — throughput-over-time validation against the vLLM/GPU reference.

The paper serves Poisson-arriving ShareGPT requests with GPT-3 and LLaMA
models (7B and 30B) on a real 4x RTX 3090 vLLM deployment and shows that
LLMServingSim's prompt and generation throughput trends track it with an
average error under 14.7%.  Here the real deployment is replaced by the
independent ``VLLMReferenceSystem`` emulator (see DESIGN.md); workload sizes
are scaled down so the bench runs in minutes.
"""

import pytest
from conftest import run_once

from repro import LLMServingSim, ServingSimConfig
from repro.analysis import print_table, series_error
from repro.baselines import VLLMReferenceConfig, VLLMReferenceSystem
from repro.workload import generate_trace

#: (model, tensor-parallel devices, number of requests, arrival rate req/s)
CONFIGS = [
    ("gpt3-7b", 1, 32, 1.0),
    ("llama-7b", 1, 32, 1.0),
    ("gpt3-30b", 4, 16, 0.4),
    ("llama-30b", 4, 16, 0.4),
]

BIN_SECONDS = 10.0


def run_pair(model_name: str, devices: int, num_requests: int, rate: float):
    sim_trace = generate_trace("sharegpt", num_requests, rate_per_second=rate, seed=21)
    ref_trace = generate_trace("sharegpt", num_requests, rate_per_second=rate, seed=21)

    sim = LLMServingSim(ServingSimConfig(model_name=model_name, npu_num=devices))
    sim_result = sim.run(sim_trace)
    ref = VLLMReferenceSystem(VLLMReferenceConfig(model_name=model_name, num_gpus=devices))
    ref_result = ref.run(ref_trace)

    sim_series = sim_result.throughput_series(BIN_SECONDS)
    ref_series = ref_result.throughput_series(BIN_SECONDS)
    prompt_error = series_error([(p.time, p.prompt_throughput) for p in sim_series],
                                [(p.time, p.prompt_throughput) for p in ref_series])
    gen_error = series_error([(p.time, p.generation_throughput) for p in sim_series],
                             [(p.time, p.generation_throughput) for p in ref_series])
    return {
        "sim": sim_result, "ref": ref_result,
        "prompt_error": prompt_error, "gen_error": gen_error,
    }


@pytest.mark.parametrize("model_name,devices,num_requests,rate", CONFIGS)
def test_fig6_throughput_validation(benchmark, model_name, devices, num_requests, rate):
    outcome = run_once(benchmark, run_pair, model_name, devices, num_requests, rate)
    sim_result, ref_result = outcome["sim"], outcome["ref"]

    rows = [
        ["prompt tput (tok/s)", f"{sim_result.prompt_throughput:.1f}",
         f"{ref_result.prompt_throughput:.1f}"],
        ["generation tput (tok/s)", f"{sim_result.generation_throughput:.1f}",
         f"{ref_result.generation_throughput:.1f}"],
        ["makespan (s)", f"{sim_result.makespan:.1f}", f"{ref_result.makespan:.1f}"],
        ["prompt series error", f"{outcome['prompt_error'] * 100:.1f}%", "-"],
        ["generation series error", f"{outcome['gen_error'] * 100:.1f}%", "-"],
    ]
    print_table(f"Figure 6: {model_name} on {devices} device(s) "
                "(paper: <=14.7% average error)",
                ["metric", "LLMServingSim", "vLLM reference"], rows)

    # All requests complete under both systems.
    assert len(sim_result.finished_requests) == num_requests
    assert len(ref_result.finished_requests) == num_requests
    # The trend target: aggregate throughputs within ~30% and time series
    # within ~35% (the paper's per-model errors reach ~15-20% under load).
    assert outcome["prompt_error"] < 0.35
    assert outcome["gen_error"] < 0.35
    assert abs(sim_result.generation_throughput - ref_result.generation_throughput) \
        / ref_result.generation_throughput < 0.30
