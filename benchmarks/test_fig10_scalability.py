"""Figure 10 — simulation time while sweeping the number of NPUs.

The paper sweeps tensor-parallel NPU counts from 8 to 2048 for GPT3-7B, 30B
and 175B (batch 64, sequence length 1024, no warm computation-reuse cache)
and shows simulation time growing roughly in proportion to the NPU count,
dominated by the graph converter and ASTRA-sim at large scale, while even
GPT3-175B on 2048 NPUs stays far below the baseline simulators.

The sweep here stops at 256 NPUs (block-granularity execution graphs) so the
bench completes in minutes; the growth trend and the model-size ordering are
what the assertions check.
"""

import pytest
from conftest import make_uniform_batch, run_once

from repro import LLMServingSim, ParallelismStrategy, ServingSimConfig
from repro.analysis import print_table
from repro.graph import GraphGranularity
from repro.models import Phase

MODELS = ["gpt3-7b", "gpt3-30b", "gpt3-175b"]
NPU_COUNTS = [8, 16, 32, 64, 128, 256]
BATCH, SEQ = 64, 1024

_RESULTS = {}


def sweep(model_name: str):
    times = {}
    batch = make_uniform_batch(BATCH, SEQ, Phase.GENERATION)
    for npus in NPU_COUNTS:
        config = ServingSimConfig(
            model_name=model_name, npu_num=npus, npu_group=1,
            parallel=ParallelismStrategy.TENSOR,
            npu_mem_gb=256.0,  # capacity is not the subject of this experiment
            enable_computation_reuse=False,
            graph_granularity=GraphGranularity.BLOCK)
        sim = LLMServingSim(config)
        sim.simulate_single_batch(batch)
        times[npus] = sim.simtime.modeled.total
    return times


@pytest.mark.parametrize("model_name", MODELS)
def test_fig10_npu_sweep(benchmark, model_name):
    times = run_once(benchmark, sweep, model_name)
    _RESULTS[model_name] = times

    rows = [[npus, f"{times[npus] / 60:.2f}"] for npus in NPU_COUNTS]
    print_table(f"Figure 10: modeled simulation time vs NPUs, {model_name} "
                "(tensor parallelism, no computation reuse)",
                ["NPUs", "minutes"], rows)

    # Simulation time grows with the number of NPUs (system-level
    # coordination dominates at scale).
    assert times[NPU_COUNTS[-1]] > times[NPU_COUNTS[0]]
    assert times[NPU_COUNTS[-1]] > 1.5 * times[NPU_COUNTS[len(NPU_COUNTS) // 2]]


def test_fig10_model_size_ordering(benchmark):
    def collect():
        return dict(_RESULTS)

    results = run_once(benchmark, collect)
    if len(results) == len(MODELS):
        largest = NPU_COUNTS[-1]
        rows = [[m, f"{results[m][largest] / 60:.2f}"] for m in MODELS]
        print_table(f"Figure 10: modeled simulation time at {largest} NPUs",
                    ["model", "minutes"], rows)
        # Larger models take longer to simulate at the same NPU count.
        assert results["gpt3-175b"][largest] > results["gpt3-30b"][largest] > results["gpt3-7b"][largest]
