"""Figure 9 — simulation-time breakdown with and without computation reuse.

GPT3-30B, batch 64, sequence length 1024, 64 NPUs, five parallelism
configurations from pure tensor parallelism (TP64) to pure pipeline
parallelism (PP64).  The paper reports 198-215.7 s without reuse and
16.3-33.6 s with reuse (a 6.4-12.2x reduction), with the ASTRA-sim component
largest under pure tensor parallelism and smallest under pure pipeline
parallelism.
"""

import pytest
from conftest import make_uniform_batch, run_once

from repro import LLMServingSim, ParallelismStrategy, ServingSimConfig
from repro.analysis import print_table
from repro.models import Phase

#: (label, strategy, npu_group) for a 64-NPU system.
CONFIGS = [
    ("TP64 PP1", ParallelismStrategy.TENSOR, 1),
    ("TP16 PP4", ParallelismStrategy.HYBRID, 4),
    ("TP8 PP8", ParallelismStrategy.HYBRID, 8),
    ("TP4 PP16", ParallelismStrategy.HYBRID, 16),
    ("TP1 PP64", ParallelismStrategy.PIPELINE, 64),
]

MODEL = "gpt3-30b"
BATCH, SEQ = 64, 1024

_TOTALS = {}


def run_config(strategy: ParallelismStrategy, groups: int, reuse: bool):
    batch = make_uniform_batch(BATCH, SEQ, Phase.GENERATION)
    config = ServingSimConfig(
        model_name=MODEL, npu_num=64, npu_group=groups, parallel=strategy,
        npu_mem_gb=64.0,
        enable_block_reuse=reuse, enable_computation_reuse=reuse)
    sim = LLMServingSim(config)
    sim.simulate_single_batch(batch)
    return sim.simtime.modeled


@pytest.mark.parametrize("label,strategy,groups", CONFIGS)
def test_fig9_breakdown(benchmark, label, strategy, groups):
    def both():
        return (run_config(strategy, groups, reuse=False),
                run_config(strategy, groups, reuse=True))

    without_reuse, with_reuse = run_once(benchmark, both)
    _TOTALS[label] = (without_reuse.total, with_reuse.total)

    rows = []
    for component, value in without_reuse.as_dict().items():
        rows.append([component, f"{value:.1f}", f"{with_reuse.as_dict()[component]:.1f}"])
    rows.append(["total", f"{without_reuse.total:.1f}", f"{with_reuse.total:.1f}"])
    print_table(f"Figure 9: modeled simulation time breakdown (s), {MODEL} {label} "
                "(paper: 198-215.7 s without reuse, 16.3-33.6 s with reuse)",
                ["component", "w/o reuse", "w/ reuse"], rows)

    speedup = without_reuse.total / with_reuse.total
    # Computation reuse gives a large reduction (the paper reports 6.4-12.2x).
    assert 4.0 < speedup < 20.0
    # Without reuse the engine stack (compile + simulate) dominates.
    assert without_reuse.engine > without_reuse.system_sim


def test_fig9_parallelism_trend(benchmark):
    def totals():
        return dict(_TOTALS)

    values = run_once(benchmark, totals)
    if len(values) == len(CONFIGS):
        rows = [[label, f"{wo:.1f}", f"{w:.1f}", f"{wo / w:.1f}x"]
                for label, (wo, w) in values.items()]
        print_table("Figure 9: totals across parallelism strategies",
                    ["config", "w/o reuse (s)", "w/ reuse (s)", "speedup"], rows)
        # Pure tensor parallelism is the slowest to simulate (most collective
        # synchronization); pure pipeline parallelism the fastest.
        assert values["TP64 PP1"][1] > values["TP1 PP64"][1]
