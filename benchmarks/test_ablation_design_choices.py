"""Ablation benches for the design choices DESIGN.md calls out.

Three ablations, each exercising one of the serving-system techniques the
paper builds on:

* Orca iteration-level scheduling versus conventional static batching;
* vLLM paged KV-cache management versus maximum-length pre-allocation;
* the computation-reuse cache's effect on engine-stack work.
"""

from conftest import make_uniform_batch, run_once

from repro import LLMServingSim, ServingSimConfig
from repro.analysis import print_table
from repro.models import Phase
from repro.workload import PoissonArrivalGenerator


def _workload(seed: int = 13, count: int = 32):
    return PoissonArrivalGenerator("sharegpt", rate_per_second=2.0, seed=seed).generate(count).requests


def test_ablation_iteration_level_scheduling(benchmark):
    def run():
        results = {}
        for policy in ("orca", "static"):
            config = ServingSimConfig(model_name="gpt3-7b", npu_num=4, scheduling=policy,
                                      max_batch=16)
            results[policy] = LLMServingSim(config).run(_workload())
        return results

    results = run_once(benchmark, run)
    rows = [[policy, f"{r.generation_throughput:.1f}", f"{r.mean_end_to_end_latency():.2f}",
             f"{r.mean_time_to_first_token():.2f}"]
            for policy, r in results.items()]
    print_table("Ablation: Orca iteration-level vs static batch-level scheduling "
                "(GPT3-7B, 4 NPUs, Poisson arrivals)",
                ["scheduling", "gen tok/s", "mean E2E (s)", "mean TTFT (s)"], rows)

    # Iteration-level scheduling admits requests as they arrive instead of
    # waiting for the whole batch to drain, improving time-to-first-token.
    assert results["orca"].mean_time_to_first_token() <= \
        results["static"].mean_time_to_first_token() * 1.05
    assert results["orca"].generation_throughput >= \
        results["static"].generation_throughput * 0.9


def test_ablation_kv_cache_paging(benchmark):
    def run():
        results = {}
        for scheme in ("vllm", "max"):
            config = ServingSimConfig(model_name="gpt3-7b", npu_num=1, kv_manage=scheme)
            results[scheme] = LLMServingSim(config).run(_workload(seed=29, count=48))
        return results

    results = run_once(benchmark, run)
    max_batches = {scheme: max(r.num_requests for r in result.iterations)
                   for scheme, result in results.items()}
    rows = [[scheme, f"{results[scheme].generation_throughput:.1f}", max_batches[scheme]]
            for scheme in results]
    print_table("Ablation: vLLM paged KV cache vs max-length pre-allocation "
                "(GPT3-7B, 1 NPU, 48 requests)",
                ["kv_manage", "gen tok/s", "max batch reached"], rows)

    # Paging packs more concurrent requests into the same memory and therefore
    # sustains at least the throughput of max-allocation.
    assert max_batches["vllm"] >= max_batches["max"]
    assert results["vllm"].generation_throughput >= results["max"].generation_throughput * 0.95


def test_ablation_computation_reuse_work(benchmark):
    def run():
        work = {}
        batch = make_uniform_batch(32, 512, Phase.GENERATION)
        for reuse in (True, False):
            config = ServingSimConfig(model_name="gpt3-7b", npu_num=8,
                                      enable_block_reuse=reuse, enable_computation_reuse=reuse)
            sim = LLMServingSim(config)
            # Two identical iterations: with reuse the second is nearly free.
            sim.simulate_single_batch(batch)
            sim.simulate_single_batch(batch)
            work[reuse] = sim.simtime.modeled.engine
        return work

    work = run_once(benchmark, run)
    print_table("Ablation: engine-stack modeled time for two identical iterations",
                ["computation reuse", "engine time (s)"],
                [["enabled", f"{work[True]:.1f}"], ["disabled", f"{work[False]:.1f}"]])
    assert work[True] < work[False] / 5
