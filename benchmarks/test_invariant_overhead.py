"""Runtime invariant checker overhead guard.

``--check-invariants`` re-derives the KV byte ledger and audits the event
clock after every iteration, so it costs something — but it must stay cheap
enough to leave on in CI smoke runs.  This benchmark runs the same bursty
cluster scenario with the checker on and off and fails if the median
slowdown exceeds 5%.

Wall-clock is measured here (not simulated time): the checker changes how
long the simulator takes to run, never what it computes — which the
benchmark also asserts, by comparing the two arms' aggregate metrics.
"""

import statistics
import time

from conftest import run_once

from repro import ClusterConfig, ClusterSimulator, ServingSimConfig, generate_trace
from repro.analysis import print_table

NUM_REQUESTS = 48
RATE = 96.0
ROUNDS = 3
MAX_OVERHEAD = 0.05


def scenario_config(check_invariants: bool) -> ClusterConfig:
    return ClusterConfig(
        num_replicas=2,
        routing="least-outstanding",
        replica=ServingSimConfig(model_name="gpt2", npu_num=1, npu_mem_gb=4.0,
                                 max_batch=4),
        check_invariants=check_invariants,
    )


def bursty_trace():
    return generate_trace("alpaca", NUM_REQUESTS, arrival="poisson-burst",
                          rate_per_second=RATE, seed=23)


def run_arm(check_invariants: bool):
    """One timed run; returns (wall_seconds, result)."""
    config = scenario_config(check_invariants)
    trace = bursty_trace()
    start = time.perf_counter()
    result = ClusterSimulator(config).run(trace)
    elapsed = time.perf_counter() - start
    assert len(result.finished_requests) == NUM_REQUESTS
    return elapsed, result


def measure_overhead():
    # Warm both arms once (imports, first-call caches) before timing.
    run_arm(False)
    run_arm(True)

    # Interleave the arms so drift (CPU frequency, noisy neighbours) hits
    # both equally, then compare medians.
    off_times, on_times = [], []
    off_result = on_result = None
    for _ in range(ROUNDS):
        elapsed, off_result = run_arm(False)
        off_times.append(elapsed)
        elapsed, on_result = run_arm(True)
        on_times.append(elapsed)

    off_median = statistics.median(off_times)
    on_median = statistics.median(on_times)
    overhead = (on_median - off_median) / off_median
    return {
        "off_median": off_median,
        "on_median": on_median,
        "overhead": overhead,
        "off_result": off_result,
        "on_result": on_result,
    }


def test_invariant_checking_overhead_below_5_percent(benchmark):
    metrics = run_once(benchmark, measure_overhead)

    print_table(
        f"Invariant checker overhead ({NUM_REQUESTS} bursty requests, "
        f"2 replicas, median of {ROUNDS})",
        ["arm", "median wall s"],
        [["invariants off", f"{metrics['off_median']:.4f}"],
         ["invariants on", f"{metrics['on_median']:.4f}"],
         ["overhead", f"{metrics['overhead']:+.2%}"]])

    # The checker observes; it must never perturb the simulation itself.
    off, on = metrics["off_result"], metrics["on_result"]
    assert on.makespan == off.makespan
    assert on.generation_throughput == off.generation_throughput

    assert metrics["overhead"] < MAX_OVERHEAD, (
        f"--check-invariants costs {metrics['overhead']:.1%} "
        f"(limit {MAX_OVERHEAD:.0%}): the audit must stay cheap enough "
        f"to leave on in CI smoke runs")
