"""Table I — hardware specification of the simulated NPU, PIM and links.

Prints the specification table directly from the preset configuration
objects used throughout the evaluation, confirming they match the paper.
"""

from conftest import run_once

from repro.analysis import print_table
from repro.engine import TABLE1_NPU, TABLE1_PIM
from repro.system import PCIE_GEN4_X16


def build_spec_rows():
    npu, pim, link = TABLE1_NPU, TABLE1_PIM, PCIE_GEN4_X16
    return [
        ["NPU systolic array", f"{npu.systolic_rows}x{npu.systolic_cols}"],
        ["NPU vector unit", f"{npu.vector_lanes}x1"],
        ["NPU frequency", f"{npu.frequency_hz / 1e9:.0f} GHz"],
        ["NPU memory capacity", f"{npu.memory_capacity_bytes / 1024 ** 3:.0f} GB"],
        ["NPU internal bandwidth", f"{npu.memory_bandwidth_gbs:.0f} GB/s"],
        ["PIM banks / bankgroup", pim.banks_per_bankgroup],
        ["PIM banks / channel", pim.banks_per_channel],
        ["PIM frequency", f"{pim.frequency_hz / 1e9:.0f} GHz"],
        ["PIM memory capacity", f"{pim.memory_capacity_bytes / 1024 ** 3:.0f} GB"],
        ["PIM internal bandwidth", f"{pim.internal_bandwidth_gbs / 1000:.0f} TB/s"],
        ["Inter-device link bandwidth", f"{link.bandwidth_gbs:.0f} GB/s"],
        ["Inter-device link latency", f"{link.latency_s * 1e9:.0f} ns"],
    ]


def test_table1_hardware_specification(benchmark):
    rows = run_once(benchmark, build_spec_rows)
    print_table("Table I: LLMServingSim hardware specification", ["parameter", "value"], rows)

    values = dict((r[0], r[1]) for r in rows)
    assert values["NPU systolic array"] == "128x128"
    assert values["NPU memory capacity"] == "24 GB"
    assert values["NPU internal bandwidth"] == "936 GB/s"
    assert values["PIM banks / channel"] == 32
    assert values["PIM memory capacity"] == "32 GB"
    assert values["PIM internal bandwidth"] == "1 TB/s"
    assert values["Inter-device link bandwidth"] == "64 GB/s"
    assert values["Inter-device link latency"] == "100 ns"
