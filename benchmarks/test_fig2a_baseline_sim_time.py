"""Figure 2(a) — one-iteration simulation time of existing LLM simulators.

The paper reports roughly 10 hours for mNPUsim, 1.5 hours for GeneSys and
2 hours for NeuPIMs to simulate a single inference iteration (GPT3-7B,
batch 32, sequence length 512).  The calibrated baseline-simulator cost
models regenerate those bars.
"""

from conftest import run_once

from repro.analysis import print_table
from repro.baselines import baseline_simulators
from repro.models import get_model

PAPER_HOURS = {"mNPUsim": 10.0, "GeneSys": 1.5, "NeuPIMs": 2.0}


def measure_baseline_hours():
    model = get_model("gpt3-7b")
    return {sim.name: sim.iteration_time(model, batch_size=32, seq_len=512) / 3600.0
            for sim in baseline_simulators()}


def test_fig2a_baseline_simulation_time(benchmark):
    hours = run_once(benchmark, measure_baseline_hours)

    rows = [[name, f"{hours[name]:.2f}", f"{PAPER_HOURS[name]:.2f}"] for name in hours]
    print_table("Figure 2(a): one-iteration simulation time (hours), GPT3-7B batch 32 seq 512",
                ["simulator", "this repo (h)", "paper (h)"], rows)

    # Ordering: mNPUsim slowest, then NeuPIMs, then GeneSys.
    assert hours["mNPUsim"] > hours["NeuPIMs"] > hours["GeneSys"]
    # Each lands within 25% of the paper's reported value (they are calibrated).
    for name, paper_value in PAPER_HOURS.items():
        assert abs(hours[name] - paper_value) / paper_value < 0.25
