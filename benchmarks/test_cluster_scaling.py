"""Cluster scaling — aggregate throughput from 1 to 4 serving replicas.

The production-scale motivation for the cluster layer: a fixed bursty
request trace (the regime where a single system saturates) is served by
clusters of 1, 2 and 4 replicas behind each routing policy.  Aggregate
generation throughput must increase with the replica count — requests are
spread over independent schedulers, KV caches and engine stacks, so the
cluster drains the same trace in less simulated time.  The benchmark also
reports the p50/p95/p99 SLO percentiles that shrink alongside.
"""

import pytest
from conftest import run_once

from repro import ClusterConfig, ClusterSimulator, ServingSimConfig, generate_trace
from repro.analysis import print_table

REPLICA_COUNTS = [1, 2, 4]
NUM_REQUESTS = 64
RATE = 192.0  # well above one replica's service rate: the cluster is load-bound


def replica_config():
    # max_batch keeps one replica from absorbing the whole burst into a
    # single huge batch, which is what saturates it and makes extra
    # replicas pay off — the same reason real deployments cap batch size.
    return ServingSimConfig(model_name="gpt2", npu_num=1, npu_mem_gb=4.0, max_batch=4)


def bursty_trace():
    return generate_trace("alpaca", NUM_REQUESTS, arrival="poisson-burst",
                          rate_per_second=RATE, seed=17)


def sweep(routing: str):
    metrics = {}
    for replicas in REPLICA_COUNTS:
        config = ClusterConfig(num_replicas=replicas, routing=routing,
                               replica=replica_config())
        result = ClusterSimulator(config).run(bursty_trace())
        assert len(result.finished_requests) == NUM_REQUESTS
        slos = result.slo_metrics()
        metrics[replicas] = {
            "throughput": result.generation_throughput,
            "makespan": result.makespan,
            "e2e_p99": slos["e2e"].p99,
            "ttft_p99": slos["ttft"].p99,
        }
    return metrics


@pytest.mark.parametrize("routing", ["round-robin", "least-outstanding", "least-kv"])
def test_cluster_throughput_scales_with_replicas(benchmark, routing):
    metrics = run_once(benchmark, sweep, routing)

    rows = [[replicas,
             f"{metrics[replicas]['throughput']:.1f}",
             f"{metrics[replicas]['makespan']:.2f}",
             f"{metrics[replicas]['ttft_p99']:.3f}",
             f"{metrics[replicas]['e2e_p99']:.3f}"]
            for replicas in REPLICA_COUNTS]
    print_table(f"Cluster scaling under {routing} routing "
                f"({NUM_REQUESTS} bursty requests at {RATE:.0f} req/s)",
                ["replicas", "gen tok/s", "makespan s", "TTFT p99 s", "E2E p99 s"], rows)

    # The tentpole claim: aggregate throughput rises monotonically 1 -> 4.
    assert metrics[2]["throughput"] > metrics[1]["throughput"]
    assert metrics[4]["throughput"] > metrics[2]["throughput"]
    # And the same trace drains faster with more replicas.
    assert metrics[4]["makespan"] < metrics[1]["makespan"]
