"""Figure 2(b) — roofline analysis of LLM inference operators.

Places each operator class of a GPT3-7B transformer block on the RTX 3090
roofline for both the initiation and generation phases.  The paper's
observation: QKV generation and the FFN are compute bound (high arithmetic
intensity) while attention Score/Attend and layer normalization are memory
bound, dramatically so in the generation phase.
"""

from conftest import run_once

from repro.analysis import print_table
from repro.models import Phase, RTX3090_PEAKS, analyze_phase, get_model


def build_roofline():
    model = get_model("gpt3-7b")
    points = {}
    for phase in (Phase.INITIATION, Phase.GENERATION):
        points[phase] = analyze_phase(model, batch_size=32, seq_len=512, phase=phase)
    return points


def test_fig2b_roofline(benchmark):
    points = run_once(benchmark, build_roofline)

    rows = []
    for phase, groups in points.items():
        for name, point in sorted(groups.items()):
            rows.append([phase.value, name, f"{point.arithmetic_intensity:.2f}",
                         f"{point.attainable_tflops:.1f}",
                         "compute" if point.compute_bound else "memory"])
    print_table("Figure 2(b): roofline of GPT3-7B operators on RTX 3090 "
                f"(ridge point {RTX3090_PEAKS.ridge_point:.0f} FLOP/byte)",
                ["phase", "operator", "FLOP/byte", "attainable TFLOPS", "bound"], rows)

    init = points[Phase.INITIATION]
    gen = points[Phase.GENERATION]

    # Compute-bound operator classes in the initiation phase.
    assert init["qkv_gen"].compute_bound
    assert init["ffn"].compute_bound
    # Memory-bound operator classes in both phases.
    assert not init["layernorm"].compute_bound
    assert not gen["score"].compute_bound
    assert not gen["attend"].compute_bound
    # Generation-phase attention has far lower arithmetic intensity than
    # initiation-phase attention (GEMV vs GEMM).
    assert gen["score"].arithmetic_intensity < init["score"].arithmetic_intensity / 10
    # Batched GEMMs keep high intensity even in the generation phase, which is
    # exactly the compute/memory split motivating heterogeneous systems.
    assert gen["qkv_gen"].arithmetic_intensity > gen["attend"].arithmetic_intensity
