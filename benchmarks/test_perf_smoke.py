"""Perf-smoke benchmark: the tracked cluster-simulation speedup matrix.

Runs the ``repro bench`` scenario matrix in quick mode and checks the three
speedup levers the perf trajectory tracks:

* the ``process-pool`` execution backend must be **bit-identical** to the
  ``serial`` reference on every comparison scenario (the wall-clock win is
  additionally asserted on hosts with enough cores — a 1-core CI container
  cannot express a fan-out speedup, only its overhead);
* the event-driven cluster engine must be bit-identical to the lockstep
  reference — on every comparison scenario via the ``serial-lockstep`` arm,
  and on the dedicated ``event-driven-4`` engine study (where the wall-clock
  win is again core-count gated);
* iteration-level memoization must reach the paper-motivated reuse regime
  on the steady-state decode scenario (>= 50 % iteration-cache hit rate)
  while remaining bit-identical to the non-memoized run, and the shared
  singleflight cache must keep the process-pool hit rate at parity with
  serial.

The emitted ``BENCH_cluster.json`` is the artifact CI archives per commit.
"""

import json
import os

import pytest

from repro.bench import (BENCH_SCENARIOS, ENGINE_SPEEDUP_SCENARIO,
                         MIN_CORES_FOR_SPEEDUP_CHECK, SPEEDUP_SCENARIO,
                         check_engine_speedup, check_speedup, run_bench,
                         run_scenario, write_report)

from conftest import run_once


def scenario_by_name(name):
    return next(s for s in BENCH_SCENARIOS if s.name == name)


@pytest.fixture(scope="module")
def quick_report():
    """One quick run of the whole matrix, shared by the assertions below."""
    return run_bench(quick=True)


class TestBenchMatrix:
    def test_matrix_covers_required_scenarios(self):
        names = {s.name for s in BENCH_SCENARIOS}
        assert {"homogeneous-4", "heterogeneous-4", "autoscaled-4",
                "event-driven-4", "steady-decode-reuse"} <= names

    def test_backends_bit_identical_on_every_comparison_scenario(self, quick_report):
        compared = [e for e in quick_report["scenarios"] if "backends" in e]
        assert len(compared) >= 3
        for entry in compared:
            assert entry["bit_identical"], (
                f"{entry['name']}: process-pool diverged from serial")
            # The arm set pins the event-driven engine against lockstep on
            # every comparison scenario, not just the engine study.
            assert "serial-lockstep" in entry["backends"]
            fingerprints = {stats["fingerprint"]
                            for stats in entry["backends"].values()}
            assert len(fingerprints) == 1

    def test_all_requests_finish_under_both_backends(self, quick_report):
        for entry in quick_report["scenarios"]:
            for stats in entry.get("backends", {}).values():
                assert stats["finished_requests"] == entry["num_requests"]

    def test_steady_decode_hit_rate_meets_reuse_target(self, quick_report):
        entry = next(e for e in quick_report["scenarios"]
                     if e["name"] == "steady-decode-reuse")
        assert entry["bit_identical"], "memoization changed simulated results"
        assert entry["hit_rate"] >= 0.5, (
            f"steady-state decode hit rate {entry['hit_rate']:.1%} below 50%")
        assert entry["modeled_speedup"] > 1.5
        assert entry["reuse"]["reuse-off"]["iteration_cache_hits"] == 0

    def test_shared_cache_keeps_process_pool_hit_rate_at_serial_parity(
            self, quick_report):
        entry = next(e for e in quick_report["scenarios"]
                     if e["name"] == "steady-decode-reuse")
        serial = entry["hit_rate"]
        pooled = entry["hit_rate_process_pool"]
        # Singleflight guarantees one miss per unique signature cluster-wide,
        # so the totals-derived hit rates match to well within the 5-point
        # acceptance tolerance.
        assert abs(serial - pooled) <= 0.05, (
            f"process-pool hit rate {pooled:.1%} drifted from serial "
            f"{serial:.1%}")

    def test_engine_study_is_bit_identical(self, quick_report):
        entry = next(e for e in quick_report["scenarios"]
                     if e["name"] == ENGINE_SPEEDUP_SCENARIO)
        assert set(entry["engines"]) == {"lockstep", "event-driven"}
        assert entry["bit_identical"], (
            "event-driven engine diverged from lockstep")
        fingerprints = {stats["fingerprint"]
                        for stats in entry["engines"].values()}
        assert len(fingerprints) == 1
        for stats in entry["engines"].values():
            assert stats["finished_requests"] == entry["num_requests"]
        assert entry["engine_speedup"] > 0

    @pytest.mark.skipif((os.cpu_count() or 1) < MIN_CORES_FOR_SPEEDUP_CHECK,
                        reason="fan-out speedup needs a multi-core host")
    def test_process_pool_wins_on_multicore_hosts(self, quick_report):
        entry = next(e for e in quick_report["scenarios"]
                     if e["name"] == SPEEDUP_SCENARIO)
        assert entry["speedup"] > 1.2, (
            f"process-pool speedup {entry['speedup']:.2f}x on "
            f"{os.cpu_count()} cores")

    def test_check_speedup_gate_semantics(self, quick_report):
        ok, message = check_speedup(quick_report, threshold=0.0)
        assert ok, message
        # An impossible floor must fail on capable hosts and be skipped
        # (vacuously pass) on hosts below the core threshold.
        ok, message = check_speedup(quick_report, threshold=1e9)
        if quick_report["host"]["cpu_count"] >= MIN_CORES_FOR_SPEEDUP_CHECK:
            assert not ok and "below" in message
        else:
            assert ok and "skipped" in message
        ok, message = check_speedup(quick_report, threshold=0.0,
                                    scenario_name="no-such-scenario")
        if quick_report["host"]["cpu_count"] >= MIN_CORES_FOR_SPEEDUP_CHECK:
            assert not ok

    def test_check_engine_speedup_gate_semantics(self, quick_report):
        ok, message = check_engine_speedup(quick_report, threshold=0.0)
        assert ok, message
        ok, message = check_engine_speedup(quick_report, threshold=1e9)
        if quick_report["host"]["cpu_count"] >= MIN_CORES_FOR_SPEEDUP_CHECK:
            assert not ok and "below" in message
        else:
            assert ok and "skipped" in message
        ok, message = check_engine_speedup(quick_report, threshold=0.0,
                                           scenario_name="no-such-scenario")
        if quick_report["host"]["cpu_count"] >= MIN_CORES_FOR_SPEEDUP_CHECK:
            assert not ok

    def test_report_is_json_serializable_with_host_metadata(self, quick_report,
                                                           tmp_path):
        path = write_report(quick_report, tmp_path / "BENCH_cluster.json")
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == "bench-cluster/v1"
        assert loaded["quick"] is True
        assert loaded["host"]["cpu_count"] >= 1
        assert len(loaded["scenarios"]) == len(BENCH_SCENARIOS)

    def test_unknown_scenario_filter_rejected(self):
        with pytest.raises(ValueError):
            run_bench(quick=True, only=["no-such-scenario"])


class TestBenchTiming:
    """Record the headline scenario under pytest-benchmark for the trajectory."""

    def test_homogeneous_scenario_timed(self, benchmark):
        entry = run_once(benchmark, run_scenario,
                         scenario_by_name("homogeneous-4"), True)
        assert entry["bit_identical"]
        assert entry["speedup"] > 0
