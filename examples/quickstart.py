"""Quickstart: simulate serving GPT3-7B on a 4-NPU system.

Generates a small Poisson request trace with ShareGPT-like lengths, runs the
LLMServingSim co-simulation loop, and prints the serving metrics plus the
throughput-over-time series — the minimal end-to-end use of the public API.

Run with::

    python examples/quickstart.py
"""

from repro import LLMServingSim, ServingSimConfig, generate_trace
from repro.analysis import print_series, print_table


def main() -> None:
    config = ServingSimConfig(
        model_name="gpt3-7b",
        npu_num=4,          # four Table-I NPUs (comparable to the paper's 4x RTX 3090)
        npu_group=1,        # single group -> pure tensor parallelism inside it
        scheduling="orca",  # iteration-level scheduling
        kv_manage="vllm",   # paged KV cache
    )
    trace = generate_trace("sharegpt", num_requests=24, arrival="poisson",
                           rate_per_second=1.5, seed=7)

    simulator = LLMServingSim(config)
    result = simulator.run(trace)

    print_table(
        "Serving summary (GPT3-7B, 4 NPUs)",
        ["metric", "value"],
        [
            ["requests finished", f"{len(result.finished_requests)}/{len(result.requests)}"],
            ["iterations", len(result.iterations)],
            ["simulated makespan (s)", f"{result.makespan:.2f}"],
            ["prompt throughput (tok/s)", f"{result.prompt_throughput:.1f}"],
            ["generation throughput (tok/s)", f"{result.generation_throughput:.1f}"],
            ["mean time-to-first-token (s)", f"{result.mean_time_to_first_token():.3f}"],
            ["mean end-to-end latency (s)", f"{result.mean_end_to_end_latency():.3f}"],
        ],
    )

    series = [(p.time, p.generation_throughput) for p in result.throughput_series(bin_seconds=5.0)]
    print_series("Generation throughput over time", series,
                 x_label="time (s)", y_label="tokens/s")


if __name__ == "__main__":
    main()
