"""Trace replay: routing policies under recorded vs. synthetic arrivals.

Replays the committed Azure-format sample trace (Poisson-burst shaped, the
lumpy arrival pattern of production traffic) across a 4-replica cluster
once per routing policy, then serves a plain Poisson trace with the same
mean rate and request lengths for comparison.  The spread between routing
policies is the point: under smooth Poisson arrivals every sensible
balancer produces near-identical tail latencies, while the replayed bursts
pile requests onto whichever replica the policy picks during an epoch —
recorded traces separate policies that synthetic smoothness hides.

Run with::

    PYTHONPATH=src python examples/trace_replay.py
"""

from pathlib import Path

from repro import ClusterConfig, ClusterSimulator, ServingSimConfig
from repro.analysis import print_table
from repro.workload import PoissonArrivalGenerator, TraceReplayArrivalGenerator

SAMPLE_TRACE = Path(__file__).resolve().parent / "traces" / "sample_azure.csv"

ROUTERS = ["round-robin", "least-outstanding", "least-kv", "slo-ttft"]


def replayed_trace():
    # A seeded half-sample keeps the walkthrough quick; 2x rate rescaling
    # stresses the same burst shape at higher intensity.
    return TraceReplayArrivalGenerator(SAMPLE_TRACE, trace_format="azure",
                                       rate_scale=2.0, sample=0.5, seed=3).generate()


def poisson_trace(num_requests, rate):
    # The smooth control arm: same mean rate, same dataset-free short
    # lengths are close enough via alpaca's profile.
    return PoissonArrivalGenerator("alpaca", rate_per_second=rate,
                                   seed=7).generate(num_requests)


def run_arm(routing, make_trace):
    config = ClusterConfig(
        num_replicas=4, routing=routing,
        replica=ServingSimConfig(model_name="gpt2", npu_num=1, npu_mem_gb=4.0))
    # Traces are mutated by a run, so every arm replays a fresh copy.
    result = ClusterSimulator(config).run(make_trace())
    slos = result.slo_metrics()
    return result, slos


def main() -> None:
    reference = replayed_trace()
    num_requests = len(reference.requests)
    mean_rate = num_requests / reference.duration

    rows = []
    for routing in ROUTERS:
        replay_result, replay_slos = run_arm(routing, replayed_trace)
        poisson_result, poisson_slos = run_arm(
            routing, lambda: poisson_trace(num_requests, mean_rate))
        rows.append([
            routing,
            "/".join(str(c) for c in replay_result.requests_per_replica()),
            f"{replay_slos['ttft'].p99:.3f}",
            f"{replay_slos['e2e'].p99:.3f}",
            f"{poisson_slos['ttft'].p99:.3f}",
            f"{poisson_slos['e2e'].p99:.3f}",
        ])

    print_table(
        f"Replayed sample trace ({num_requests} requests, {mean_rate:.1f} req/s) "
        f"vs. Poisson at the same rate, 4x gpt2 replicas",
        ["routing", "replay req/replica", "replay TTFT p99", "replay E2E p99",
         "poisson TTFT p99", "poisson E2E p99"],
        rows,
    )


if __name__ == "__main__":
    main()
