"""Heterogeneous serving: NPU-only versus NPU+PIM with sub-batch interleaving.

Reproduces the scenario motivating Section IV-B of the paper: the
generation-phase attention operators are memory-bound GEMVs, so offloading
them to PIM devices (and overlapping sub-batches across the NPU and PIM
engines) raises serving throughput.  The example serves the same ShareGPT-like
burst of requests (long contexts, so attention traffic dominates) on three
system configurations and prints the comparison.

Run with::

    python examples/heterogeneous_npu_pim.py
"""

from repro import LLMServingSim, ServingSimConfig
from repro.analysis import print_table
from repro.workload import BurstArrivalGenerator


def run_config(label: str, pim_type: str, sub_batch: bool, requests) -> dict:
    config = ServingSimConfig(
        model_name="gpt3-7b",
        npu_num=4,
        npu_group=1,
        pim_type=pim_type,
        sub_batch=sub_batch,
        max_batch=32,
    )
    result = LLMServingSim(config).run([r for r in requests])
    return {
        "label": label,
        "generation_throughput": result.generation_throughput,
        "total_throughput": result.total_throughput,
        "makespan": result.makespan,
    }


def main() -> None:
    # A fresh copy of the same burst workload for each configuration (request
    # objects carry mutable progress state, so they cannot be shared).
    def workload():
        return BurstArrivalGenerator("sharegpt", seed=11).generate(48).requests

    rows = []
    for label, pim_type, sub_batch in [
        ("NPU only", "none", False),
        ("NPU + local PIM", "local", False),
        ("NPU + local PIM + sub-batch", "local", True),
    ]:
        outcome = run_config(label, pim_type, sub_batch, workload())
        rows.append([
            outcome["label"],
            f"{outcome['generation_throughput']:.1f}",
            f"{outcome['total_throughput']:.1f}",
            f"{outcome['makespan']:.2f}",
        ])

    print_table(
        "GPT3-7B, 4 NPUs, 48 ShareGPT-like requests (burst arrival)",
        ["configuration", "gen tok/s", "total tok/s", "makespan (s)"],
        rows,
    )
    print(
        "\nWith Table I hardware the PIM's internal bandwidth (1 TB/s) is close to the NPU's\n"
        "local bandwidth (936 GB/s), so offloading the generation-phase attention is roughly\n"
        "performance-neutral at this batch size: the benefit of the heterogeneous system is\n"
        "freeing NPU cycles and enabling overlap.  Sub-batch interleaving re-reads the model\n"
        "weights once per sub-batch, so it only pays off once batches are large enough for the\n"
        "batched GEMMs to be compute-bound (the NeuPIMs operating point with batches of 256+);\n"
        "at small batch sizes the simulator correctly shows it as a slowdown.")


if __name__ == "__main__":
    main()
