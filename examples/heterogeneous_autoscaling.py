"""Heterogeneous fleet + diurnal autoscaling: the provisioning what-if loop.

LLMServingSim's pitch is that serving-scale decisions (which accelerator to
buy, how many, how to schedule) should be made by co-simulating the full
stack.  This walkthrough runs that loop at fleet granularity: a 4-replica
cluster mixing two replica classes — two *small* systems (1 NPU) and two
*large* ones (4 NPUs) — serves a diurnal request trace under SLO-aware
``slo-ttft`` routing, with an autoscaler allowed to park and wake replicas
between 2 and 4 as the day/night arrival rate swings.

The run prints the scaling timeline (when replicas were woken and drained),
the per-class SLO attainment (did requests on small replicas still meet the
TTFT target?), and a comparison against blind round-robin on the same trace.

Run with::

    python examples/heterogeneous_autoscaling.py
"""

from repro import (AutoscaleConfig, ClusterConfig, ClusterSimulator, ReplicaSpec,
                   ServingSimConfig, generate_trace)
from repro.analysis import print_table

TTFT_SLO = 1.0   # seconds to first token
E2E_SLO = 20.0   # seconds to completion


def make_trace():
    # One compressed "day": the rate swings between ~0.5 and ~5.5 requests/s
    # over a 30-second period.  num_requests ~= mean rate * period, so the
    # trace covers the full trough -> peak -> trough cycle, which is what
    # forces the autoscaler to act in both directions.
    return generate_trace("alpaca", num_requests=90, arrival="diurnal",
                          rate_per_second=3.0, amplitude=0.85,
                          period_seconds=30.0, seed=42)


def make_config(routing: str) -> ClusterConfig:
    small = ServingSimConfig(model_name="gpt2", npu_num=1, npu_mem_gb=4.0, max_batch=8)
    large = ServingSimConfig(model_name="gpt2", npu_num=4, npu_mem_gb=4.0, max_batch=8)
    return ClusterConfig(
        routing=routing,
        replicas=[ReplicaSpec(config=small, count=2, name="small"),
                  ReplicaSpec(config=large, count=2, name="large")],
        autoscale=AutoscaleConfig(min_replicas=2, max_replicas=4,
                                  window_seconds=5.0, target_rate_per_replica=1.25,
                                  warmup_seconds=2.0, cooldown_seconds=3.0),
        ttft_slo=TTFT_SLO,
        e2e_slo=E2E_SLO,
    )


def main() -> None:
    rows = []
    timelines = {}
    for routing in ("round-robin", "weighted-capacity", "slo-ttft"):
        result = ClusterSimulator(make_config(routing)).run(make_trace())
        slos = result.slo_metrics()
        attained = result.slo_attainment()
        timelines[routing] = result
        rows.append([
            routing,
            "/".join(str(c) for c in result.requests_per_replica()),
            f"{slos['ttft'].p95:.3f}",
            f"{attained['small'].ttft_rate:.0%}",
            f"{attained['large'].ttft_rate:.0%}",
            f"{attained['cluster'].e2e_rate:.0%}",
            str(len(result.scaling_timeline)),
        ])

    print_table(
        "Heterogeneous 2x small + 2x large fleet, diurnal load, autoscale 2:4",
        ["routing", "req/replica", "TTFT p95 (s)", "TTFT SLO small",
         "TTFT SLO large", "E2E SLO cluster", "scale events"],
        rows,
    )

    result = timelines["slo-ttft"]
    print("\nslo-ttft scaling timeline (replica classes: "
          + ", ".join(result.replica_classes) + "):")
    for event in result.scaling_timeline:
        print(f"  t={event.time:7.2f}s {event.action:<10} replica {event.replica_id} "
              f"[{event.replica_class}] -> {event.provisioned_after} provisioned")


if __name__ == "__main__":
    main()
