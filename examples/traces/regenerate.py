"""Regenerate the committed sample traces (both on-disk formats).

The samples are anonymized, synthetic stand-ins for a production arrival
trace: Poisson-burst epochs (the lumpy shape real traffic has and the
smooth synthetic processes lack) carrying short instruction-style requests.
One underlying trace is written twice — ``sample.tsv`` in the artifact's
3-column TSV dataset format and ``sample_azure.csv`` in the Azure-style
``TIMESTAMP,ContextTokens,GeneratedTokens`` CSV format — so the two format
adapters can be validated against each other.

Run from the repository root (the outputs are committed)::

    PYTHONPATH=src python examples/traces/regenerate.py
"""

import csv
from datetime import datetime, timedelta
from pathlib import Path

import numpy as np

from repro.workload import Request, RequestTrace, write_trace

HERE = Path(__file__).resolve().parent

NUM_REQUESTS = 280
BURST_RATE_PER_SECOND = 0.8   # burst epochs per second
BURST_SIZE_MEAN = 5.0         # requests per burst (geometric)
SEED = 20240510
EPOCH = datetime(2024, 5, 10, 0, 0, 0)  # anonymized absolute origin


def build_trace() -> RequestTrace:
    rng = np.random.default_rng(SEED)
    requests = []
    clock = 0.0
    while len(requests) < NUM_REQUESTS:
        clock += float(rng.exponential(1.0 / BURST_RATE_PER_SECOND))
        burst = min(int(rng.geometric(1.0 / BURST_SIZE_MEAN)),
                    NUM_REQUESTS - len(requests))
        for _ in range(burst):
            # Short instruction-style lengths keep the committed sample
            # cheap to replay end-to-end on the default models.
            input_tokens = int(np.clip(round(rng.lognormal(np.log(32), 0.6)), 4, 160))
            output_tokens = int(np.clip(round(rng.lognormal(np.log(16), 0.7)), 1, 48))
            requests.append(Request(
                request_id=len(requests),
                input_tokens=input_tokens,
                output_tokens=output_tokens,
                arrival_time=round(clock, 6),
            ))
    return RequestTrace(requests=requests, dataset="sample",
                        arrival_process="poisson-burst")


def write_azure_csv(trace: RequestTrace, path: Path) -> None:
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["TIMESTAMP", "ContextTokens", "GeneratedTokens"])
        for request in trace.requests:
            stamp = EPOCH + timedelta(seconds=request.arrival_time)
            writer.writerow([stamp.strftime("%Y-%m-%d %H:%M:%S.%f"),
                             request.input_tokens, request.output_tokens])


def main() -> None:
    trace = build_trace()
    write_trace(trace, HERE / "sample.tsv")
    write_azure_csv(trace, HERE / "sample_azure.csv")
    print(f"wrote {len(trace)} requests spanning {trace.duration:.1f} s to "
          f"{HERE / 'sample.tsv'} and {HERE / 'sample_azure.csv'}")


if __name__ == "__main__":
    main()
