"""Parallelism strategy sweep: tensor vs pipeline vs hybrid on 8 NPUs.

LLMServingSim supports tensor, pipeline and hybrid model parallelism
(Section IV-A).  This example serves the same workload under several
configurations of an 8-NPU system and reports throughput and latency,
illustrating the trade-off the paper discusses: tensor parallelism
synchronizes on every block (two all-reduces) while pipeline parallelism
serializes stages but communicates far less.

Run with::

    python examples/parallelism_sweep.py
"""

from repro import LLMServingSim, ParallelismStrategy, ServingSimConfig
from repro.analysis import print_table
from repro.workload import BurstArrivalGenerator


def main() -> None:
    configurations = [
        ("TP8  (tensor)", ParallelismStrategy.TENSOR, 1),
        ("TP4 x PP2 (hybrid)", ParallelismStrategy.HYBRID, 2),
        ("TP2 x PP4 (hybrid)", ParallelismStrategy.HYBRID, 4),
        ("PP8  (pipeline)", ParallelismStrategy.PIPELINE, 8),
    ]

    rows = []
    for label, strategy, groups in configurations:
        config = ServingSimConfig(
            model_name="gpt3-7b",
            npu_num=8,
            npu_group=groups,
            parallel=strategy,
            max_batch=16,
        )
        requests = BurstArrivalGenerator("alpaca", seed=3).generate(32).requests
        result = LLMServingSim(config).run(requests)
        rows.append([
            label,
            f"{result.generation_throughput:.1f}",
            f"{result.mean_end_to_end_latency():.2f}",
            f"{result.makespan:.2f}",
            len(result.iterations),
        ])

    print_table(
        "GPT3-7B on 8 NPUs, 32 Alpaca-like requests",
        ["parallelism", "gen tok/s", "mean E2E (s)", "makespan (s)", "iterations"],
        rows,
    )


if __name__ == "__main__":
    main()
