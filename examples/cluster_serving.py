"""Cluster serving: bursty traffic across 4 replicas under every router.

Serves one Poisson-burst Alpaca trace with a 4-replica cluster (each
replica a GPT3-7B system on 4 NPUs) once per registered routing policy, and
compares the per-replica load split, cluster throughput and the SLO
percentiles (time-to-first-token, time-between-tokens, end-to-end latency)
the policies trade off against each other.  Note how the
memory-pressure-based least-kv policy skews the split on short requests —
KV occupancy lags queue depth, which is exactly the difference the cluster
layer lets you study.  On this homogeneous fleet the capability-aware
policies (slo-ttft, weighted-capacity) behave like load/uniform balancers;
see heterogeneous_autoscaling.py for the mixed fleet where they pay off.

Run with::

    python examples/cluster_serving.py
"""

from repro import ClusterConfig, ClusterSimulator, ServingSimConfig, generate_trace
from repro.analysis import print_table
from repro.cluster import available_routers


def make_trace():
    # Bursts of simultaneous requests are what make routing policies
    # differentiate: smooth traffic looks identical to every balancer.
    return generate_trace("alpaca", num_requests=32, arrival="poisson-burst",
                          rate_per_second=24.0, burst_size_mean=6.0, seed=11)


def main() -> None:
    replica = ServingSimConfig(
        model_name="gpt3-7b",
        npu_num=4,
        npu_group=1,
        scheduling="orca",
        kv_manage="vllm",
        max_batch=8,  # bounded per-replica batches, as in real deployments
        graph_granularity="block",  # coarse graphs keep the walkthrough fast
    )

    rows = []
    for routing in available_routers():
        config = ClusterConfig(num_replicas=4, routing=routing, replica=replica)
        result = ClusterSimulator(config).run(make_trace())
        slos = result.slo_metrics()
        rows.append([
            routing,
            "/".join(str(c) for c in result.requests_per_replica()),
            f"{result.generation_throughput:.1f}",
            f"{slos['ttft'].p99:.3f}",
            f"{slos['tbt'].p95:.4f}",
            f"{slos['e2e'].p99:.3f}",
        ])

    print_table(
        "Cluster serving: 32 bursty Alpaca requests, 4x GPT3-7B replicas",
        ["routing", "req/replica", "gen tok/s", "TTFT p99 (s)", "TBT p95 (s)", "E2E p99 (s)"],
        rows,
    )


if __name__ == "__main__":
    main()
