"""Validation walk-through: LLMServingSim versus the vLLM/GPU reference system.

This is a miniature version of the paper's Figure 6 experiment: the same
Poisson request trace is served by (a) the LLMServingSim co-simulator
configured as a homogeneous NPU system and (b) the independent
``VLLMReferenceSystem`` emulator standing in for the real GPU deployment.
The script prints both throughput-over-time series and the average relative
error between them.

Run with::

    python examples/validate_against_reference.py
"""

from repro import LLMServingSim, ServingSimConfig
from repro.analysis import print_table, series_error
from repro.baselines import VLLMReferenceConfig, VLLMReferenceSystem
from repro.workload import generate_trace


def main() -> None:
    bin_seconds = 10.0
    num_gpus = 1

    sim_trace = generate_trace("sharegpt", num_requests=40, rate_per_second=1.0, seed=21)
    ref_trace = generate_trace("sharegpt", num_requests=40, rate_per_second=1.0, seed=21)

    simulator = LLMServingSim(ServingSimConfig(model_name="gpt3-7b", npu_num=num_gpus))
    sim_result = simulator.run(sim_trace)

    reference = VLLMReferenceSystem(VLLMReferenceConfig(model_name="gpt3-7b", num_gpus=num_gpus))
    ref_result = reference.run(ref_trace)

    sim_series = [(p.time, p.generation_throughput)
                  for p in sim_result.throughput_series(bin_seconds)]
    ref_series = [(p.time, p.generation_throughput)
                  for p in ref_result.throughput_series(bin_seconds)]
    error = series_error(sim_series, ref_series)

    rows = []
    ref_lookup = dict(ref_series)
    for time, sim_value in sim_series:
        rows.append([f"{time:.0f}", f"{sim_value:.1f}", f"{ref_lookup.get(time, 0.0):.1f}"])

    print_table(
        "Generation throughput over time (GPT3-7B, 1 device)",
        ["time (s)", "LLMServingSim (tok/s)", "vLLM reference (tok/s)"],
        rows,
    )
    print(f"\naverage relative error vs reference: {error * 100:.1f}% "
          "(the paper reports an average of 14.7% across its four model configurations)")


if __name__ == "__main__":
    main()
