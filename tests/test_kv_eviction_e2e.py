"""End-to-end test of the KV evict -> reload path through a real simulation.

A deliberately tiny KV budget forces the paged manager to evict and reload
request caches during a full :class:`LLMServingSim` run.  The drained
:class:`KVMemoryEvent`s must surface in three places that the seed code only
exercised separately: the per-iteration ``IterationRecord.evictions`` /
``reloads`` counters, the scheduler's aggregate stats, and the execution
graph handed to the system simulator (as MEMORY transfer nodes).
"""


from repro import LLMServingSim, ServingSimConfig
from repro.graph.execgraph import GraphNodeType
from repro.models import get_model
from repro.workload import Request


def tiny_kv_simulator(capacity_tokens=160):
    model = get_model("gpt2")
    config = ServingSimConfig(
        model_name="gpt2", npu_num=1, npu_mem_gb=4.0,
        kv_capacity_bytes=capacity_tokens * model.kv_bytes_per_token(),
    )
    return LLMServingSim(config)


class TestEvictReloadEndToEnd:
    def test_memory_events_surface_everywhere(self):
        sim = tiny_kv_simulator()
        converted_graphs = []
        original_convert = sim.converter.convert

        def capturing_convert(*args, **kwargs):
            graph = original_convert(*args, **kwargs)
            converted_graphs.append(graph)
            return graph

        sim.converter.convert = capturing_convert
        sim.submit([Request(i, 64, 64, arrival_time=0.0) for i in range(3)])

        iterations = 0
        while iterations < 400:
            record = sim.step()
            if record is None:
                break
            iterations += 1
            # The record's counters must match the MEMORY nodes of the
            # execution graph simulated for the same iteration.
            memory_nodes = [n for n in converted_graphs[-1].nodes
                            if n.node_type is GraphNodeType.MEMORY]
            assert len(memory_nodes) == record.evictions + record.reloads
            assert sim.converter.stats.memory_nodes == len(memory_nodes)
            stores = [n for n in memory_nodes if n.metadata["direction"] == "store"]
            loads = [n for n in memory_nodes if n.metadata["direction"] == "load"]
            assert len(stores) == record.evictions
            assert len(loads) == record.reloads
            assert all(n.comm_bytes > 0 for n in memory_nodes)

        result = sim.collect_result()
        assert len(result.finished_requests) == 3
        total_evictions = sum(r.evictions for r in result.iterations)
        total_reloads = sum(r.reloads for r in result.iterations)
        assert total_evictions > 0, "tiny KV budget must force evictions"
        assert total_reloads > 0, "evicted requests must be reloaded"
        assert sim.scheduler.stats.evictions == total_evictions
        assert sim.scheduler.stats.reloads == total_reloads

    def test_kv_budget_override_applied(self):
        model = get_model("gpt2")
        sim = tiny_kv_simulator(capacity_tokens=160)
        assert sim.kv_manager.capacity_bytes == 160 * model.kv_bytes_per_token()

    def test_run_terminates_when_request_exceeds_budget(self):
        # A request larger than the whole KV budget can never be admitted;
        # run() must stop instead of spinning on the stalled arrival.
        sim = tiny_kv_simulator(capacity_tokens=32)
        result = sim.run([Request(0, 64, 4, arrival_time=0.0)])
        assert result.finished_requests == []
        assert sim.has_work  # the request is still pending, but we returned
