"""Tests for the runtime invariant checker (``--check-invariants``).

Happy paths prove the checker stays silent across engines, backends and KV
managers on healthy runs; the violation tests plant one bookkeeping bug per
invariant (a KV-token drift, a non-monotonic event, a phantom cache lookup)
and assert it is caught with a message naming the replica and request.
"""

import dataclasses

import pytest

from repro.analysis.invariants import InvariantViolation, ReplicaInvariantChecker
from repro.cluster.simulator import ClusterSimulator, Replica
from repro.core.config import ClusterConfig, ServingSimConfig
from repro.core.results import IterationRecord
from repro.core.simulator import LLMServingSim
from repro.workload import Request, generate_trace


def replica_config(**overrides):
    defaults = dict(model_name="gpt2", npu_num=1, npu_mem_gb=4.0)
    defaults.update(overrides)
    return ServingSimConfig(**defaults)


def stepped_replica(config=None, requests=None, steps=2):
    """A checked replica advanced a few iterations into a healthy run."""
    replica = Replica(0, config or replica_config(), class_name="small",
                      check_invariants=True)
    replica.simulator.submit(requests or [Request(0, 32, 50), Request(1, 24, 50)])
    for _ in range(steps):
        assert replica.step()
    return replica


class TestHappyPaths:
    def test_checked_replica_runs_clean(self):
        replica = stepped_replica(steps=5)
        assert replica._invariant_checker.iterations_checked == 5

    @pytest.mark.parametrize("engine", ["event-driven", "lockstep"])
    def test_cluster_run_with_invariants_on(self, engine):
        config = ClusterConfig(num_replicas=2, engine=engine,
                               replica=replica_config(),
                               check_invariants=True)
        trace = generate_trace("alpaca", 8, arrival="burst", seed=0)
        result = ClusterSimulator(config).run(trace)
        assert len(result.finished_requests) == 8

    def test_cluster_run_with_iteration_reuse(self):
        config = ClusterConfig(
            num_replicas=2, replica=replica_config(enable_iteration_reuse=True),
            check_invariants=True)
        trace = generate_trace("alpaca", 8, arrival="burst", seed=0)
        result = ClusterSimulator(config).run(trace)
        assert len(result.finished_requests) == 8

    def test_max_alloc_kv_manager_runs_clean(self):
        replica = stepped_replica(config=replica_config(kv_manage="max"), steps=4)
        assert replica._invariant_checker.iterations_checked == 4

    def test_checker_off_by_default(self):
        config = ClusterConfig(replica=replica_config())
        assert config.check_invariants is False
        replica = Replica(0, replica_config())
        assert replica._invariant_checker is None


class TestMonotonicityViolations:
    @staticmethod
    def checker_after_one_step():
        sim = LLMServingSim(replica_config())
        checker = ReplicaInvariantChecker(3, "small", sim)
        sim.submit([Request(0, 32, 8)])
        record = sim.step()
        checker.after_iteration(record)
        return checker, record

    def test_backwards_clock_is_caught(self):
        checker, record = self.checker_after_one_step()
        rewound = IterationRecord(
            index=record.index + 1,
            start_time=record.end_time - 1.0,
            end_time=record.end_time - 1.0 + record.latency,
            latency=record.latency, num_requests=1, prompt_tokens=0,
            generated_tokens=1, evictions=0, reloads=0, kv_utilization=0.1)
        with pytest.raises(InvariantViolation) as excinfo:
            checker.after_iteration(rewound)
        message = str(excinfo.value)
        assert "replica 3 [small]" in message
        assert "moved backwards" in message

    def test_end_before_start_is_caught(self):
        checker, record = self.checker_after_one_step()
        warped = dataclasses.replace(record, index=record.index + 1,
                                     start_time=record.end_time,
                                     end_time=record.end_time - 0.5)
        with pytest.raises(InvariantViolation, match="before it starts"):
            checker.after_iteration(warped)

    def test_negative_latency_is_caught(self):
        checker, record = self.checker_after_one_step()
        negative = dataclasses.replace(record, index=record.index + 1,
                                       latency=-0.25)
        with pytest.raises(InvariantViolation, match="negative latency"):
            checker.after_iteration(negative)

    def test_latency_end_time_mismatch_is_caught(self):
        checker, record = self.checker_after_one_step()
        skewed = dataclasses.replace(record, index=record.index + 1,
                                     start_time=record.end_time,
                                     end_time=record.end_time + record.latency
                                     + 1.0)
        with pytest.raises(InvariantViolation, match="start \\+ latency"):
            checker.after_iteration(skewed)


class TestKVConservationViolations:
    def test_planted_token_drift_is_caught_with_request_id(self):
        replica = stepped_replica(steps=2)
        running = replica.simulator.scheduler.running
        victim = next(r for r in running if r.prompt_processed)
        # Plant the bug: grow the KV allocation behind the scheduler's back,
        # as a buggy eviction/reload path would.
        replica.simulator.kv_manager.grow(victim.request_id, 3)
        with pytest.raises(InvariantViolation) as excinfo:
            replica.step()
        message = str(excinfo.value)
        assert f"request {victim.request_id} holds" in message
        assert "conservation" in message
        assert "replica 0 [small]" in message

    def test_planted_drift_caught_under_max_alloc_manager(self):
        replica = stepped_replica(config=replica_config(kv_manage="max"),
                                  steps=2)
        victim = next(r for r in replica.simulator.scheduler.running
                      if r.prompt_processed)
        replica.simulator.kv_manager.grow(victim.request_id, 3)
        with pytest.raises(InvariantViolation, match="conservation"):
            replica.step()


class TestCacheAccountingViolations:
    def test_phantom_lookup_delta_is_caught(self):
        replica = stepped_replica(
            config=replica_config(enable_iteration_reuse=True), steps=2)
        checker = replica._invariant_checker
        sim = replica.simulator
        # Plant the bug: a double-counted lookup (two increments, one step).
        sim.result.iteration_cache_misses += 1
        record = sim.step()
        with pytest.raises(InvariantViolation) as excinfo:
            checker.after_iteration(record)
        assert "expected exactly 1 lookup" in str(excinfo.value)

    def test_counter_movement_without_reuse_is_caught(self):
        replica = stepped_replica(steps=1)  # reuse disabled
        checker = replica._invariant_checker
        sim = replica.simulator
        sim.result.iteration_cache_hits += 1
        record = sim.step()
        with pytest.raises(InvariantViolation, match="reuse disabled"):
            checker.after_iteration(record)


class TestViolationType:
    def test_violation_is_an_assertion_error(self):
        # So `pytest.raises(AssertionError)` and plain `assert`-style CI
        # wiring both catch it.
        assert issubclass(InvariantViolation, AssertionError)
