"""Unit tests for model architectures, iteration graphs and roofline analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.models import (BatchComposition, ModelConfig, Phase, RTX3090_PEAKS, SequenceSpec,
                          analyze_phase, available_models, build_iteration_graph, get_model,
                          register_model)
from repro.models.roofline import DevicePeaks, analyze_operators


class TestModelRegistry:
    def test_known_models_present(self):
        names = set(available_models())
        for expected in ("gpt3-7b", "gpt3-13b", "gpt3-30b", "gpt3-175b", "llama-7b", "llama-30b"):
            assert expected in names

    def test_get_model_case_insensitive(self):
        assert get_model("GPT3-7B") is get_model("gpt3-7b")

    def test_get_unknown_model_raises(self):
        with pytest.raises(KeyError, match="unknown model"):
            get_model("gpt-neo")

    def test_register_conflicting_model_raises(self):
        with pytest.raises(ValueError):
            register_model(ModelConfig("gpt3-7b", num_layers=1, hidden_size=8,
                                       num_heads=2, ffn_hidden_size=16))

    def test_register_same_model_is_idempotent(self):
        config = get_model("gpt3-7b")
        assert register_model(config) is config

    def test_parameter_counts_scale(self):
        assert get_model("gpt3-175b").total_params > get_model("gpt3-30b").total_params > \
            get_model("gpt3-7b").total_params

    def test_gpt3_7b_parameter_count_in_range(self):
        params = get_model("gpt3-7b").total_params
        assert 6e9 < params < 8e9

    def test_gpt3_175b_parameter_count_in_range(self):
        params = get_model("gpt3-175b").total_params
        assert 1.6e11 < params < 1.9e11

    def test_kv_bytes_per_token(self):
        model = get_model("gpt3-7b")
        assert model.kv_bytes_per_token() == 2 * model.hidden_size * model.num_layers * 2
        assert model.kv_bytes_per_token() == \
            model.kv_bytes_per_token_per_block() * model.num_layers

    def test_param_bytes_per_device_decreases_with_parallelism(self):
        model = get_model("gpt3-30b")
        full = model.param_bytes_per_device(1, 1)
        assert model.param_bytes_per_device(4, 1) < full
        assert model.param_bytes_per_device(1, 4) < full
        with pytest.raises(ValueError):
            model.param_bytes_per_device(0, 1)

    def test_head_dim(self):
        model = get_model("gpt3-7b")
        assert model.head_dim * model.num_heads == model.hidden_size


class TestSequenceAndBatch:
    def test_sequence_validation(self):
        with pytest.raises(ValueError):
            SequenceSpec(0, 0, 0, Phase.INITIATION)
        with pytest.raises(ValueError):
            SequenceSpec(0, -1, 1, Phase.GENERATION)

    def test_total_context(self):
        assert SequenceSpec(0, 100, 1, Phase.GENERATION).total_context == 101

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            BatchComposition([])

    def test_batch_token_accounting(self):
        batch = BatchComposition([
            SequenceSpec(0, 0, 128, Phase.INITIATION),
            SequenceSpec(1, 256, 1, Phase.GENERATION),
        ])
        assert batch.total_new_tokens == 129
        assert batch.num_sequences == 2
        assert len(batch.initiation_sequences) == 1
        assert len(batch.generation_sequences) == 1
        assert batch.dominant_phase is Phase.INITIATION

    def test_dominant_phase_generation(self):
        batch = BatchComposition([SequenceSpec(i, 100, 1, Phase.GENERATION) for i in range(8)])
        assert batch.dominant_phase is Phase.GENERATION


class TestIterationGraph:
    @pytest.fixture
    def model(self):
        return get_model("gpt3-7b")

    def test_block_structure(self, model):
        batch = BatchComposition([SequenceSpec(0, 0, 64, Phase.INITIATION)])
        graph = build_iteration_graph(model, batch)
        names = [op.name for op in graph.block_operators]
        assert any("qkv_gen" in n for n in names)
        assert any("ffn_up" in n for n in names)
        assert any("score" in n for n in names)
        assert len(graph.embedding_operators) == 1
        assert len(graph.head_operators) == 1
        assert graph.num_blocks == model.num_layers

    def test_attention_per_request(self, model):
        batch = BatchComposition([SequenceSpec(i, 128, 1, Phase.GENERATION) for i in range(5)])
        graph = build_iteration_graph(model, batch)
        assert len(graph.attention_operators) == 3 * 5  # score, softmax, attend per request

    def test_generation_attention_is_gemv(self, model):
        batch = BatchComposition([SequenceSpec(0, 256, 1, Phase.GENERATION)])
        graph = build_iteration_graph(model, batch)
        score = [op for op in graph.attention_operators if "score" in op.name][0]
        assert score.op_type.value == "gemv"

    def test_initiation_attention_is_gemm(self, model):
        batch = BatchComposition([SequenceSpec(0, 0, 256, Phase.INITIATION)])
        graph = build_iteration_graph(model, batch)
        score = [op for op in graph.attention_operators if "score" in op.name][0]
        assert score.op_type.value == "gemm"

    def test_operators_for_block_renames_and_reindexes(self, model):
        batch = BatchComposition([SequenceSpec(0, 0, 32, Phase.INITIATION)])
        graph = build_iteration_graph(model, batch)
        block3 = graph.operators_for_block(3)
        assert all(op.block_index == 3 for op in block3)
        assert all(op.name.startswith("block3.") for op in block3)
        assert len(block3) == len(graph.block_operators)

    def test_all_operators_count(self, model):
        batch = BatchComposition([SequenceSpec(0, 0, 16, Phase.INITIATION)])
        graph = build_iteration_graph(model, batch)
        expected = (len(graph.block_operators) * model.num_layers
                    + len(graph.embedding_operators) + len(graph.head_operators))
        assert len(graph.all_operators()) == expected

    def test_total_flops_scales_with_blocks(self, model):
        batch = BatchComposition([SequenceSpec(0, 0, 16, Phase.INITIATION)])
        graph = build_iteration_graph(model, batch)
        block_flops = sum(op.flops for op in graph.block_operators)
        assert graph.total_flops > block_flops * model.num_layers
        assert graph.total_bytes > 0

    def test_prefill_flops_close_to_2nd_rule(self, model):
        """Prefill FLOPs should be close to the standard ~2 * params * tokens rule."""
        tokens = 512
        batch = BatchComposition([SequenceSpec(0, 0, tokens, Phase.INITIATION)])
        graph = build_iteration_graph(model, batch)
        rule_of_thumb = 2.0 * model.total_params * tokens
        assert 0.5 * rule_of_thumb < graph.total_flops < 2.5 * rule_of_thumb

    @given(tokens=st.integers(1, 1024), context=st.integers(0, 1024))
    @settings(max_examples=25, deadline=None)
    def test_flops_and_bytes_nonnegative(self, tokens, context):
        model = get_model("gpt2")
        phase = Phase.INITIATION if context == 0 else Phase.GENERATION
        batch = BatchComposition([SequenceSpec(0, context, tokens, phase)])
        graph = build_iteration_graph(model, batch)
        for op in graph.all_operators():
            assert op.flops >= 0
            assert op.total_bytes >= 0

    @given(n_requests=st.integers(1, 8))
    @settings(max_examples=10, deadline=None)
    def test_tokens_additive_across_requests(self, n_requests):
        model = get_model("gpt2")
        batch = BatchComposition([SequenceSpec(i, 0, 32, Phase.INITIATION)
                                  for i in range(n_requests)])
        graph = build_iteration_graph(model, batch)
        qkv = [op for op in graph.block_operators if "qkv_gen" in op.name][0]
        assert qkv.m == 32 * n_requests


class TestRoofline:
    def test_ridge_point(self):
        device = DevicePeaks("x", peak_tflops=100.0, peak_bandwidth_gbs=1000.0)
        assert device.ridge_point == pytest.approx(100.0)

    def test_attainable_capped_at_peak(self):
        device = DevicePeaks("x", peak_tflops=100.0, peak_bandwidth_gbs=1000.0)
        assert device.attainable_tflops(1e6) == 100.0
        assert device.attainable_tflops(1.0) == pytest.approx(1.0)

    def test_analyze_phase_groups(self):
        groups = analyze_phase(get_model("gpt3-7b"), 8, 128, Phase.GENERATION)
        assert set(groups) == {"layernorm", "qkv_gen", "score", "attend", "ffn"}

    def test_generation_attention_memory_bound(self):
        groups = analyze_phase(get_model("gpt3-7b"), 32, 512, Phase.GENERATION)
        assert not groups["score"].compute_bound
        assert not groups["attend"].compute_bound

    def test_initiation_ffn_compute_bound(self):
        groups = analyze_phase(get_model("gpt3-7b"), 32, 512, Phase.INITIATION)
        assert groups["ffn"].compute_bound
        assert groups["qkv_gen"].compute_bound

    def test_analyze_operators_matches_device(self):
        model = get_model("gpt2")
        batch = BatchComposition([SequenceSpec(0, 0, 64, Phase.INITIATION)])
        graph = build_iteration_graph(model, batch)
        points = analyze_operators(graph.block_operators, RTX3090_PEAKS)
        assert len(points) == len(graph.block_operators)
        for point in points:
            assert point.attainable_tflops <= RTX3090_PEAKS.peak_tflops + 1e-9
