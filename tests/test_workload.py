"""Unit tests for the workload substrate: requests, datasets, generators, trace I/O."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workload import (DATASET_PROFILES, BurstArrivalGenerator, DiurnalArrivalGenerator,
                            LengthSampler, PoissonArrivalGenerator,
                            PoissonBurstArrivalGenerator, Request, RequestState,
                            generate_trace, get_profile, read_trace, write_trace)


class TestRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            Request(0, input_tokens=0, output_tokens=5)
        with pytest.raises(ValueError):
            Request(0, input_tokens=5, output_tokens=0)
        with pytest.raises(ValueError):
            Request(0, input_tokens=5, output_tokens=5, arrival_time=-1)

    def test_initial_state(self):
        request = Request(1, 10, 5, arrival_time=2.0)
        assert request.state is RequestState.PENDING
        assert request.context_length == 0
        assert request.remaining_tokens == 5
        assert not request.is_finished

    def test_prompt_done_records_first_token(self):
        request = Request(1, 10, 5)
        request.record_prompt_done(3.0)
        assert request.prompt_processed
        assert request.first_token_time == 3.0
        assert request.generated_tokens == 1
        assert request.state is RequestState.GENERATION
        assert request.context_length == 11

    def test_generation_lifecycle(self):
        request = Request(1, 10, 3, arrival_time=1.0)
        request.record_prompt_done(2.0)
        request.record_generated_token(3.0)
        assert not request.is_finished
        request.record_generated_token(4.5)
        assert request.is_finished
        assert request.finish_time == 4.5
        assert request.end_to_end_latency == pytest.approx(3.5)
        assert request.time_to_first_token == pytest.approx(1.0)

    def test_single_output_token_finishes_at_prompt(self):
        request = Request(1, 10, 1)
        request.record_prompt_done(2.0)
        assert request.is_finished

    def test_generate_before_prompt_raises(self):
        request = Request(1, 10, 5)
        with pytest.raises(RuntimeError):
            request.record_generated_token(1.0)

    def test_latencies_none_before_completion(self):
        request = Request(1, 10, 5)
        assert request.time_to_first_token is None
        assert request.end_to_end_latency is None


class TestDatasets:
    def test_profiles_exist(self):
        assert "sharegpt" in DATASET_PROFILES
        assert "alpaca" in DATASET_PROFILES

    def test_get_profile_unknown(self):
        with pytest.raises(KeyError):
            get_profile("imagenet")

    def test_sampler_determinism(self):
        a = LengthSampler(get_profile("sharegpt"), seed=3).sample_many(20)
        b = LengthSampler(get_profile("sharegpt"), seed=3).sample_many(20)
        assert a == b

    def test_sampler_respects_bounds(self):
        profile = get_profile("alpaca")
        for input_tokens, output_tokens in LengthSampler(profile, seed=1).sample_many(200):
            assert profile.min_tokens <= input_tokens <= profile.max_tokens
            assert profile.min_tokens <= output_tokens <= profile.max_tokens

    def test_sharegpt_longer_than_alpaca_on_average(self):
        sharegpt = LengthSampler(get_profile("sharegpt"), seed=2).sample_many(300)
        alpaca = LengthSampler(get_profile("alpaca"), seed=2).sample_many(300)
        mean_in = lambda samples: sum(s[0] for s in samples) / len(samples)
        assert mean_in(sharegpt) > mean_in(alpaca)

    def test_sample_many_negative_rejected(self):
        with pytest.raises(ValueError):
            LengthSampler(get_profile("alpaca")).sample_many(-1)


class TestGenerators:
    def test_poisson_trace_sorted_and_sized(self):
        trace = PoissonArrivalGenerator("sharegpt", rate_per_second=2.0, seed=0).generate(50)
        assert len(trace) == 50
        arrivals = [r.arrival_time for r in trace]
        assert arrivals == sorted(arrivals)
        assert trace.arrival_process == "poisson"

    def test_poisson_rate_controls_duration(self):
        fast = PoissonArrivalGenerator("alpaca", rate_per_second=10.0, seed=1).generate(100)
        slow = PoissonArrivalGenerator("alpaca", rate_per_second=1.0, seed=1).generate(100)
        assert fast.duration < slow.duration

    def test_poisson_invalid_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivalGenerator("alpaca", rate_per_second=0.0)

    def test_burst_all_same_arrival(self):
        trace = BurstArrivalGenerator("alpaca", seed=0).generate(20)
        assert all(r.arrival_time == 0.0 for r in trace)
        assert trace.duration == 0.0

    def test_generate_trace_dispatch(self):
        assert generate_trace("alpaca", 5, arrival="burst").arrival_process == "burst"
        assert generate_trace("alpaca", 5, arrival="poisson").arrival_process == "poisson"
        assert generate_trace("alpaca", 5, arrival="poisson-burst").arrival_process == "poisson-burst"
        assert generate_trace("alpaca", 5, arrival="diurnal").arrival_process == "diurnal"
        with pytest.raises(ValueError):
            generate_trace("alpaca", 5, arrival="weibull")

    def test_poisson_burst_groups_arrivals(self):
        trace = PoissonBurstArrivalGenerator("alpaca", rate_per_second=4.0,
                                             burst_size_mean=4.0, seed=2).generate(64)
        assert len(trace) == 64
        arrivals = [r.arrival_time for r in trace]
        assert arrivals == sorted(arrivals)
        # Bursts share an epoch, so there are strictly fewer distinct arrival
        # times than requests (a plain Poisson trace has 64 distinct times).
        assert len(set(arrivals)) < 64

    def test_poisson_burst_mean_rate_matches_plain_poisson(self):
        bursty = PoissonBurstArrivalGenerator("alpaca", rate_per_second=8.0,
                                              burst_size_mean=4.0, seed=5).generate(400)
        smooth = PoissonArrivalGenerator("alpaca", rate_per_second=8.0, seed=5).generate(400)
        # Same mean request rate -> comparable trace durations (loose bound;
        # burstiness inflates the variance, not the mean).
        assert bursty.duration == pytest.approx(smooth.duration, rel=0.5)

    def test_poisson_burst_validation(self):
        with pytest.raises(ValueError):
            PoissonBurstArrivalGenerator("alpaca", rate_per_second=0.0)
        with pytest.raises(ValueError):
            PoissonBurstArrivalGenerator("alpaca", burst_size_mean=0.5)
        with pytest.raises(ValueError):
            PoissonBurstArrivalGenerator("alpaca").generate(0)

    def test_diurnal_rate_cycles(self):
        generator = DiurnalArrivalGenerator("alpaca", rate_per_second=2.0,
                                            amplitude=0.8, period_seconds=100.0, seed=0)
        trough = generator.rate_at(0.0)
        peak = generator.rate_at(50.0)
        assert trough == pytest.approx(2.0 * 0.2)
        assert peak == pytest.approx(2.0 * 1.8)
        assert generator.rate_at(100.0) == pytest.approx(trough)

    def test_diurnal_arrivals_denser_at_peak(self):
        generator = DiurnalArrivalGenerator("alpaca", rate_per_second=4.0,
                                            amplitude=0.9, period_seconds=200.0, seed=3)
        trace = generator.generate(300)
        first_period = [r for r in trace if r.arrival_time < 200.0]
        trough_half = sum(1 for r in first_period
                          if r.arrival_time < 50.0 or r.arrival_time >= 150.0)
        peak_half = sum(1 for r in first_period
                        if 50.0 <= r.arrival_time < 150.0)
        assert peak_half > trough_half

    def test_diurnal_validation(self):
        with pytest.raises(ValueError):
            DiurnalArrivalGenerator("alpaca", rate_per_second=-1.0)
        with pytest.raises(ValueError):
            DiurnalArrivalGenerator("alpaca", amplitude=1.0)
        with pytest.raises(ValueError):
            DiurnalArrivalGenerator("alpaca", period_seconds=0.0)

    @given(count=st.integers(1, 40), seed=st.integers(0, 10),
           arrival=st.sampled_from(["poisson-burst", "diurnal"]))
    @settings(max_examples=15, deadline=None)
    def test_bursty_generation_deterministic_per_seed(self, count, seed, arrival):
        a = generate_trace("alpaca", count, arrival=arrival, seed=seed)
        b = generate_trace("alpaca", count, arrival=arrival, seed=seed)
        assert [(r.input_tokens, r.output_tokens, r.arrival_time) for r in a] == \
            [(r.input_tokens, r.output_tokens, r.arrival_time) for r in b]

    def test_request_ids_unique(self):
        trace = generate_trace("sharegpt", 64, seed=9)
        ids = [r.request_id for r in trace]
        assert len(set(ids)) == len(ids)

    def test_token_totals_positive(self):
        trace = generate_trace("sharegpt", 16, seed=4)
        assert trace.total_input_tokens > 0
        assert trace.total_output_tokens > 0

    @given(count=st.integers(1, 40), seed=st.integers(0, 10))
    @settings(max_examples=15, deadline=None)
    def test_generation_is_deterministic_per_seed(self, count, seed):
        a = generate_trace("alpaca", count, seed=seed)
        b = generate_trace("alpaca", count, seed=seed)
        assert [(r.input_tokens, r.output_tokens, r.arrival_time) for r in a] == \
            [(r.input_tokens, r.output_tokens, r.arrival_time) for r in b]


class TestTraceIO:
    def test_round_trip(self, tmp_path):
        trace = generate_trace("sharegpt", 20, seed=5)
        path = write_trace(trace, tmp_path / "trace.tsv")
        loaded = read_trace(path)
        assert len(loaded) == len(trace)
        for original, restored in zip(trace, loaded):
            assert restored.input_tokens == original.input_tokens
            assert restored.output_tokens == original.output_tokens
            assert restored.arrival_time == pytest.approx(original.arrival_time, abs=1e-5)

    def test_read_headerless_file(self, tmp_path):
        path = tmp_path / "raw.tsv"
        path.write_text("10\t20\t0.5\n30\t40\t1.5\n")
        trace = read_trace(path)
        assert len(trace) == 2
        assert trace.requests[0].input_tokens == 10
        assert trace.requests[1].arrival_time == 1.5

    def test_read_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text("")
        with pytest.raises(ValueError):
            read_trace(path)

    def test_read_malformed_row_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("10\t20\n")
        with pytest.raises(ValueError):
            read_trace(path)
