"""Unit tests for KV-cache management, memory budgeting, batching and scheduling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.models import Phase, get_model
from repro.scheduler import (IterationLevelScheduler, KVMemoryEventType, MaxAllocKVCacheManager,
                             PagedKVCacheManager, PartitionCriteria, StaticBatchScheduler,
                             SubBatchPartitioner, build_kv_manager, build_scheduler,
                             compute_kv_budget, format_batch)
from repro.models.graph import BatchComposition, SequenceSpec
from repro.workload import Request


MODEL = get_model("gpt2")


def paged_manager(capacity_tokens=4096, page=16):
    capacity = capacity_tokens * MODEL.kv_bytes_per_token()
    return PagedKVCacheManager(MODEL, capacity, page_size_tokens=page)


class TestMemoryBudget:
    def test_budget_computation(self):
        model = get_model("gpt3-7b")
        budget = compute_kv_budget(model, num_devices=4, device_memory_bytes=24 * 1024 ** 3)
        assert budget.kv_capacity_bytes > 0
        assert budget.total_device_bytes == 4 * 24 * 1024 ** 3
        assert budget.kv_capacity_bytes < budget.total_device_bytes
        assert 0 < budget.kv_fraction < 1

    def test_model_too_large_raises(self):
        model = get_model("gpt3-175b")
        with pytest.raises(ValueError):
            compute_kv_budget(model, num_devices=1, device_memory_bytes=24 * 1024 ** 3)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            compute_kv_budget(MODEL, 0, 1024)
        with pytest.raises(ValueError):
            compute_kv_budget(MODEL, 1, 1024 ** 3, activation_fraction=1.5)


class TestPagedKVCache:
    def test_admit_and_release(self):
        manager = paged_manager()
        assert manager.can_admit(100)
        manager.admit(1, 100)
        assert manager.used_bytes() > 0
        manager.release(1)
        assert manager.used_bytes() == 0

    def test_duplicate_admit_raises(self):
        manager = paged_manager()
        manager.admit(1, 10)
        with pytest.raises(ValueError):
            manager.admit(1, 10)

    def test_page_rounding(self):
        manager = paged_manager(page=16)
        manager.admit(1, 15)  # 15 prompt + 1 upcoming token = 16 -> exactly 1 page
        assert manager.used_bytes() == manager.page_bytes

    def test_grow_allocates_new_page_on_boundary(self):
        manager = paged_manager(page=16)
        manager.admit(1, 15)
        before = manager.used_bytes()
        manager.grow(1, 1)  # token 17 -> second page
        assert manager.used_bytes() == before + manager.page_bytes

    def test_admission_respects_capacity(self):
        manager = paged_manager(capacity_tokens=64, page=16)
        manager.admit(1, 48)
        assert not manager.can_admit(64)

    def test_eviction_and_reload_cycle(self):
        manager = paged_manager(capacity_tokens=64, page=16)
        manager.admit(1, 30)
        manager.admit(2, 30)
        evicted = manager.evict_last_admitted()
        assert evicted == 2
        assert manager.is_evicted(2)
        events = manager.drain_events()
        assert len(events) == 1 and events[0].event_type is KVMemoryEventType.EVICT
        assert manager.can_reload(2)
        manager.reload(2)
        assert not manager.is_evicted(2)
        assert manager.drain_events()[0].event_type is KVMemoryEventType.RELOAD

    def test_grow_evicted_request_raises(self):
        manager = paged_manager(capacity_tokens=64)
        manager.admit(1, 30)
        manager.evict_last_admitted()
        with pytest.raises(RuntimeError):
            manager.grow(1)

    def test_ensure_capacity_evicts_lifo(self):
        manager = paged_manager(capacity_tokens=48, page=16)
        manager.admit(1, 15)
        manager.admit(2, 15)
        manager.admit(3, 15)
        # Request 1 needs another page; request 3 (most recently admitted,
        # unprotected) should be evicted first.
        evicted = manager.ensure_capacity_for_growth(1, 16, protected=[1])
        assert evicted == [3]

    def test_evict_last_admitted_respects_protection(self):
        manager = paged_manager(capacity_tokens=64, page=16)
        manager.admit(1, 15)
        manager.admit(2, 15)
        assert manager.evict_last_admitted(protected=[2]) == 1
        assert manager.evict_last_admitted(protected=[2]) is None

    def test_ensure_capacity_events_match_evicted_ids(self):
        # ensure_capacity_for_growth routes through the same helper as
        # evict_last_admitted, so every evicted id must have exactly one
        # EVICT event (the seed duplicated the logic inline).
        manager = paged_manager(capacity_tokens=48, page=16)
        manager.admit(1, 15)
        manager.admit(2, 15)
        manager.admit(3, 15)
        evicted = manager.ensure_capacity_for_growth(1, 32, protected=[1])
        events = manager.drain_events()
        assert [e.request_id for e in events] == evicted
        assert all(e.event_type is KVMemoryEventType.EVICT for e in events)

    def test_utilization_bounds(self):
        manager = paged_manager(capacity_tokens=128)
        manager.admit(1, 60)
        assert 0 < manager.utilization() <= 1

    @given(lengths=st.lists(st.integers(1, 200), min_size=1, max_size=20))
    @settings(max_examples=25, deadline=None)
    def test_resident_pages_never_exceed_capacity(self, lengths):
        manager = paged_manager(capacity_tokens=512, page=16)
        for i, length in enumerate(lengths):
            if manager.can_admit(length):
                manager.admit(i, length)
        assert manager.used_bytes() <= manager.capacity_bytes
        assert manager.free_pages >= 0

    @given(steps=st.lists(st.integers(1, 30), min_size=1, max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_growth_accounting_consistent(self, steps):
        manager = paged_manager(capacity_tokens=4096, page=16)
        manager.admit(0, 8)
        tokens = 9
        for step in steps:
            if manager.can_grow(0, step):
                manager.grow(0, step)
                tokens += step
        assert manager.tokens_of(0) == tokens
        expected_pages = -(-tokens // 16)
        assert manager.used_bytes() == expected_pages * manager.page_bytes


class TestMaxAllocKVCache:
    def test_reserves_max_length(self):
        manager = MaxAllocKVCacheManager(MODEL, capacity_bytes=MODEL.kv_bytes_per_token() * 4096,
                                         max_seq_len=1024)
        manager.admit(1, 10)
        assert manager.used_bytes() == 1024 * MODEL.kv_bytes_per_token()

    def test_fits_fewer_requests_than_paged(self):
        capacity = MODEL.kv_bytes_per_token() * 2048
        paged = PagedKVCacheManager(MODEL, capacity)
        maxalloc = MaxAllocKVCacheManager(MODEL, capacity, max_seq_len=1024)
        admitted_paged = admitted_max = 0
        for i in range(32):
            if paged.can_admit(64):
                paged.admit(i, 64)
                admitted_paged += 1
            if maxalloc.can_admit(64):
                maxalloc.admit(i, 64)
                admitted_max += 1
        assert admitted_paged > admitted_max

    def test_grow_limited_by_max_seq(self):
        manager = MaxAllocKVCacheManager(MODEL, MODEL.kv_bytes_per_token() * 4096, max_seq_len=32)
        manager.admit(1, 30)  # stores 31: prompt + first generated token
        assert manager.can_grow(1, 1)
        assert not manager.can_grow(1, 2)
        with pytest.raises(MemoryError):
            manager.grow(1, 5)

    def test_admit_accounts_prompt_plus_first_token(self):
        manager = MaxAllocKVCacheManager(MODEL, MODEL.kv_bytes_per_token() * 4096, max_seq_len=32)
        assert not manager.can_admit(32)  # 32 + 1 would exceed the reservation
        assert manager.can_admit(31)
        manager.admit(1, 31)
        assert manager.tokens_of(1) == 32

    def test_token_trajectories_match_paged_manager(self):
        # Regression: the seed stored num_tokens in the max-alloc manager but
        # num_tokens + 1 in the paged manager, skewing the ablation by one
        # token per request.  Both must now report identical trajectories.
        capacity = MODEL.kv_bytes_per_token() * 8192
        paged = PagedKVCacheManager(MODEL, capacity, page_size_tokens=16)
        maxalloc = MaxAllocKVCacheManager(MODEL, capacity, max_seq_len=2048)
        trajectories = {"vllm": [], "max": []}
        for name, manager in (("vllm", paged), ("max", maxalloc)):
            manager.admit(7, 100)
            trajectories[name].append(manager.tokens_of(7))
            for _ in range(6):
                manager.grow(7, 1)
                trajectories[name].append(manager.tokens_of(7))
        assert trajectories["vllm"] == trajectories["max"]
        assert trajectories["vllm"][0] == 101

    def test_build_kv_manager_dispatch(self):
        capacity = MODEL.kv_bytes_per_token() * 1024
        assert isinstance(build_kv_manager("vllm", MODEL, capacity), PagedKVCacheManager)
        assert isinstance(build_kv_manager("max", MODEL, capacity), MaxAllocKVCacheManager)
        with pytest.raises(ValueError):
            build_kv_manager("lru", MODEL, capacity)


class TestBatchFormatting:
    def test_format_batch_orders_phases(self):
        gen = Request(1, 10, 5)
        gen.record_prompt_done(0.0)
        init = Request(2, 20, 5)
        plan = format_batch(0, 1.0, [init], [gen], [])
        assert plan.batch.sequences[0].phase is Phase.GENERATION
        assert plan.batch.sequences[-1].phase is Phase.INITIATION
        assert plan.prompt_tokens == 20
        assert plan.generation_tokens == 2
        assert plan.num_requests == 2

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            format_batch(0, 0.0, [], [], [])


class TestSubBatchPartitioner:
    def _batch(self, sizes):
        return BatchComposition([SequenceSpec(i, 128, tokens, Phase.GENERATION)
                                 if tokens == 1 else SequenceSpec(i, 0, tokens, Phase.INITIATION)
                                 for i, tokens in enumerate(sizes)])

    def test_partition_preserves_all_sequences(self):
        batch = self._batch([64, 32, 16, 8, 4, 2])
        parts = SubBatchPartitioner(2).partition(batch)
        total = sum(len(p.sequences) for p in parts)
        assert total == batch.num_sequences
        assert len(parts) == 2

    def test_single_sub_batch_identity(self):
        batch = self._batch([8, 8])
        assert SubBatchPartitioner(1).partition(batch) == [batch]

    def test_fewer_sequences_than_parts(self):
        batch = self._batch([8])
        parts = SubBatchPartitioner(4).partition(batch)
        assert len(parts) == 1

    def test_balance_by_tokens(self):
        batch = self._batch([100, 50, 50])
        partitioner = SubBatchPartitioner(2, PartitionCriteria.TOKENS)
        parts = partitioner.partition(batch)
        assert partitioner.imbalance(parts) < 0.2

    @given(sizes=st.lists(st.integers(1, 256), min_size=2, max_size=24),
           parts=st.integers(2, 4))
    @settings(max_examples=25, deadline=None)
    def test_partition_is_a_partition(self, sizes, parts):
        batch = self._batch(sizes)
        result = SubBatchPartitioner(parts).partition(batch)
        ids = sorted(s.request_id for p in result for s in p.sequences)
        assert ids == sorted(s.request_id for s in batch.sequences)


class TestIterationLevelScheduler:
    def _scheduler(self, capacity_tokens=8192, max_batch=0):
        manager = paged_manager(capacity_tokens=capacity_tokens)
        return IterationLevelScheduler(manager, max_batch_size=max_batch)

    def test_admits_arrived_requests_only(self):
        scheduler = self._scheduler()
        scheduler.submit([Request(0, 16, 4, arrival_time=0.0),
                          Request(1, 16, 4, arrival_time=100.0)])
        plan = scheduler.next_iteration()
        assert plan is not None
        assert [r.request_id for r in plan.initiation_requests] == [0]

    def test_idle_until_next_arrival(self):
        scheduler = self._scheduler()
        scheduler.submit([Request(0, 16, 4, arrival_time=50.0)])
        assert scheduler.next_iteration() is None
        assert scheduler.next_arrival_time() == 50.0
        scheduler.clock = 50.0
        assert scheduler.next_iteration() is not None

    def test_full_lifecycle_completes_requests(self):
        scheduler = self._scheduler()
        scheduler.submit([Request(i, 8, 3, arrival_time=0.0) for i in range(4)])
        iterations = 0
        while scheduler.has_work and iterations < 50:
            plan = scheduler.next_iteration()
            assert plan is not None
            scheduler.complete_iteration(plan, latency=0.1)
            iterations += 1
        assert not scheduler.has_work
        assert len(scheduler.finished) == 4
        assert all(r.is_finished for r in scheduler.finished)
        # 1 initiation iteration + 2 more generation iterations.
        assert iterations == 3

    def test_iteration_level_admission_mid_flight(self):
        scheduler = self._scheduler()
        scheduler.submit([Request(0, 8, 10, arrival_time=0.0),
                          Request(1, 8, 2, arrival_time=0.25)])
        plan1 = scheduler.next_iteration()
        assert len(plan1.initiation_requests) == 1
        scheduler.complete_iteration(plan1, latency=0.5)   # clock now 0.5 > 0.25
        plan2 = scheduler.next_iteration()
        assert any(r.request_id == 1 for r in plan2.initiation_requests)
        assert any(r.request_id == 0 for r in plan2.generation_requests)

    def test_max_batch_respected(self):
        scheduler = self._scheduler(max_batch=2)
        scheduler.submit([Request(i, 8, 2, arrival_time=0.0) for i in range(5)])
        plan = scheduler.next_iteration()
        assert plan.num_requests == 2

    def test_memory_pressure_evicts_and_reloads(self):
        scheduler = self._scheduler(capacity_tokens=160)
        scheduler.submit([Request(i, 64, 64, arrival_time=0.0) for i in range(3)])
        total_evictions = 0
        total_reloads = 0
        iterations = 0
        while scheduler.has_work and iterations < 400:
            plan = scheduler.next_iteration()
            if plan is None:
                break
            total_evictions += sum(1 for e in plan.memory_events
                                   if e.event_type is KVMemoryEventType.EVICT)
            total_reloads += sum(1 for e in plan.memory_events
                                 if e.event_type is KVMemoryEventType.RELOAD)
            scheduler.complete_iteration(plan, latency=0.05)
            iterations += 1
        assert len(scheduler.finished) == 3
        assert total_evictions > 0
        assert total_reloads > 0

    def test_clock_advances_by_latency(self):
        scheduler = self._scheduler()
        scheduler.submit([Request(0, 8, 2, arrival_time=0.0)])
        plan = scheduler.next_iteration()
        scheduler.complete_iteration(plan, latency=1.5)
        assert scheduler.clock == pytest.approx(1.5)

    def test_duplicate_request_id_rejected(self):
        scheduler = self._scheduler()
        scheduler.submit([Request(0, 8, 2)])
        with pytest.raises(ValueError):
            scheduler.submit([Request(0, 8, 2)])

    def test_build_scheduler_dispatch(self):
        manager = paged_manager()
        assert isinstance(build_scheduler("orca", manager), IterationLevelScheduler)
        assert isinstance(build_scheduler("static", manager), StaticBatchScheduler)
        with pytest.raises(ValueError):
            build_scheduler("fifo", manager)


class TestStaticBatchScheduler:
    def test_no_admission_mid_batch(self):
        manager = paged_manager()
        scheduler = StaticBatchScheduler(manager)
        scheduler.submit([Request(0, 8, 3, arrival_time=0.0),
                          Request(1, 8, 3, arrival_time=0.1)])
        plan1 = scheduler.next_iteration()
        assert len(plan1.initiation_requests) == 1
        scheduler.complete_iteration(plan1, latency=1.0)
        # Request 1 arrived during the batch but must wait until it drains.
        plan2 = scheduler.next_iteration()
        assert plan2.initiation_requests == []
        assert len(plan2.generation_requests) == 1

    def test_all_requests_eventually_finish(self):
        manager = paged_manager()
        scheduler = StaticBatchScheduler(manager)
        scheduler.submit([Request(i, 8, 3, arrival_time=0.1 * i) for i in range(4)])
        iterations = 0
        while scheduler.has_work and iterations < 100:
            plan = scheduler.next_iteration()
            if plan is None:
                nxt = scheduler.next_arrival_time()
                if nxt is None:
                    break
                scheduler.clock = max(scheduler.clock, nxt)
                continue
            scheduler.complete_iteration(plan, latency=0.2)
            iterations += 1
        assert len(scheduler.finished) == 4

    def test_stalls_requests_without_kv_pages(self):
        # Regression: the seed placed requests whose can_grow check failed in
        # the generation batch anyway, so they generated tokens with no KV
        # pages backing them.  With a 3-page budget, two 15-token prompts fit
        # (one page each) but only one can grow past the page boundary; the
        # other must stall until capacity frees up.
        manager = paged_manager(capacity_tokens=48, page=16)
        scheduler = StaticBatchScheduler(manager)
        first, second = Request(0, 15, 4), Request(1, 15, 4)
        scheduler.submit([first, second])
        plan1 = scheduler.next_iteration()
        assert len(plan1.initiation_requests) == 2
        scheduler.complete_iteration(plan1, latency=0.1)
        plan2 = scheduler.next_iteration()
        assert [r.request_id for r in plan2.generation_requests] == [0]
        assert scheduler.stats.stalled_growths == 1
        scheduler.complete_iteration(plan2, latency=0.1)
        assert second.generated_tokens == 1  # stalled, not silently advanced

    def test_max_alloc_truncates_instead_of_deadlocking(self):
        # A request whose sequence hits the max-alloc manager's max_seq_len
        # can never grow again; it must be truncated (finished with the
        # tokens produced so far), not stalled forever — otherwise the batch
        # never drains and every later arrival starves.
        manager = MaxAllocKVCacheManager(MODEL, MODEL.kv_bytes_per_token() * 65536,
                                         max_seq_len=32)
        scheduler = StaticBatchScheduler(manager)
        long_request = Request(0, 20, 30, arrival_time=0.0)   # 21 + 30 > 32
        late_request = Request(1, 8, 2, arrival_time=0.5)
        scheduler.submit([long_request, late_request])
        iterations = 0
        while scheduler.has_work and iterations < 100:
            plan = scheduler.next_iteration()
            if plan is None:
                nxt = scheduler.next_arrival_time()
                if nxt is None or scheduler.clock >= nxt:
                    break
                scheduler.clock = nxt
                continue
            scheduler.complete_iteration(plan, latency=0.1)
            iterations += 1
        assert long_request.is_finished
        # 21 tokens at admission + 11 grows to the 32-token cap, one
        # generated token per growth (the first arrives with the prompt).
        assert long_request.generated_tokens == 12
        assert late_request.is_finished  # no head-of-line starvation
        assert scheduler.stats.truncated_requests == 1

    def test_orca_truncates_at_max_seq_len_too(self):
        manager = MaxAllocKVCacheManager(MODEL, MODEL.kv_bytes_per_token() * 65536,
                                         max_seq_len=16)
        scheduler = IterationLevelScheduler(manager)
        request = Request(0, 10, 20, arrival_time=0.0)  # 11 + 20 > 16
        scheduler.submit([request])
        iterations = 0
        while scheduler.has_work and iterations < 50:
            plan = scheduler.next_iteration()
            if plan is None:
                break
            scheduler.complete_iteration(plan, latency=0.1)
            iterations += 1
        assert request.is_finished
        assert request.generated_tokens == 6  # 11 -> 16 tokens: 5 grows + first
        assert scheduler.stats.truncated_requests == 1
        assert not scheduler.has_work

    def test_kv_accounting_consistent_under_pressure(self):
        # Every request that is accounted for in the paged manager must hold
        # exactly as many tokens as its request progress implies — the seed
        # violated this whenever a generation batch outgrew the KV budget.
        manager = paged_manager(capacity_tokens=48, page=16)
        scheduler = StaticBatchScheduler(manager)
        scheduler.submit([Request(0, 15, 6), Request(1, 15, 6)])
        iterations = 0
        while scheduler.has_work and iterations < 50:
            plan = scheduler.next_iteration()
            if plan is None:
                break
            scheduler.complete_iteration(plan, latency=0.05)
            iterations += 1
            for request in scheduler.running:
                if not manager.is_evicted(request.request_id):
                    assert manager.tokens_of(request.request_id) == request.context_length
        assert len(scheduler.finished) == 2
