"""Unit tests for the system substrate: events, topology, network and the DES."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import ExecutionGraph
from repro.system import (DeviceType, EventQueue, NetworkConfig, NetworkModel, PCIE_GEN4_X16,
                          LinkSpec, PIMMode, SystemSimulator, build_topology)


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(2.0, lambda: fired.append("b"))
        queue.schedule(1.0, lambda: fired.append("a"))
        queue.schedule(3.0, lambda: fired.append("c"))
        queue.run()
        assert fired == ["a", "b", "c"]
        assert queue.now == 3.0

    def test_same_time_fires_in_schedule_order(self):
        queue = EventQueue()
        fired = []
        for label in ("first", "second", "third"):
            queue.schedule(1.0, lambda l=label: fired.append(l))
        queue.run()
        assert fired == ["first", "second", "third"]

    def test_schedule_after(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: queue.schedule_after(0.5, lambda: None))
        queue.run()
        assert queue.now == pytest.approx(1.5)

    def test_cannot_schedule_in_past(self):
        queue = EventQueue()
        queue.schedule(5.0, lambda: None)
        queue.pop()
        with pytest.raises(ValueError):
            queue.schedule(1.0, lambda: None)
        with pytest.raises(ValueError):
            queue.schedule_after(-1.0, lambda: None)

    def test_run_until(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: fired.append(1))
        queue.schedule(10.0, lambda: fired.append(2))
        executed = queue.run(until=5.0)
        assert executed == 1
        assert fired == [1]
        assert len(queue) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()


class TestTopology:
    def test_homogeneous(self):
        topology = build_topology(num_devices=8, num_groups=2)
        assert topology.num_compute_devices == 8
        assert topology.num_groups == 2
        assert topology.tensor_parallel_degree == 4
        assert topology.pim_mode is PIMMode.NONE
        assert topology.device(topology.host_id).device_type is DeviceType.HOST

    def test_group_membership(self):
        topology = build_topology(num_devices=4, num_groups=2)
        for group_index, group in enumerate(topology.compute_groups):
            for device_id in group:
                assert topology.group_of(device_id) == group_index

    def test_local_pim_pairs_every_npu(self):
        topology = build_topology(num_devices=4, pim_mode=PIMMode.LOCAL)
        for npu_id in topology.compute_devices:
            partner = topology.pim_partner(npu_id)
            assert partner is not None
            assert topology.device(partner).device_type is DeviceType.PIM
            assert topology.device(partner).paired_device == npu_id

    def test_pim_pool(self):
        topology = build_topology(num_devices=4, pim_mode=PIMMode.POOL, num_pim_devices=2)
        assert len(topology.pim_pool) == 2
        assert all(topology.device(d).device_type is DeviceType.PIM for d in topology.pim_pool)

    def test_indivisible_groups_rejected(self):
        with pytest.raises(ValueError):
            build_topology(num_devices=6, num_groups=4)

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            build_topology(num_devices=0)
        with pytest.raises(ValueError):
            build_topology(num_devices=4, num_groups=0)

    @given(devices=st.integers(1, 64), groups=st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_device_count_invariant(self, devices, groups):
        if devices % groups != 0:
            with pytest.raises(ValueError):
                build_topology(devices, groups)
            return
        topology = build_topology(devices, groups)
        assert topology.num_compute_devices == devices
        assert len(set(topology.compute_devices)) == devices
        topology.validate()


class TestNetworkModel:
    def test_link_transfer_time(self):
        link = LinkSpec("x", bandwidth_gbs=10.0, latency_s=1e-6)
        assert link.transfer_time(10e9) == pytest.approx(1.0 + 1e-6)
        with pytest.raises(ValueError):
            link.transfer_time(-1)

    def test_table1_link(self):
        assert PCIE_GEN4_X16.bandwidth_gbs == 64.0
        assert PCIE_GEN4_X16.latency_s == pytest.approx(100e-9)

    def test_allreduce_single_device_free(self):
        assert NetworkModel().allreduce_time(1e9, 1) == 0.0

    def test_allreduce_grows_with_devices_latency_term(self):
        model = NetworkModel()
        assert model.allreduce_time(1e6, 16) > model.allreduce_time(1e6, 2)

    def test_allreduce_bandwidth_term_saturates(self):
        """The ring bandwidth term approaches 2*bytes/bw for large groups."""
        model = NetworkModel(NetworkConfig(sync_overhead_s=0.0))
        big = model.allreduce_time(1e9, 1024)
        bound = 2 * 1e9 / (model.config.device_link.bandwidth_gbs * 1e9)
        assert big >= bound * 0.9

    def test_allgather_cheaper_than_allreduce(self):
        model = NetworkModel()
        assert model.allgather_time(1e8, 8) < model.allreduce_time(1e8, 8)

    def test_invalid_device_count(self):
        with pytest.raises(ValueError):
            NetworkModel().allreduce_time(1e6, 0)


class TestSystemSimulator:
    def _sim(self, devices=4):
        return SystemSimulator(build_topology(devices, 1))

    def test_empty_graph(self):
        result = self._sim().simulate(ExecutionGraph())
        assert result.makespan == 0.0

    def test_serial_chain_on_one_device(self):
        graph = ExecutionGraph()
        a = graph.add_compute("a", device=1, duration=1.0)
        b = graph.add_compute("b", device=1, duration=2.0, deps=[a.node_id])
        result = self._sim().simulate(graph)
        assert result.makespan == pytest.approx(3.0)
        assert result.compute_time == pytest.approx(3.0)
        assert result.utilization(1) == pytest.approx(1.0)

    def test_independent_nodes_on_different_devices_overlap(self):
        graph = ExecutionGraph()
        graph.add_compute("a", device=1, duration=2.0)
        graph.add_compute("b", device=2, duration=2.0)
        result = self._sim().simulate(graph)
        assert result.makespan == pytest.approx(2.0)

    def test_same_device_serializes_independent_nodes(self):
        graph = ExecutionGraph()
        graph.add_compute("a", device=1, duration=2.0)
        graph.add_compute("b", device=1, duration=2.0)
        result = self._sim().simulate(graph)
        assert result.makespan == pytest.approx(4.0)

    def test_collective_occupies_all_participants(self):
        graph = ExecutionGraph()
        a = graph.add_compute("a", device=1, duration=1.0)
        b = graph.add_compute("b", device=2, duration=1.0)
        ar = graph.add_collective("allreduce", devices=[1, 2], comm_bytes=64e6,
                                  deps=[a.node_id, b.node_id])
        graph.add_compute("after", device=1, duration=1.0, deps=[ar.node_id])
        sim = self._sim()
        result = sim.simulate(graph)
        expected_ar = sim.network.allreduce_time(64e6, 2)
        assert result.makespan == pytest.approx(2.0 + expected_ar, rel=1e-6)
        assert result.comm_time > 0

    def test_p2p_transfer_timed_by_link(self):
        graph = ExecutionGraph()
        a = graph.add_compute("a", device=1, duration=1.0)
        p = graph.add_p2p("send", src=1, dst=2, comm_bytes=64e9, deps=[a.node_id])
        graph.add_compute("b", device=2, duration=1.0, deps=[p.node_id])
        sim = self._sim()
        result = sim.simulate(graph)
        assert result.makespan == pytest.approx(2.0 + sim.network.p2p_time(64e9), rel=1e-6)

    def test_memory_node_counts_as_memory_time(self):
        graph = ExecutionGraph()
        graph.add_memory("evict", device=1, comm_bytes=1e9, direction="store")
        result = self._sim().simulate(graph)
        assert result.memory_time > 0

    def test_start_time_offsets_node_timings(self):
        graph = ExecutionGraph()
        graph.add_compute("a", device=1, duration=1.0)
        result = self._sim().simulate(graph, start_time=100.0)
        assert result.node_timings[0].start == pytest.approx(100.0)
        assert result.node_timings[0].end == pytest.approx(101.0)

    def test_all_nodes_complete(self):
        graph = ExecutionGraph()
        prev = None
        for i in range(20):
            deps = [prev.node_id] if prev else []
            prev = graph.add_compute(f"n{i}", device=1 + i % 3, duration=0.1, deps=deps)
        result = self._sim().simulate(graph)
        assert len(result.node_timings) == 20
        assert result.num_events == 20

    def test_makespan_at_least_critical_path(self):
        graph = ExecutionGraph()
        a = graph.add_compute("a", device=1, duration=1.0)
        b = graph.add_compute("b", device=2, duration=2.0, deps=[a.node_id])
        graph.add_compute("c", device=1, duration=3.0, deps=[b.node_id])
        result = self._sim().simulate(graph)
        assert result.makespan >= graph.critical_path_compute_time() - 1e-9

    def test_large_single_device_graph_fifo_order_and_speed(self):
        # Regression for the O(n^2) `ready.pop(0)` FIFO: a large fan-out on
        # one device enqueues every node in the per-device ready queue.  The
        # deque must preserve FIFO dispatch order (nodes run in the order
        # they became ready) and keep the simulation linear-ish in the node
        # count.
        import time as _time

        num_nodes = 4000
        graph = ExecutionGraph()
        root = graph.add_compute("root", device=1, duration=1.0)
        for i in range(num_nodes):
            graph.add_compute(f"fan{i}", device=1, duration=0.5,
                              deps=[root.node_id])
        started = _time.perf_counter()
        result = SystemSimulator(build_topology(1, 1)).simulate(graph)
        elapsed = _time.perf_counter() - started
        assert result.makespan == pytest.approx(1.0 + 0.5 * num_nodes)
        assert len(result.node_timings) == num_nodes + 1
        # FIFO: fan-out nodes start in creation order, back to back.
        fan_timings = [t for t in result.node_timings if t.name.startswith("fan")]
        names_in_start_order = [t.name for t in sorted(fan_timings, key=lambda t: t.start)]
        assert names_in_start_order == [f"fan{i}" for i in range(num_nodes)]
        # Loose wall-clock bound: the quadratic version is far slower.
        assert elapsed < 10.0

    @given(durations=st.lists(st.floats(0.01, 1.0), min_size=1, max_size=15),
           devices=st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_makespan_bounds_random_chains(self, durations, devices):
        """Makespan lies between the critical path and the serial sum."""
        graph = ExecutionGraph()
        prev_ids = []
        for i, duration in enumerate(durations):
            node = graph.add_compute(f"n{i}", device=1 + (i % devices), duration=duration,
                                     deps=prev_ids[-1:] if i % 3 == 0 and prev_ids else [])
            prev_ids.append(node.node_id)
        result = SystemSimulator(build_topology(max(devices, 1), 1)).simulate(graph)
        assert result.makespan <= sum(durations) + 1e-6
        assert result.makespan >= max(durations) - 1e-9
