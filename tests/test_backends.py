"""Determinism suite: backends and cluster engines must be bit-identical.

The cluster loop's parallel fan-out is only admissible because the replica
simulations are deterministic and independent between arrivals, and the
event-driven engine's skipped advances are only admissible because they are
provably no-ops; these tests pin both contracts across every routing
policy, under autoscaling, on trace-replay workloads, and with
iteration-level memoization on and off.  "Bit-identical" covers everything
the cluster *simulated* — routing assignments, per-replica iteration
records, request latency milestones, SLO metrics, the scaling timeline.
Simulator-side wall clock is backend dependent; per-replica cache counters
can shift between backends (singleflight leadership is timing-dependent),
but cluster-wide hit/miss *totals* match the serial backend exactly, which
the shared-cache tests pin.
"""

import dataclasses

import pytest

from repro import (AutoscaleConfig, ClusterConfig, ClusterSimulator, ReplicaSpec,
                   ServingSimConfig, TraceReplayConfig, generate_trace)
from repro.bench import SAMPLE_TRACE
from repro.cluster import (ProcessPoolBackend, SerialBackend, available_backends,
                           available_routers, build_backend, register_backend)
from repro.workload import Request


def replica_config(**overrides):
    defaults = dict(model_name="gpt2", npu_num=1, npu_mem_gb=4.0)
    defaults.update(overrides)
    return ServingSimConfig(**defaults)


def bursty_trace(num_requests=12, seed=3):
    return generate_trace("alpaca", num_requests, arrival="poisson-burst",
                          rate_per_second=6.0, seed=seed)


def run_cluster(config, make_workload):
    """Run one cluster arm on a *fresh* workload.

    ``Request`` objects are mutated by the simulation, so each arm of a
    comparison must replay its own copy of the trace.
    """
    return ClusterSimulator(config).run(make_workload())


def assert_cluster_results_equal(a, b):
    """Assert two cluster runs simulated exactly the same thing."""
    assert a.routing == b.routing
    assert a.assignments == b.assignments
    assert a.replica_classes == b.replica_classes
    assert len(a.replica_results) == len(b.replica_results)
    for res_a, res_b in zip(a.replica_results, b.replica_results):
        assert res_a.iterations == res_b.iterations  # frozen dataclasses, exact
        req_a = sorted((r.request_id, r.arrival_time, r.first_token_time,
                        r.finish_time, r.generated_tokens, r.state)
                       for r in res_a.requests)
        req_b = sorted((r.request_id, r.arrival_time, r.first_token_time,
                        r.finish_time, r.generated_tokens, r.state)
                       for r in res_b.requests)
        assert req_a == req_b
    assert a.slo_metrics() == b.slo_metrics()
    assert a.scaling_timeline == b.scaling_timeline


class TestBackendRegistry:
    def test_builtin_backends_available(self):
        assert {"serial", "process-pool"} <= set(available_backends())
        assert isinstance(build_backend("serial"), SerialBackend)
        assert isinstance(build_backend("process-pool"), ProcessPoolBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            build_backend("gpu-farm")
        with pytest.raises(ValueError):
            ClusterSimulator(ClusterConfig(replica=replica_config(),
                                           execution_backend="gpu-farm"))
        with pytest.raises(ValueError):
            ClusterConfig(replica=replica_config(), execution_backend="")

    def test_register_custom_backend(self):
        class TaggedSerial(SerialBackend):
            name = "tagged-serial"

        register_backend("tagged-serial", TaggedSerial)
        try:
            assert "tagged-serial" in available_backends()
            config = ClusterConfig(num_replicas=2, replica=replica_config(),
                                   execution_backend="tagged-serial")
            result = ClusterSimulator(config).run(bursty_trace(4))
            assert len(result.finished_requests) == 4
        finally:
            from repro.cluster.backend import _BACKEND_FACTORIES
            _BACKEND_FACTORIES.pop("tagged-serial", None)

    def test_register_backend_rejects_empty_name(self):
        with pytest.raises(ValueError):
            register_backend("", SerialBackend)


class TestBackendDeterminism:
    @pytest.mark.parametrize("routing", sorted(available_routers()))
    def test_process_pool_matches_serial_across_routing_policies(self, routing):
        results = {}
        for backend in ("serial", "process-pool"):
            config = ClusterConfig(num_replicas=2, routing=routing,
                                   replica=replica_config(),
                                   execution_backend=backend)
            results[backend] = run_cluster(config, bursty_trace)
        assert_cluster_results_equal(results["serial"], results["process-pool"])
        assert len(results["serial"].finished_requests) == 12

    def test_process_pool_matches_serial_on_heterogeneous_fleet(self):
        results = {}
        for backend in ("serial", "process-pool"):
            config = ClusterConfig(
                routing="weighted-capacity",
                replicas=[ReplicaSpec(replica_config(), count=1, name="small"),
                          ReplicaSpec(replica_config(npu_num=4), count=1, name="large")],
                execution_backend=backend)
            results[backend] = run_cluster(
                config, lambda: bursty_trace(num_requests=16, seed=23))
        assert_cluster_results_equal(results["serial"], results["process-pool"])

    def test_process_pool_matches_serial_on_autoscaled_run(self):
        def diurnal_trace():
            return generate_trace("alpaca", 24, arrival="diurnal", rate_per_second=4.0,
                                  amplitude=0.8, period_seconds=20.0, seed=42)

        results = {}
        for backend in ("serial", "process-pool"):
            config = ClusterConfig(
                num_replicas=3, routing="slo-ttft", replica=replica_config(),
                autoscale=AutoscaleConfig(min_replicas=1, max_replicas=3,
                                          window_seconds=3.0,
                                          target_rate_per_replica=1.5,
                                          warmup_seconds=0.5, cooldown_seconds=1.0),
                execution_backend=backend)
            results[backend] = run_cluster(config, diurnal_trace)
        assert results["serial"].scaling_timeline, "scenario must actually scale"
        assert_cluster_results_equal(results["serial"], results["process-pool"])

    def test_process_pool_respects_iteration_cap(self):
        config = ClusterConfig(num_replicas=2, routing="round-robin",
                               replica=replica_config(),
                               execution_backend="process-pool")
        result = ClusterSimulator(config).run(bursty_trace(8, seed=1),
                                              max_iterations_per_replica=2)
        assert all(len(res.iterations) <= 2 for res in result.replica_results)


class TestMemoizationDeterminism:
    def test_reuse_on_off_identical_cluster_results(self):
        results = {}
        for reuse in (False, True):
            config = ClusterConfig(num_replicas=2, routing="least-outstanding",
                                   replica=replica_config(enable_iteration_reuse=reuse))
            results[reuse] = run_cluster(
                config, lambda: bursty_trace(num_requests=16, seed=9))
        assert_cluster_results_equal(results[False], results[True])
        hits = sum(r.iteration_cache_hits for r in results[True].replica_results)
        assert hits > 0
        assert all(r.iteration_cache_hits == 0
                   for r in results[False].replica_results)

    def test_reuse_with_process_pool_matches_serial(self):
        results = {}
        for backend in ("serial", "process-pool"):
            config = ClusterConfig(num_replicas=2, routing="round-robin",
                                   replica=replica_config(enable_iteration_reuse=True),
                                   execution_backend=backend)
            results[backend] = run_cluster(
                config, lambda: bursty_trace(num_requests=12, seed=5))
        assert_cluster_results_equal(results["serial"], results["process-pool"])

    def test_cache_shared_per_replica_class(self):
        fleet = [ReplicaSpec(replica_config(enable_iteration_reuse=True),
                             count=2, name="small"),
                 ReplicaSpec(replica_config(npu_num=4, enable_iteration_reuse=True),
                             count=2, name="large")]
        sim = ClusterSimulator(ClusterConfig(routing="round-robin", replicas=fleet))
        assert set(sim.iteration_caches) == {"small", "large"}
        small_a, small_b, large_a, large_b = sim.replicas
        assert small_a.simulator.iteration_cache is small_b.simulator.iteration_cache
        assert large_a.simulator.iteration_cache is large_b.simulator.iteration_cache
        assert (small_a.simulator.iteration_cache
                is not large_a.simulator.iteration_cache)

    def test_sibling_replicas_hit_each_others_entries(self):
        # Identical requests round-robined over two same-class replicas: the
        # second replica's whole trace replays the first's cache entries.
        config = ClusterConfig(num_replicas=2, routing="round-robin",
                               replica=replica_config(enable_iteration_reuse=True))
        requests = [Request(i, 24, 16, arrival_time=4.0 * i) for i in range(2)]
        result = ClusterSimulator(config).run(requests)
        second = result.replica_results[1]
        assert len(second.iterations) > 0
        assert second.iteration_cache_misses == 0
        assert second.iteration_cache_hits == len(second.iterations)

    def test_no_cache_without_reuse_flag(self):
        sim = ClusterSimulator(ClusterConfig(num_replicas=2,
                                             replica=replica_config()))
        assert sim.iteration_caches == {}
        assert all(r.simulator.iteration_cache is None for r in sim.replicas)

    def test_shared_cache_hit_totals_match_serial(self):
        """Singleflight restores serial's cross-replica hit rate under process-pool.

        Exactly one miss per unique iteration signature cluster-wide — the
        leader's — whichever backend runs it, so the *totals* agree exactly
        (which replica counted each hit can differ; that is timing).
        """
        totals = {}
        for backend in ("serial", "process-pool"):
            config = ClusterConfig(num_replicas=2, routing="round-robin",
                                   replica=replica_config(enable_iteration_reuse=True),
                                   execution_backend=backend)
            result = ClusterSimulator(config).run(
                [Request(i, 24, 28, arrival_time=2.0 * i) for i in range(8)])
            totals[backend] = (
                sum(r.iteration_cache_hits for r in result.replica_results),
                sum(r.iteration_cache_misses for r in result.replica_results))
        assert totals["process-pool"] == totals["serial"]
        hits, misses = totals["serial"]
        assert hits / (hits + misses) >= 0.8  # steady decode: reuse best case


class TestEngineDeterminism:
    """Event-driven == lockstep, under both backends, on every scenario shape."""

    ARMS = (("lockstep", "serial"), ("event-driven", "serial"),
            ("event-driven", "process-pool"))

    def run_arms(self, make_config, make_workload):
        results = []
        for engine, backend in self.ARMS:
            config = dataclasses.replace(make_config(), engine=engine,
                                         execution_backend=backend)
            results.append(ClusterSimulator(config).run(make_workload()))
        for other in results[1:]:
            assert_cluster_results_equal(results[0], other)
        return results[0]

    @pytest.mark.parametrize("routing", sorted(available_routers()))
    def test_engines_match_across_routing_policies(self, routing):
        base = self.run_arms(
            lambda: ClusterConfig(num_replicas=2, routing=routing,
                                  replica=replica_config()),
            bursty_trace)
        assert len(base.finished_requests) == 12

    def test_engines_match_on_autoscaled_run(self):
        def diurnal_trace():
            return generate_trace("alpaca", 24, arrival="diurnal",
                                  rate_per_second=4.0, amplitude=0.8,
                                  period_seconds=20.0, seed=42)

        base = self.run_arms(
            lambda: ClusterConfig(
                num_replicas=3, routing="slo-ttft", replica=replica_config(),
                autoscale=AutoscaleConfig(min_replicas=1, max_replicas=3,
                                          window_seconds=3.0,
                                          target_rate_per_replica=1.5,
                                          warmup_seconds=0.5,
                                          cooldown_seconds=1.0)),
            diurnal_trace)
        assert base.scaling_timeline, "scenario must actually scale"

    def test_engines_match_on_trace_replay_run(self):
        base = self.run_arms(
            lambda: ClusterConfig(
                num_replicas=2, routing="least-outstanding",
                replica=replica_config(),
                trace_replay=TraceReplayConfig(path=str(SAMPLE_TRACE),
                                               format="azure", rate_scale=2.0,
                                               window=(0.0, 30.0))),
            lambda: None)
        assert base.finished_requests

    @pytest.mark.parametrize("reuse", [False, True])
    def test_engines_match_with_and_without_cache(self, reuse):
        self.run_arms(
            lambda: ClusterConfig(num_replicas=2, routing="round-robin",
                                  replica=replica_config(
                                      enable_iteration_reuse=reuse)),
            lambda: bursty_trace(num_requests=10, seed=5))

    def test_event_driven_respects_iteration_cap(self):
        config = ClusterConfig(num_replicas=2, routing="round-robin",
                               replica=replica_config(), engine="event-driven",
                               execution_backend="process-pool")
        result = ClusterSimulator(config).run(bursty_trace(8, seed=1),
                                              max_iterations_per_replica=2)
        assert all(len(res.iterations) <= 2 for res in result.replica_results)


class TestLazyMasterReplicas:
    """Under process-pool the master must never build its own simulators."""

    def test_master_simulators_not_built_under_process_pool(self):
        config = ClusterConfig(num_replicas=2, routing="least-outstanding",
                               replica=replica_config(enable_iteration_reuse=True),
                               execution_backend="process-pool")
        sim = ClusterSimulator(config)
        assert all(r._simulator is None for r in sim.replicas)
        result = sim.run(bursty_trace(6, seed=2))
        assert len(result.finished_requests) == 6
        assert all(r._simulator is None for r in sim.replicas), \
            "process-pool run built redundant master-side simulators"

    def test_capability_signals_without_simulator(self):
        replica = ClusterSimulator(ClusterConfig(
            num_replicas=1, replica=replica_config())).replicas[0]
        assert replica.device_throughput_tflops > 0
        assert replica.kv_budget_bytes > 0
        assert replica.engine_kind == "npu"
        assert replica.model.name == "gpt2"
        assert replica._simulator is None, \
            "capability signals must derive from the config alone"
