"""Tests for the execution engine stack front-end and the result collector."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.results import IterationRecord, ServingResult
from repro.engine import (ExecutionEngineStack, HeterogeneousMapper, NPUEngine, PIMEngine,
                          SimulationCache)
from repro.models import BatchComposition, Phase, SequenceSpec, build_iteration_graph, get_model
from repro.system import DeviceType
from repro.workload import Request

MODEL = get_model("gpt2")


def iteration_graph(n_gen=3, ctx=64, n_init=0, prompt=32):
    sequences = [SequenceSpec(i, ctx, 1, Phase.GENERATION) for i in range(n_gen)]
    sequences += [SequenceSpec(100 + i, 0, prompt, Phase.INITIATION) for i in range(n_init)]
    return build_iteration_graph(MODEL, BatchComposition(sequences))


class TestExecutionEngineStack:
    def test_default_stack_estimates_every_operator(self):
        stack = ExecutionEngineStack()
        graph = iteration_graph()
        result = stack.simulate_iteration(graph)
        assert len(result.block_trace) == len(graph.block_operators)
        assert len(result.embedding_and_head_trace) == 2
        assert all(e.latency > 0 for e in result.block_trace)

    def test_cache_hits_on_second_identical_iteration(self):
        stack = ExecutionEngineStack()
        graph = iteration_graph()
        first = stack.simulate_iteration(graph)
        second = stack.simulate_iteration(graph)
        assert first.report.simulated_operators > 0
        assert second.report.simulated_operators == 0
        assert second.report.cached_operators == first.report.total_operators
        # Cached estimates are identical to freshly simulated ones.
        assert second.block_trace.total_latency == pytest.approx(first.block_trace.total_latency)

    def test_disabled_cache_re_simulates(self):
        stack = ExecutionEngineStack(cache=SimulationCache(enabled=False))
        graph = iteration_graph()
        stack.simulate_iteration(graph)
        second = stack.simulate_iteration(graph)
        assert second.report.simulated_operators > 0

    def test_heterogeneous_mapping_reaches_pim(self):
        stack = ExecutionEngineStack(
            engines={DeviceType.NPU: NPUEngine(), DeviceType.PIM: PIMEngine()},
            mapper=HeterogeneousMapper())
        result = stack.simulate_iteration(iteration_graph(n_gen=4))
        engines_used = {entry.engine for entry in result.block_trace}
        assert DeviceType.PIM in engines_used
        assert DeviceType.NPU in engines_used
        assert result.report.operators_by_engine[DeviceType.PIM] > 0

    def test_missing_engine_raises(self):
        stack = ExecutionEngineStack(mapper=HeterogeneousMapper())  # no PIM engine registered
        with pytest.raises(KeyError):
            stack.simulate_iteration(iteration_graph(n_gen=2))

    def test_register_engine(self):
        stack = ExecutionEngineStack()
        stack.register_engine(PIMEngine())
        assert DeviceType.PIM in stack.engines

    def test_sub_batch_traces_preserved(self):
        stack = ExecutionEngineStack()
        graph = iteration_graph(n_gen=4)
        lists = [graph.block_operators[:5], graph.block_operators[5:]]
        result = stack.simulate_iteration(graph, lists)
        assert len(result.sub_batch_traces) == 2
        assert len(result.sub_batch_traces[0]) == 5
        assert result.schedule.makespan > 0

    def test_reset_clears_cache_and_compiler(self):
        stack = ExecutionEngineStack()
        graph = iteration_graph()
        stack.simulate_iteration(graph)
        stack.reset()
        after_reset = stack.simulate_iteration(graph)
        assert after_reset.report.simulated_operators > 0
        assert after_reset.report.compile_report.compiled_operators > 0

    def test_attention_vs_non_attention_accounting(self):
        stack = ExecutionEngineStack(cache=SimulationCache(enabled=False))
        # Give every request a different context length so no two attention
        # operators share a shape (shape-sharing operators are legitimately
        # deduplicated by the cache when it is enabled).
        sequences = [SequenceSpec(i, 64 + i, 1, Phase.GENERATION) for i in range(5)]
        graph = build_iteration_graph(MODEL, BatchComposition(sequences))
        result = stack.simulate_iteration(graph)
        assert result.report.simulated_attention_operators == 3 * 5
        assert result.report.simulated_non_attention_operators > 0

    @given(n_gen=st.integers(1, 6), ctx=st.integers(16, 512))
    @settings(max_examples=10, deadline=None)
    def test_schedule_contains_every_block_operator(self, n_gen, ctx):
        stack = ExecutionEngineStack()
        graph = iteration_graph(n_gen=n_gen, ctx=ctx)
        result = stack.simulate_iteration(graph)
        assert len(result.schedule.scheduled) == len(graph.block_operators)


class TestServingResult:
    def _result(self, records):
        return ServingResult(model_name="gpt2", iterations=records)

    def _record(self, index, start, end, prompt=0, generated=1, requests=1):
        return IterationRecord(index=index, start_time=start, end_time=end,
                               latency=end - start, num_requests=requests,
                               prompt_tokens=prompt, generated_tokens=generated)

    def test_empty_result(self):
        result = self._result([])
        assert result.makespan == 0.0
        assert result.prompt_throughput == 0.0
        assert result.throughput_series() == []
        assert result.mean_end_to_end_latency() == 0.0

    def test_throughput_accounting(self):
        records = [self._record(0, 0.0, 1.0, prompt=100, generated=2),
                   self._record(1, 1.0, 2.0, prompt=0, generated=2)]
        result = self._result(records)
        assert result.makespan == pytest.approx(2.0)
        assert result.total_prompt_tokens == 100
        assert result.total_generated_tokens == 4
        assert result.prompt_throughput == pytest.approx(50.0)
        assert result.generation_throughput == pytest.approx(2.0)
        assert result.total_throughput == pytest.approx(52.0)

    def test_throughput_series_binning(self):
        records = [self._record(0, 0.0, 5.0, generated=10),
                   self._record(1, 5.0, 25.0, generated=20)]
        series = self._result(records).throughput_series(bin_seconds=10.0)
        assert len(series) == 3
        assert series[0].generation_throughput == pytest.approx(1.0)   # 10 tokens / 10 s
        assert series[2].generation_throughput == pytest.approx(2.0)   # 20 tokens / 10 s
        with pytest.raises(ValueError):
            self._result(records).throughput_series(bin_seconds=0)

    def test_request_latency_metrics(self):
        request = Request(0, 10, 2, arrival_time=1.0)
        request.record_prompt_done(2.0)
        request.record_generated_token(3.0)
        result = ServingResult(model_name="gpt2", requests=[request])
        assert result.mean_time_to_first_token() == pytest.approx(1.0)
        assert result.mean_end_to_end_latency() == pytest.approx(2.0)

    def test_tsv_outputs(self, tmp_path):
        records = [self._record(0, 0.0, 1.0, prompt=10, generated=1)]
        result = self._result(records)
        tput = result.write_throughput_tsv(tmp_path / "x-throughput.tsv", bin_seconds=1.0)
        simtime = result.write_simulation_time_tsv(tmp_path / "x-simulation-time.tsv")
        assert len(tput.read_text().splitlines()) >= 2
        lines = simtime.read_text().splitlines()
        assert lines[0].startswith("component")
        assert any(line.startswith("total") for line in lines)
