"""Documentation health checks: links, config reference, CLI examples.

Three guarantees keep the ``docs/`` tree honest:

* every intra-repo markdown link resolves to a real file (the CI docs job
  fails on broken links);
* the field tables in ``docs/configuration.md`` list exactly the fields of
  the config dataclasses they document — no silent drift in either
  direction;
* the ``cluster`` CLI commands quoted in the README quickstart actually run
  (so the documented ``--replica-spec`` / ``--autoscale`` examples stay in
  sync with the parser).
"""

import dataclasses
import re
import shlex
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.core.config import (AutoscaleConfig, ClusterConfig, ReplicaSpec,
                               ServingSimConfig, TraceReplayConfig)
from repro.workload.replay import TraceReplayArrivalGenerator

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"
TRACES_DIR = REPO_ROOT / "examples" / "traces"

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def markdown_files():
    files = sorted(REPO_ROOT.glob("*.md")) + sorted(DOCS_DIR.glob("**/*.md"))
    assert files, "no markdown files found — wrong repo root?"
    return files


class TestDocsTreeExists:
    @pytest.mark.parametrize("page", ["architecture.md", "cluster.md",
                                      "configuration.md", "correctness.md",
                                      "performance.md", "scheduler.md",
                                      "workloads.md"])
    def test_docs_pages_exist(self, page):
        assert (DOCS_DIR / page).is_file()

    def test_readme_links_every_docs_page(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for page in ("docs/architecture.md", "docs/cluster.md",
                     "docs/configuration.md", "docs/correctness.md",
                     "docs/performance.md", "docs/scheduler.md",
                     "docs/workloads.md"):
            assert page in readme, f"README does not link {page}"


class TestMarkdownLinks:
    def test_intra_repo_links_resolve(self):
        broken = []
        for md_file in markdown_files():
            for target in _LINK_RE.findall(md_file.read_text()):
                if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = (md_file.parent / path).resolve()
                if not resolved.exists():
                    broken.append(f"{md_file.relative_to(REPO_ROOT)}: {target}")
        assert not broken, "broken intra-repo markdown links:\n" + "\n".join(broken)

    def test_checker_catches_broken_links(self, tmp_path):
        # Sanity-check the checker itself: a link to a missing file must trip it.
        page = tmp_path / "page.md"
        page.write_text("[gone](missing.md)")
        target = _LINK_RE.findall(page.read_text())[0]
        assert not (page.parent / target).exists()


class TestConfigReferenceCompleteness:
    """docs/configuration.md must list exactly the dataclass fields."""

    DOCUMENTED_CLASSES = [ServingSimConfig, ClusterConfig, ReplicaSpec,
                          AutoscaleConfig, TraceReplayConfig]

    @staticmethod
    def table_fields(section_name):
        """First-column code spans of the table under ``## `section_name```."""
        text = (DOCS_DIR / "configuration.md").read_text()
        pattern = re.compile(rf"^## `{re.escape(section_name)}`$(.*?)(?=^## |\Z)",
                             re.M | re.S)
        match = pattern.search(text)
        assert match, f"configuration.md has no section for {section_name}"
        fields = set()
        for line in match.group(1).splitlines():
            cell = re.match(r"\|\s*`([A-Za-z_][A-Za-z0-9_]*)`\s*\|", line)
            if cell:
                fields.add(cell.group(1))
        return fields

    @pytest.mark.parametrize("config_class", DOCUMENTED_CLASSES,
                             ids=lambda c: c.__name__)
    def test_table_matches_dataclass(self, config_class):
        documented = self.table_fields(config_class.__name__)
        actual = {f.name for f in dataclasses.fields(config_class)}
        missing = actual - documented
        stale = documented - actual
        assert not missing, (f"{config_class.__name__} fields missing from "
                             f"docs/configuration.md: {sorted(missing)}")
        assert not stale, (f"docs/configuration.md documents fields "
                           f"{config_class.__name__} no longer has: {sorted(stale)}")


class TestReadmeClusterCommands:
    """The README's documented cluster CLI invocations must keep working."""

    @staticmethod
    def readme_cluster_commands():
        readme = (REPO_ROOT / "README.md").read_text()
        commands = []
        for block in re.findall(r"```bash\n(.*?)```", readme, re.S):
            joined = block.replace("\\\n", " ")
            for line in joined.splitlines():
                line = line.strip()
                if line.startswith("python -m repro.cli cluster"):
                    commands.append(shlex.split(line)[3:])  # drop python -m repro.cli
        return commands

    def test_readme_documents_replica_spec_and_autoscale(self):
        commands = self.readme_cluster_commands()
        flat = [flag for command in commands for flag in command]
        assert "--replica-spec" in flat, "README quickstart lost its --replica-spec example"
        assert "--autoscale" in flat, "README quickstart lost its --autoscale example"

    def test_documented_cluster_commands_run(self, capsys):
        commands = self.readme_cluster_commands()
        assert commands, "README quickstart has no cluster CLI examples"
        for argv in commands:
            assert cli_main(argv) == 0, f"documented command failed: {argv}"
            out = capsys.readouterr().out
            assert "requests finished" in out


class TestCorrectnessDocs:
    """docs/correctness.md must document every lint rule and invariant knob."""

    def test_every_registered_rule_is_documented(self):
        from repro.analysis.lint import RULES
        text = (DOCS_DIR / "correctness.md").read_text()
        for code in RULES:
            assert code in text, (f"docs/correctness.md does not document "
                                  f"lint rule {code}")

    def test_invariant_knobs_documented(self):
        text = (DOCS_DIR / "correctness.md").read_text()
        for needle in ("--check-invariants", "check_invariants",
                       "InvariantViolation", "noqa", "--write-baseline"):
            assert needle in text, (f"docs/correctness.md lost its {needle} "
                                    f"documentation")

    def test_configuration_reference_links_correctness(self):
        text = (DOCS_DIR / "configuration.md").read_text()
        assert "check_invariants" in text
        assert "correctness.md" in text


class TestTraceDocs:
    """The committed sample traces and the --trace* flag reference stay honest."""

    TRACE_FLAGS = ["--trace", "--trace-format", "--trace-rate-scale",
                   "--trace-window", "--trace-sample"]

    @pytest.mark.parametrize("filename,trace_format",
                             [("sample.tsv", "tsv"), ("sample_azure.csv", "azure")])
    def test_committed_sample_trace_parses(self, filename, trace_format):
        trace = TraceReplayArrivalGenerator(
            TRACES_DIR / filename, trace_format=trace_format).generate()
        assert len(trace) > 100, f"{filename} should hold a few hundred rows"
        assert trace.requests[0].arrival_time == 0.0

    def test_sample_formats_encode_the_same_trace(self):
        tsv = TraceReplayArrivalGenerator(TRACES_DIR / "sample.tsv", "tsv").generate()
        azure = TraceReplayArrivalGenerator(TRACES_DIR / "sample_azure.csv",
                                            "azure").generate()
        assert ([(r.input_tokens, r.output_tokens, round(r.arrival_time, 6))
                 for r in tsv]
                == [(r.input_tokens, r.output_tokens, round(r.arrival_time, 6))
                    for r in azure])

    def test_trace_flags_documented_in_configuration_reference(self):
        text = (DOCS_DIR / "configuration.md").read_text()
        for flag in self.TRACE_FLAGS:
            assert flag in text, (f"docs/configuration.md does not document "
                                  f"the {flag} flag")

    def test_trace_flags_documented_in_workloads_page(self):
        text = (DOCS_DIR / "workloads.md").read_text()
        for flag in self.TRACE_FLAGS:
            assert flag in text, (f"docs/workloads.md does not mention "
                                  f"the {flag} flag")
