"""Trace replay tests: format adapters, replay transforms, full-stack round trips."""

from pathlib import Path

import pytest

from repro import (ClusterConfig, ClusterSimulator, ServingSimConfig,
                   TraceReplayConfig)
from repro.bench import cluster_result_fingerprint
from repro.cli import main as cli_main
from repro.workload import (Request, TraceReplayArrivalGenerator, available_arrivals,
                            generate_trace, load_trace, read_azure_trace,
                            read_trace, trace_from_config, write_trace)
from repro.workload.generator import RequestTrace

REPO_ROOT = Path(__file__).resolve().parent.parent
SAMPLE_AZURE = REPO_ROOT / "examples" / "traces" / "sample_azure.csv"
SAMPLE_TSV = REPO_ROOT / "examples" / "traces" / "sample.tsv"


def write_azure_csv(path, rows, header="TIMESTAMP,ContextTokens,GeneratedTokens"):
    path.write_text("\n".join([header] + rows) + "\n")
    return path


def trace_signature(trace):
    return [(r.input_tokens, r.output_tokens, pytest.approx(r.arrival_time, abs=1e-6))
            for r in trace]


class TestAzureReader:
    def test_iso_timestamps_normalised_to_relative_seconds(self, tmp_path):
        path = write_azure_csv(tmp_path / "t.csv", [
            "2024-05-10 00:00:10.500000,32,8",
            "2024-05-10 00:00:12.000000,16,4",
        ])
        trace = read_azure_trace(path)
        assert [r.arrival_time for r in trace] == [0.0, 1.5]
        assert trace.requests[0].input_tokens == 32
        assert trace.arrival_process == "replay"

    def test_numeric_timestamps_accepted(self, tmp_path):
        path = write_azure_csv(tmp_path / "t.csv", ["100.0,10,5", "101.25,20,6"])
        trace = read_azure_trace(path)
        assert [r.arrival_time for r in trace] == [0.0, 1.25]

    def test_seven_digit_fractions_accepted(self, tmp_path):
        # The public Azure traces carry 7 fractional digits, which Python
        # 3.10's fromisoformat rejects without the trimming the reader does.
        path = write_azure_csv(tmp_path / "t.csv", [
            "2023-11-16T18:01:02.1234567,10,5",
            "2023-11-16T18:01:03.1234567,10,5",
        ])
        trace = read_azure_trace(path)
        assert trace.requests[1].arrival_time == pytest.approx(1.0)

    def test_column_order_and_extra_columns_ignored(self, tmp_path):
        path = write_azure_csv(tmp_path / "t.csv",
                               ["req-1,5,0.0,11", "req-2,6,2.0,12"],
                               header="RequestId,generatedtokens,timestamp,CONTEXTTOKENS")
        trace = read_azure_trace(path)
        assert trace.requests[0].input_tokens == 11
        assert trace.requests[0].output_tokens == 5
        assert trace.requests[1].arrival_time == 2.0

    def test_zero_token_rows_floored_to_one(self, tmp_path):
        path = write_azure_csv(tmp_path / "t.csv", ["0.0,0,0"])
        trace = read_azure_trace(path)
        assert trace.requests[0].input_tokens == 1
        assert trace.requests[0].output_tokens == 1

    def test_utc_offsets_respected_alongside_fractions(self, tmp_path):
        # +05:30 with fractional seconds: the offset digits must not be
        # scavenged into the fraction (they were, before the regex fix).
        path = write_azure_csv(tmp_path / "t.csv", [
            "2024-05-10 00:00:00.500000+05:30,10,5",
            "2024-05-09 18:30:01.500000Z,10,5",  # same instant + 1s, as UTC
        ])
        trace = read_azure_trace(path)
        assert trace.requests[1].arrival_time == pytest.approx(1.0)

    def test_blank_lines_do_not_shift_error_line_numbers(self, tmp_path):
        path = write_azure_csv(tmp_path / "t.csv",
                               ["5.0,10,5", "", "6.0,10,5", "4.0,10,5"])
        with pytest.raises(ValueError, match="line 5"):
            read_azure_trace(path)

    def test_missing_column_raises(self, tmp_path):
        path = write_azure_csv(tmp_path / "t.csv", ["0.0,10"],
                               header="TIMESTAMP,ContextTokens")
        with pytest.raises(ValueError, match="GeneratedTokens"):
            read_azure_trace(path)

    def test_non_monotonic_raises_with_line_number(self, tmp_path):
        path = write_azure_csv(tmp_path / "t.csv",
                               ["5.0,10,5", "6.0,10,5", "4.0,10,5"])
        with pytest.raises(ValueError, match="line 4"):
            read_azure_trace(path)

    def test_short_row_raises_with_line_number(self, tmp_path):
        path = write_azure_csv(tmp_path / "t.csv", ["0.0,10,5", "1.0,10"])
        with pytest.raises(ValueError, match="line 3"):
            read_azure_trace(path)

    def test_unparseable_timestamp_raises(self, tmp_path):
        path = write_azure_csv(tmp_path / "t.csv", ["yesterday,10,5"])
        with pytest.raises(ValueError, match="TIMESTAMP"):
            read_azure_trace(path)

    def test_bad_token_cell_names_the_line(self, tmp_path):
        path = write_azure_csv(tmp_path / "t.csv", ["0.0,10,5", "1.0,abc,5"])
        with pytest.raises(ValueError, match="line 3.*ContextTokens"):
            read_azure_trace(path)

    def test_non_finite_timestamp_rejected(self, tmp_path):
        # 'nan' passes float() but defeats the monotonicity check — it must
        # be rejected loudly, not poison every arrival time.
        path = write_azure_csv(tmp_path / "t.csv", ["nan,10,5", "1.0,10,5"])
        with pytest.raises(ValueError, match="finite"):
            read_azure_trace(path)

    def test_empty_and_header_only_files_raise(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(ValueError):
            read_azure_trace(empty)
        header_only = write_azure_csv(tmp_path / "h.csv", [])
        with pytest.raises(ValueError, match="no data rows"):
            read_azure_trace(header_only)

    def test_load_trace_dispatch(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            load_trace(SAMPLE_TSV, "parquet")
        assert load_trace(SAMPLE_AZURE, "azure").dataset == "sample_azure"


class TestReadTraceValidation:
    def test_arrival_process_label_preserved(self, tmp_path):
        trace = generate_trace("alpaca", 5, arrival="poisson", seed=1)
        path = write_trace(trace, tmp_path / "t.tsv")
        assert read_trace(path).arrival_process == "file"
        assert read_trace(path, arrival_process="poisson").arrival_process == "poisson"

    def test_non_monotonic_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("10\t20\t1.0\n10\t20\t2.0\n10\t20\t0.5\n")
        with pytest.raises(ValueError, match="line 3"):
            read_trace(path)

    def test_non_finite_arrival_time_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("10\t20\tnan\n10\t20\t1.0\n")
        with pytest.raises(ValueError, match="finite"):
            read_trace(path)

    def test_bad_cells_name_the_line(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("10\t20\t0.0\nten\t20\t1.0\n")
        with pytest.raises(ValueError, match="line 2"):
            read_trace(path)
        path.write_text("10\t20\t0.0\n10\t20\tlater\n")
        with pytest.raises(ValueError, match="line 2"):
            read_trace(path)

    def test_zero_token_rows_floored_like_the_azure_reader(self, tmp_path):
        path = tmp_path / "t.tsv"
        path.write_text("0\t0\t0.0\n10\t20\t1.0\n")
        trace = read_trace(path)
        assert trace.requests[0].input_tokens == 1
        assert trace.requests[0].output_tokens == 1


class TestReplayGenerator:
    def test_committed_sample_formats_are_equivalent(self):
        azure = TraceReplayArrivalGenerator(SAMPLE_AZURE, "azure").generate()
        tsv = TraceReplayArrivalGenerator(SAMPLE_TSV, "tsv").generate()
        assert len(azure) == len(tsv) > 100
        assert trace_signature(azure) == trace_signature(tsv)

    def test_replay_starts_at_zero(self):
        trace = TraceReplayArrivalGenerator(SAMPLE_AZURE, "azure").generate()
        assert trace.requests[0].arrival_time == 0.0

    def test_rate_scale_compresses_the_timeline(self):
        base = TraceReplayArrivalGenerator(SAMPLE_TSV).generate()
        fast = TraceReplayArrivalGenerator(SAMPLE_TSV, rate_scale=2.0).generate()
        assert fast.duration == pytest.approx(base.duration / 2.0)
        assert len(fast) == len(base)

    def test_window_slices_and_rezeros(self, tmp_path):
        path = tmp_path / "t.tsv"
        path.write_text("".join(f"10\t5\t{i}.0\n" for i in range(10)))
        trace = TraceReplayArrivalGenerator(path, window=(2.0, 6.0)).generate()
        assert [r.arrival_time for r in trace] == [0.0, 1.0, 2.0, 3.0]

    def test_sample_is_deterministic_and_order_preserving(self):
        a = TraceReplayArrivalGenerator(SAMPLE_TSV, sample=0.25, seed=5).generate()
        b = TraceReplayArrivalGenerator(SAMPLE_TSV, sample=0.25, seed=5).generate()
        other = TraceReplayArrivalGenerator(SAMPLE_TSV, sample=0.25, seed=6).generate()
        assert trace_signature(a) == trace_signature(b)
        assert trace_signature(a) != trace_signature(other)
        assert len(a) == 70  # floor(280 * 0.25)
        arrivals = [r.arrival_time for r in a]
        assert arrivals == sorted(arrivals)

    def test_length_clamping_to_model_limit_warns_and_counts(self):
        generator = TraceReplayArrivalGenerator(SAMPLE_TSV, max_seq_len=32)
        with pytest.warns(UserWarning, match="clamped"):
            trace = generator.generate()
        assert all(r.input_tokens + r.output_tokens <= 32 for r in trace)
        assert all(r.output_tokens >= 1 for r in trace)
        assert generator.last_clamp_count > 0

    def test_no_clamp_no_warning(self, recwarn):
        generator = TraceReplayArrivalGenerator(SAMPLE_TSV, max_seq_len=2048)
        generator.generate()
        assert generator.last_clamp_count == 0
        assert not [w for w in recwarn if issubclass(w.category, UserWarning)]

    def test_generate_cap(self):
        generator = TraceReplayArrivalGenerator(SAMPLE_TSV)
        assert len(generator.generate(10)) == 10
        assert len(generator.generate(10 ** 6)) == len(generator)
        with pytest.raises(ValueError):
            generator.generate(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceReplayArrivalGenerator(SAMPLE_TSV, rate_scale=0.0)
        with pytest.raises(ValueError):
            TraceReplayArrivalGenerator(SAMPLE_TSV, sample=0.0)
        with pytest.raises(ValueError):
            TraceReplayArrivalGenerator(SAMPLE_TSV, sample=1.5)
        with pytest.raises(ValueError):
            TraceReplayArrivalGenerator(SAMPLE_TSV, window=(5.0, 5.0))
        with pytest.raises(ValueError):
            TraceReplayArrivalGenerator(SAMPLE_TSV, max_seq_len=1)

    def test_generate_trace_registry_dispatch(self):
        assert "replay" in available_arrivals()
        trace = generate_trace("ignored", 8, arrival="replay",
                               trace_path=str(SAMPLE_AZURE), trace_format="azure")
        assert trace.arrival_process == "replay"
        assert len(trace) == 8
        with pytest.raises(ValueError, match="trace_path"):
            generate_trace("alpaca", 8, arrival="replay")


class TestTraceReplayConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceReplayConfig(path="")
        with pytest.raises(ValueError):
            TraceReplayConfig(path="t.tsv", format="parquet")
        with pytest.raises(ValueError):
            TraceReplayConfig(path="t.tsv", rate_scale=-1.0)
        with pytest.raises(ValueError):
            TraceReplayConfig(path="t.tsv", sample=2.0)
        with pytest.raises(ValueError):
            TraceReplayConfig(path="t.tsv", window=(3.0, 2.0))
        with pytest.raises(ValueError):
            TraceReplayConfig(path="t.tsv", max_requests=0)

    def test_trace_from_config_applies_transforms(self):
        config = TraceReplayConfig(path=str(SAMPLE_AZURE), format="azure",
                                   rate_scale=2.0, max_requests=12)
        with pytest.warns(UserWarning, match="clamped"):
            trace = trace_from_config(config, max_seq_len=48)
        assert len(trace) == 12
        assert all(r.input_tokens + r.output_tokens <= 48 for r in trace)


def replica_config(**overrides):
    defaults = dict(model_name="gpt2", npu_num=1, npu_mem_gb=4.0)
    defaults.update(overrides)
    return ServingSimConfig(**defaults)


def exact_requests(num_requests=10):
    """Requests whose arrival times survive the TSV's 6-decimal round trip.

    Multiples of 1/8 are exact in binary and in 6-decimal text, so the
    file-replayed trace is bit-identical to the in-memory one — a
    requirement for fingerprint equality, not just approximate agreement.
    """
    return [Request(i, input_tokens=8 + 3 * i, output_tokens=4 + (i % 3),
                    arrival_time=0.125 * (i // 2))
            for i in range(num_requests)]


class TestFullStackRoundTrip:
    """write_trace -> read_trace -> ClusterSimulator must equal the in-memory run."""

    @pytest.mark.parametrize("backend", ["serial", "process-pool"])
    def test_tsv_round_trip_fingerprints_match(self, tmp_path, backend):
        path = write_trace(
            RequestTrace(requests=exact_requests(), dataset="t", arrival_process="file"),
            tmp_path / "trace.tsv")

        def config():
            return ClusterConfig(num_replicas=2, routing="least-outstanding",
                                 execution_backend=backend,
                                 replica=replica_config())

        # Requests are mutated by a run: each arm gets a fresh workload.
        in_memory = ClusterSimulator(config()).run(exact_requests())
        from_file = ClusterSimulator(config()).run(read_trace(path))
        assert (cluster_result_fingerprint(in_memory)
                == cluster_result_fingerprint(from_file))

    def test_azure_round_trip_fingerprints_match(self, tmp_path):
        requests = exact_requests()
        rows = [f"{r.arrival_time},{r.input_tokens},{r.output_tokens}"
                for r in requests]
        path = write_azure_csv(tmp_path / "trace.csv", rows,
                               header="TIMESTAMP,ContextTokens,GeneratedTokens")

        config = ClusterConfig(num_replicas=2, routing="round-robin",
                               replica=replica_config())
        in_memory = ClusterSimulator(config).run(exact_requests())
        from_file = ClusterSimulator(config).run(read_azure_trace(path))
        assert (cluster_result_fingerprint(in_memory)
                == cluster_result_fingerprint(from_file))


class TestClusterReplayIntegration:
    def test_run_without_workload_requires_trace_replay(self):
        simulator = ClusterSimulator(ClusterConfig(replica=replica_config()))
        with pytest.raises(ValueError, match="trace_replay"):
            simulator.run()

    def test_config_driven_replay_runs_and_scales_up(self):
        from repro import AutoscaleConfig
        config = ClusterConfig(
            num_replicas=4, routing="least-outstanding",
            replica=replica_config(),
            autoscale=AutoscaleConfig(min_replicas=1, max_replicas=4,
                                      window_seconds=2.0, target_rate_per_replica=2.0,
                                      warmup_seconds=0.2, cooldown_seconds=0.5),
            trace_replay=TraceReplayConfig(path=str(SAMPLE_AZURE), format="azure",
                                           rate_scale=4.0, max_requests=48))
        result = ClusterSimulator(config).run()
        assert len(result.finished_requests) == 48
        # Replayed bursts must push the autoscaler off its 1-replica floor —
        # the step-change scale-up path the smooth diurnal ramp never takes.
        assert any(e.action == "scale-up" for e in result.scaling_timeline)


class TestReplayCLI:
    def test_cluster_subcommand_replays_azure_trace(self, capsys):
        exit_code = cli_main([
            "cluster", "--trace", str(SAMPLE_AZURE), "--trace-format", "azure",
            "--trace-sample", "0.2", "--model-name", "gpt2", "--npu-num", "1",
            "--npu-mem", "4", "--backend", "process-pool"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "requests finished     : 56/56" in out

    def test_flat_interface_replays_tsv_trace(self, capsys):
        exit_code = cli_main([
            "--trace", str(SAMPLE_TSV), "--trace-window", "0:20",
            "--model-name", "gpt2", "--npu-num", "1", "--npu-mem", "4"])
        assert exit_code == 0
        assert "requests" in capsys.readouterr().out

    def test_invalid_trace_window_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["cluster", "--trace", str(SAMPLE_TSV),
                      "--trace-window", "nonsense"])
        assert "start:end" in capsys.readouterr().err

    def test_missing_trace_file_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["cluster", "--trace", "no/such/trace.csv"])
        assert "does not exist" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            cli_main(["--trace", "no/such/trace.tsv"])
        assert "does not exist" in capsys.readouterr().err

    def test_invalid_sample_and_rate_scale_are_usage_errors(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["cluster", "--trace", str(SAMPLE_TSV),
                      "--trace-sample", "2"])
        assert "(0, 1]" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            cli_main(["cluster", "--trace", str(SAMPLE_TSV),
                      "--trace-rate-scale", "-1"])
        assert "positive" in capsys.readouterr().err
