"""Tests for the ``repro lint`` static-analysis pass.

Every REP rule gets at least one true-positive fixture (the hazard is
reported with file:line and rule code) and one false-positive fixture (the
safe spelling of the same pattern stays clean), plus coverage of the
``# repro: noqa`` suppressions, the baseline workflow and the CLI
subcommand.
"""

import json
import textwrap

import pytest

from repro.analysis.lint import (DEFAULT_BASELINE_NAME, LintError, lint_file,
                                 lint_paths, load_baseline, lint_main,
                                 split_by_baseline, write_baseline)
from repro.analysis.lint.engine import module_name_of, parse_module
from repro.analysis.lint.rules import RULES
from repro.cli import main as cli_main


def lint_snippet(tmp_path, source, name="snippet.py", select=None):
    """Write a fixture module and lint it; returns the findings."""
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_file(path, select=select)


def codes(findings):
    return [f.code for f in findings]


class TestRuleRegistry:
    def test_all_six_rules_registered(self):
        assert sorted(RULES) == ["REP001", "REP002", "REP003",
                                 "REP004", "REP005", "REP006"]

    def test_findings_carry_file_line_and_code(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import time
            now = time.time()
            """)
        assert len(findings) == 1
        rendered = findings[0].format()
        assert "snippet.py:2:" in rendered and "REP001" in rendered


class TestREP001WallClock:
    def test_true_positive_time_time(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import time
            def clock():
                return time.time()
            """)
        assert codes(findings) == ["REP001"]
        assert findings[0].line == 3

    def test_true_positive_aliased_perf_counter(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            from time import perf_counter as pc
            start = pc()
            """)
        assert codes(findings) == ["REP001"]

    def test_true_positive_datetime_now(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            from datetime import datetime
            stamp = datetime.now()
            """)
        assert codes(findings) == ["REP001"]

    def test_false_positive_time_sleep_is_clean(self, tmp_path):
        assert lint_snippet(tmp_path, """\
            import time
            time.sleep(0.1)
            """) == []

    def test_false_positive_allowlisted_timing_module(self, tmp_path):
        # The same wall-clock read inside repro.bench (a module whose job is
        # host timing) must not be flagged.
        (tmp_path / "repro").mkdir()
        (tmp_path / "repro" / "__init__.py").write_text("")
        findings = lint_snippet(tmp_path, """\
            import time
            def measure():
                return time.perf_counter()
            """, name="repro/bench.py")
        assert findings == []

    def test_unrelated_local_function_named_time_is_clean(self, tmp_path):
        # A locally defined `time()` is not the stdlib's; no import, no match.
        assert lint_snippet(tmp_path, """\
            def time():
                return 0.0
            t = time()
            """) == []


class TestREP002UnseededRandomness:
    def test_true_positive_module_level_random(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import random
            jitter = random.random()
            """)
        assert codes(findings) == ["REP002"]

    def test_true_positive_numpy_module_level(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import numpy as np
            noise = np.random.rand(4)
            """)
        assert codes(findings) == ["REP002"]

    def test_true_positive_unseeded_default_rng(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import numpy as np
            rng = np.random.default_rng()
            """)
        assert codes(findings) == ["REP002"]
        assert "seed" in findings[0].message

    def test_false_positive_seeded_default_rng(self, tmp_path):
        assert lint_snippet(tmp_path, """\
            import numpy as np
            rng = np.random.default_rng(1234)
            draws = rng.random(10)
            """) == []

    def test_false_positive_seeded_random_instance(self, tmp_path):
        assert lint_snippet(tmp_path, """\
            import random
            rng = random.Random(7)
            value = rng.random()
            """) == []


class TestREP003UnorderedIteration:
    def test_true_positive_for_over_set_literal(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            for item in {"b", "a"}:
                print(item)
            """)
        assert codes(findings) == ["REP003"]

    def test_true_positive_for_over_set_typed_name(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            def run(items):
                pending = set(items)
                for item in pending:
                    print(item)
            """)
        assert codes(findings) == ["REP003"]

    def test_true_positive_list_of_set(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            def order(ids):
                unique = set(ids)
                return list(unique)
            """)
        assert codes(findings) == ["REP003"]

    def test_true_positive_unsorted_listdir(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import os
            def files(root):
                return [f for f in os.listdir(root)]
            """)
        assert codes(findings) == ["REP003"]

    def test_true_positive_unsorted_rglob(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            def modules(root):
                for path in root.rglob("*.py"):
                    yield path
            """)
        assert codes(findings) == ["REP003"]

    def test_false_positive_sorted_listdir(self, tmp_path):
        assert lint_snippet(tmp_path, """\
            import os
            def files(root):
                return sorted(os.listdir(root))
            """) == []

    def test_false_positive_sorted_generator_over_rglob(self, tmp_path):
        # sorted() one level up through a comprehension still restores order.
        assert lint_snippet(tmp_path, """\
            def modules(root):
                return sorted(p for p in root.rglob("*.py") if p.is_file())
            """) == []

    def test_false_positive_iterating_a_list(self, tmp_path):
        assert lint_snippet(tmp_path, """\
            def run(items):
                ordered = list(items)
                for item in ordered:
                    print(item)
            """) == []

    def test_false_positive_membership_and_len_of_set(self, tmp_path):
        # Order-insensitive uses of a set are fine.
        assert lint_snippet(tmp_path, """\
            def run(items):
                seen = set(items)
                return len(seen), ("a" in seen)
            """) == []


class TestREP004IdentityKeys:
    def test_true_positive_id_as_dict_key(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            cache = {}
            def remember(obj, value):
                cache[id(obj)] = value
            """)
        assert codes(findings) == ["REP004"]

    def test_true_positive_id_into_set_add(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            seen = set()
            def visit(node):
                seen.add(id(node))
            """)
        assert codes(findings) == ["REP004"]

    def test_true_positive_id_as_heap_tiebreaker(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import heapq
            def enqueue(heap, priority, task):
                heapq.heappush(heap, (priority, id(task), task))
            """)
        assert codes(findings) == ["REP004"]

    def test_false_positive_id_in_debug_output(self, tmp_path):
        # id() for display only never keys anything.
        assert lint_snippet(tmp_path, """\
            def debug(obj):
                print(f"object at {id(obj):#x}")
            """) == []

    def test_false_positive_keying_by_object_itself(self, tmp_path):
        assert lint_snippet(tmp_path, """\
            cache = {}
            def remember(obj, value):
                cache[obj] = value
            """) == []


class TestREP005UnpicklablePayloads:
    def test_true_positive_lambda_into_send(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            def ship(conn):
                conn.send(lambda: 1)
            """)
        assert codes(findings) == ["REP005"]

    def test_true_positive_lambda_name_into_process_target(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            from multiprocessing import Process
            def launch():
                work = lambda: 42
                return Process(target=work)
            """)
        assert codes(findings) == ["REP005"]

    def test_true_positive_nested_def_into_pool(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            def launch(pool, items):
                def work(item):
                    return item * 2
                return pool.map(work, items)
            """)
        assert codes(findings) == ["REP005"]

    def test_false_positive_module_level_target(self, tmp_path):
        assert lint_snippet(tmp_path, """\
            from multiprocessing import Process
            def work():
                return 42
            def launch():
                return Process(target=work)
            """) == []

    def test_false_positive_plain_data_payload(self, tmp_path):
        assert lint_snippet(tmp_path, """\
            def ship(conn, signature, entry):
                conn.send(("put", signature, entry))
            """) == []


class TestREP006LockDiscipline:
    @staticmethod
    def guarded_class(method_lines):
        header = textwrap.dedent("""\
            import threading

            class Cache:
                _LOCK_GUARDED = ("_entries",)

                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}
            """)
        body = textwrap.indent(textwrap.dedent(method_lines), "    ")
        return header + "\n" + body

    def test_true_positive_unlocked_access(self, tmp_path):
        findings = lint_snippet(tmp_path, self.guarded_class("""\
            def size(self):
                return len(self._entries)
            """))
        assert codes(findings) == ["REP006"]
        assert "Cache._entries" in findings[0].message
        assert "size()" in findings[0].message

    def test_false_positive_access_under_lock(self, tmp_path):
        assert lint_snippet(tmp_path, self.guarded_class("""\
            def size(self):
                with self._lock:
                    return len(self._entries)
            """)) == []

    def test_false_positive_lock_held_documented_method(self, tmp_path):
        assert lint_snippet(tmp_path, self.guarded_class('''\
            def _size_locked(self):
                """Lock-held: caller holds self._lock."""
                return len(self._entries)
            ''')) == []

    def test_init_is_exempt(self, tmp_path):
        # The fixture's __init__ assigns self._entries outside any lock and
        # must not be flagged (the object is unpublished until it returns).
        findings = lint_snippet(tmp_path, self.guarded_class("""\
            def noop(self):
                return None
            """))
        assert findings == []

    def test_undeclared_class_is_not_checked(self, tmp_path):
        assert lint_snippet(tmp_path, """\
            class Plain:
                def __init__(self):
                    self._entries = {}
                def size(self):
                    return len(self._entries)
            """) == []


class TestNoqaSuppression:
    def test_bare_noqa_suppresses_all_codes(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import time
            now = time.time()  # repro: noqa
            """)
        assert findings == []

    def test_named_noqa_suppresses_only_named_rule(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import time
            now = time.time()  # repro: noqa[REP001]
            """)
        assert findings == []

    def test_wrong_code_noqa_does_not_suppress(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import time
            now = time.time()  # repro: noqa[REP003]
            """)
        assert codes(findings) == ["REP001"]


class TestSelectIgnore:
    SOURCE = """\
        import time, random
        now = time.time()
        jitter = random.random()
        """

    def test_select_runs_only_named_rules(self, tmp_path):
        findings = lint_snippet(tmp_path, self.SOURCE, select=["REP002"])
        assert codes(findings) == ["REP002"]

    def test_unknown_code_is_an_error(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("x = 1\n")
        with pytest.raises(LintError, match="REP999"):
            lint_file(path, select=["REP999"])


class TestBaselineWorkflow:
    def test_round_trip_splits_old_from_new(self, tmp_path):
        findings = lint_snippet(tmp_path, """\
            import time
            now = time.time()
            """)
        baseline_path = write_baseline(tmp_path / "baseline.json", findings)
        baseline = load_baseline(baseline_path)
        new, baselined = split_by_baseline(findings, baseline)
        assert new == [] and len(baselined) == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == set()

    def test_malformed_baseline_is_an_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "something-else/v9", "findings": []}')
        with pytest.raises(LintError, match="schema"):
            load_baseline(bad)


class TestModuleNameResolution:
    def test_package_file_resolves_dotted(self, tmp_path):
        (tmp_path / "pkg" / "sub").mkdir(parents=True)
        (tmp_path / "pkg" / "__init__.py").write_text("")
        (tmp_path / "pkg" / "sub" / "__init__.py").write_text("")
        target = tmp_path / "pkg" / "sub" / "mod.py"
        target.write_text("x = 1\n")
        assert module_name_of(target) == "pkg.sub.mod"
        assert parse_module(target).module_name == "pkg.sub.mod"

    def test_loose_file_resolves_to_stem(self, tmp_path):
        target = tmp_path / "script.py"
        target.write_text("x = 1\n")
        assert module_name_of(target) == "script"


class TestLintCLI:
    @staticmethod
    def write_dirty(tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nnow = time.time()\n")
        return dirty

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert lint_main([str(clean)]) == 0

    def test_findings_exit_one_with_location(self, tmp_path, capsys):
        dirty = self.write_dirty(tmp_path)
        assert lint_main([str(dirty), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "dirty.py:2:" in out and "REP001" in out

    def test_json_format(self, tmp_path, capsys):
        dirty = self.write_dirty(tmp_path)
        assert lint_main([str(dirty), "--no-baseline", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["code"] == "REP001"
        assert payload["findings"][0]["line"] == 2

    def test_write_then_respect_baseline(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        self.write_dirty(tmp_path)
        assert lint_main(["dirty.py", "--write-baseline"]) == 0
        assert (tmp_path / DEFAULT_BASELINE_NAME).is_file()
        capsys.readouterr()
        assert lint_main(["dirty.py"]) == 0  # baselined, not new
        assert "baselined" in capsys.readouterr().out
        assert lint_main(["dirty.py", "--no-baseline"]) == 1

    def test_unknown_rule_code_exits_two(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert lint_main([str(clean), "--select", "REP999"]) == 2

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope.py")]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out

    def test_dispatched_from_main_cli(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert cli_main(["lint", str(clean)]) == 0


class TestRepositoryIsClean:
    def test_src_tree_has_no_findings(self):
        from pathlib import Path
        repo_root = Path(__file__).resolve().parent.parent
        findings = lint_paths([repo_root / "src"], relative_to=repo_root)
        assert findings == [], ("repro lint src/ must ship clean:\n"
                                + "\n".join(f.format() for f in findings))

    def test_committed_baseline_is_empty(self):
        from pathlib import Path
        repo_root = Path(__file__).resolve().parent.parent
        baseline = load_baseline(repo_root / DEFAULT_BASELINE_NAME)
        assert baseline == set(), "the committed lint baseline must stay empty"
