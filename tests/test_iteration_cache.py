"""Unit tests for iteration-level memoization (the reuse hierarchy's top level)."""

import dataclasses

import pytest

from repro import LLMServingSim, ServingSimConfig
from repro.engine import (EngineStackReport, IterationCacheEntry, IterationReuseCache,
                          iteration_signature)
from repro.models import BatchComposition, Phase, SequenceSpec
from repro.scheduler.kv_cache import KVMemoryEvent, KVMemoryEventType
from repro.workload import Request


def small_config(**overrides):
    defaults = dict(model_name="gpt2", npu_num=1, npu_mem_gb=4.0)
    defaults.update(overrides)
    return ServingSimConfig(**defaults)


def steady_requests(n, input_tokens=24, output_tokens=16, gap=2.0):
    return [Request(i, input_tokens, output_tokens, arrival_time=gap * i)
            for i in range(n)]


class TestIterationSignature:
    def test_ignores_request_ids(self):
        batch_a = BatchComposition([SequenceSpec(1, 32, 1, Phase.GENERATION),
                                    SequenceSpec(2, 0, 16, Phase.INITIATION)])
        batch_b = BatchComposition([SequenceSpec(7, 32, 1, Phase.GENERATION),
                                    SequenceSpec(9, 0, 16, Phase.INITIATION)])
        assert iteration_signature(batch_a) == iteration_signature(batch_b)

    def test_sensitive_to_geometry(self):
        base = BatchComposition([SequenceSpec(0, 32, 1, Phase.GENERATION)])
        longer = BatchComposition([SequenceSpec(0, 33, 1, Phase.GENERATION)])
        other_phase = BatchComposition([SequenceSpec(0, 32, 1, Phase.INITIATION)])
        assert iteration_signature(base) != iteration_signature(longer)
        assert iteration_signature(base) != iteration_signature(other_phase)

    def test_sensitive_to_memory_events_and_partitioning(self):
        batch = BatchComposition([SequenceSpec(0, 32, 1, Phase.GENERATION)])
        evict = KVMemoryEvent(KVMemoryEventType.EVICT, request_id=5, num_bytes=1e6)
        reload = KVMemoryEvent(KVMemoryEventType.RELOAD, request_id=6, num_bytes=1e6)
        assert iteration_signature(batch) != iteration_signature(batch, [evict])
        assert iteration_signature(batch, [evict]) != iteration_signature(batch, [reload])
        # ...but the *owner* of the migration does not matter, only the payload.
        evict_other = KVMemoryEvent(KVMemoryEventType.EVICT, request_id=9, num_bytes=1e6)
        assert iteration_signature(batch, [evict]) == iteration_signature(batch, [evict_other])
        assert (iteration_signature(batch, num_sub_batches=1)
                != iteration_signature(batch, num_sub_batches=2))


class TestIterationReuseCache:
    def _entry(self, latency=1.0):
        return IterationCacheEntry(latency=latency, engine_report=EngineStackReport())

    def test_lookup_store_and_stats(self):
        cache = IterationReuseCache()
        signature = ("sig",)
        assert cache.lookup(signature) is None
        cache.store(signature, self._entry(2.5))
        hit = cache.lookup(signature)
        assert hit is not None and hit.latency == 2.5
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert len(cache) == 1

    def test_disabled_cache_never_hits_but_counts(self):
        cache = IterationReuseCache(enabled=False)
        cache.store(("sig",), self._entry())
        assert cache.lookup(("sig",)) is None
        assert len(cache) == 0
        assert cache.stats.misses == 1

    def test_max_entries_evicts_oldest(self):
        cache = IterationReuseCache(max_entries=2)
        for i in range(3):
            cache.store((i,), self._entry(float(i)))
        assert len(cache) == 2
        assert cache.lookup((0,)) is None          # evicted
        assert cache.lookup((2,)).latency == 2.0   # retained

    def test_clear_resets_everything(self):
        cache = IterationReuseCache()
        cache.store(("sig",), self._entry())
        cache.lookup(("sig",))
        cache.clear()
        assert len(cache) == 0 and cache.stats.lookups == 0

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            IterationReuseCache(max_entries=0)


class TestSimulatorMemoization:
    def test_on_off_produce_identical_latencies(self):
        on = LLMServingSim(small_config(enable_iteration_reuse=True)).run(
            steady_requests(5))
        off = LLMServingSim(small_config()).run(steady_requests(5))
        assert [r.latency for r in on.iterations] == [r.latency for r in off.iterations]
        assert [(r.start_time, r.end_time) for r in on.iterations] == \
               [(r.start_time, r.end_time) for r in off.iterations]
        assert on.iteration_cache_hits > 0
        assert off.iteration_cache_hits == 0 and off.iteration_cache_misses == 0
        assert off.iteration_cache_hit_rate == 0.0

    def test_steady_decode_hit_rate_over_half(self):
        result = LLMServingSim(small_config(enable_iteration_reuse=True)).run(
            steady_requests(6))
        assert result.iteration_cache_hit_rate >= 0.5

    def test_modeled_simulation_time_shrinks_with_reuse(self):
        on = LLMServingSim(small_config(enable_iteration_reuse=True)).run(
            steady_requests(5))
        off = LLMServingSim(small_config()).run(steady_requests(5))
        assert on.modeled_simulation_time.total < off.modeled_simulation_time.total

    def test_simtime_tracker_counts_cached_iterations(self):
        simulator = LLMServingSim(small_config(enable_iteration_reuse=True))
        result = simulator.run(steady_requests(4))
        assert simulator.simtime.iteration_cache_hits == result.iteration_cache_hits
        assert simulator.simtime.iterations == len(result.iterations)

    def test_hit_flags_last_engine_report(self):
        simulator = LLMServingSim(small_config(enable_iteration_reuse=True))
        simulator.run(steady_requests(3))
        # The final iterations replay request 2's decode trace from cache.
        assert simulator.last_engine_report.served_from_iteration_cache

    def test_cache_shared_between_same_config_simulators(self):
        cache = IterationReuseCache()
        config = small_config(enable_iteration_reuse=True)
        first = LLMServingSim(config, iteration_cache=cache)
        first.run(steady_requests(1))
        second = LLMServingSim(dataclasses.replace(config), iteration_cache=cache)
        result = second.run(steady_requests(1))
        # Every iteration of the second simulator replays the first's trace.
        assert result.iteration_cache_misses == 0
        assert result.iteration_cache_hits == len(result.iterations)

    def test_private_cache_created_only_when_enabled(self):
        assert LLMServingSim(small_config()).iteration_cache is None
        assert LLMServingSim(small_config(enable_iteration_reuse=True)
                             ).iteration_cache is not None
