"""Unit tests for iteration-level memoization (the reuse hierarchy's top level)."""

import dataclasses
import pickle
import threading

import pytest

from repro import LLMServingSim, ServingSimConfig
from repro.engine import (EngineStackReport, IterationCacheEntry,
                          IterationCacheService, IterationReuseCache,
                          RemoteIterationCache, SharedIterationCache,
                          iteration_cache_file, iteration_signature,
                          load_iteration_cache, save_iteration_cache)
from repro.models import BatchComposition, Phase, SequenceSpec
from repro.scheduler.kv_cache import KVMemoryEvent, KVMemoryEventType
from repro.workload import Request


def small_config(**overrides):
    defaults = dict(model_name="gpt2", npu_num=1, npu_mem_gb=4.0)
    defaults.update(overrides)
    return ServingSimConfig(**defaults)


def steady_requests(n, input_tokens=24, output_tokens=16, gap=2.0):
    return [Request(i, input_tokens, output_tokens, arrival_time=gap * i)
            for i in range(n)]


class TestIterationSignature:
    def test_ignores_request_ids(self):
        batch_a = BatchComposition([SequenceSpec(1, 32, 1, Phase.GENERATION),
                                    SequenceSpec(2, 0, 16, Phase.INITIATION)])
        batch_b = BatchComposition([SequenceSpec(7, 32, 1, Phase.GENERATION),
                                    SequenceSpec(9, 0, 16, Phase.INITIATION)])
        assert iteration_signature(batch_a) == iteration_signature(batch_b)

    def test_sensitive_to_geometry(self):
        base = BatchComposition([SequenceSpec(0, 32, 1, Phase.GENERATION)])
        longer = BatchComposition([SequenceSpec(0, 33, 1, Phase.GENERATION)])
        other_phase = BatchComposition([SequenceSpec(0, 32, 1, Phase.INITIATION)])
        assert iteration_signature(base) != iteration_signature(longer)
        assert iteration_signature(base) != iteration_signature(other_phase)

    def test_sensitive_to_memory_events_and_partitioning(self):
        batch = BatchComposition([SequenceSpec(0, 32, 1, Phase.GENERATION)])
        evict = KVMemoryEvent(KVMemoryEventType.EVICT, request_id=5, num_bytes=1e6)
        reload = KVMemoryEvent(KVMemoryEventType.RELOAD, request_id=6, num_bytes=1e6)
        assert iteration_signature(batch) != iteration_signature(batch, [evict])
        assert iteration_signature(batch, [evict]) != iteration_signature(batch, [reload])
        # ...but the *owner* of the migration does not matter, only the payload.
        evict_other = KVMemoryEvent(KVMemoryEventType.EVICT, request_id=9, num_bytes=1e6)
        assert iteration_signature(batch, [evict]) == iteration_signature(batch, [evict_other])
        assert (iteration_signature(batch, num_sub_batches=1)
                != iteration_signature(batch, num_sub_batches=2))


class TestIterationReuseCache:
    def _entry(self, latency=1.0):
        return IterationCacheEntry(latency=latency, engine_report=EngineStackReport())

    def test_lookup_store_and_stats(self):
        cache = IterationReuseCache()
        signature = ("sig",)
        assert cache.lookup(signature) is None
        cache.store(signature, self._entry(2.5))
        hit = cache.lookup(signature)
        assert hit is not None and hit.latency == 2.5
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert len(cache) == 1

    def test_disabled_cache_never_hits_but_counts(self):
        cache = IterationReuseCache(enabled=False)
        cache.store(("sig",), self._entry())
        assert cache.lookup(("sig",)) is None
        assert len(cache) == 0
        assert cache.stats.misses == 1

    def test_max_entries_evicts_oldest(self):
        cache = IterationReuseCache(max_entries=2)
        for i in range(3):
            cache.store((i,), self._entry(float(i)))
        assert len(cache) == 2
        assert cache.lookup((0,)) is None          # evicted
        assert cache.lookup((2,)).latency == 2.0   # retained

    def test_clear_resets_everything(self):
        cache = IterationReuseCache()
        cache.store(("sig",), self._entry())
        cache.lookup(("sig",))
        cache.clear()
        assert len(cache) == 0 and cache.stats.lookups == 0

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            IterationReuseCache(max_entries=0)


def _entry(latency=1.0):
    return IterationCacheEntry(latency=latency, engine_report=EngineStackReport())


class TestSharedIterationCache:
    def test_plain_cache_surface_is_thread_safe_superset(self):
        cache = SharedIterationCache(max_entries=2)
        cache.store(("a",), _entry(1.0))
        assert cache.lookup(("a",)).latency == 1.0
        assert cache.peek(("a",)) is not None
        assert cache.stats.hits == 1 and cache.stats.misses == 0
        cache.store(("b",), _entry())
        cache.store(("c",), _entry())
        assert len(cache) == 2 and cache.peek(("a",)) is None  # evicted

    def test_acquire_hit_lead_and_store_release(self):
        cache = SharedIterationCache()
        entry, lead = cache.acquire(("sig",))
        assert entry is None and lead, "first misser must become the leader"
        cache.store(("sig",), _entry(2.0))
        entry, lead = cache.acquire(("sig",))
        assert not lead and entry.latency == 2.0
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_followers_block_until_leader_stores(self):
        cache = SharedIterationCache()
        _, lead = cache.acquire(("sig",))
        assert lead
        follower_results = []

        def follow():
            follower_results.append(cache.acquire(("sig",)))

        threads = [threading.Thread(target=follow) for _ in range(3)]
        for thread in threads:
            thread.start()
        assert not follower_results, "followers must wait on the leader"
        cache.store(("sig",), _entry(3.0))
        for thread in threads:
            thread.join(timeout=5.0)
        assert len(follower_results) == 3
        assert all(not lead and entry.latency == 3.0
                   for entry, lead in follower_results)
        # Singleflight accounting: one miss (the leader), everyone else hits.
        assert cache.stats.misses == 1 and cache.stats.hits == 3

    def test_abandon_promotes_a_waiter(self):
        cache = SharedIterationCache()
        _, lead = cache.acquire(("sig",))
        assert lead
        outcomes = []

        def follow():
            outcomes.append(cache.acquire(("sig",)))

        thread = threading.Thread(target=follow)
        thread.start()
        cache.abandon(("sig",))
        thread.join(timeout=5.0)
        assert len(outcomes) == 1
        entry, promoted = outcomes[0]
        assert entry is None and promoted, "a waiter must inherit leadership"

    def test_disabled_shared_cache_always_leads(self):
        cache = SharedIterationCache(enabled=False)
        entry, lead = cache.acquire(("sig",))
        assert entry is None and lead
        cache.store(("sig",), _entry())
        entry, lead = cache.acquire(("sig",))
        assert entry is None and lead, "disabled cache must never block"


class TestIterationCacheService:
    """The master-side pipe server workers reach shared caches through."""

    def run_service(self, num_clients=2, enabled=True):
        cache = SharedIterationCache(enabled=enabled)
        service = IterationCacheService({"default": cache})
        remotes = [RemoteIterationCache(service.register("default"))
                   for _ in range(num_clients)]
        service.start()
        return cache, service, remotes

    def test_miss_then_hit_through_the_pipe(self):
        cache, service, (remote, other) = self.run_service()
        try:
            assert remote.lookup(("sig",)) is None          # leads
            remote.store(("sig",), _entry(4.0))
            assert other.lookup(("sig",)).latency == 4.0    # served from master
            assert remote.stats.misses == 1 and other.stats.hits == 1
            assert cache.peek(("sig",)).latency == 4.0
            assert cache.stats.misses == 1 and cache.stats.hits == 1
        finally:
            service.close()

    def test_follower_blocks_until_leader_stores(self):
        cache, service, (leader, follower) = self.run_service()
        try:
            assert leader.lookup(("sig",)) is None
            results = []
            thread = threading.Thread(
                target=lambda: results.append(follower.lookup(("sig",))))
            thread.start()
            thread.join(timeout=0.3)
            assert thread.is_alive(), "follower must block on the in-flight leader"
            leader.store(("sig",), _entry(5.0))
            thread.join(timeout=5.0)
            assert results and results[0].latency == 5.0
            assert cache.stats.misses == 1 and cache.stats.hits == 1
        finally:
            service.close()

    def test_dead_leader_promotes_a_waiter(self):
        cache, service, (leader, follower) = self.run_service()
        try:
            assert leader.lookup(("sig",)) is None
            results = []
            thread = threading.Thread(
                target=lambda: results.append(follower.lookup(("sig",))))
            thread.start()
            leader.close()  # leader's process "dies" before storing
            thread.join(timeout=5.0)
            assert not thread.is_alive()
            assert results == [None], "the waiter must inherit leadership"
        finally:
            service.close()

    def test_register_after_start_rejected(self):
        cache, service, _ = self.run_service(num_clients=1)
        try:
            with pytest.raises(RuntimeError):
                service.register("default")
            with pytest.raises(ValueError):
                IterationCacheService({"default": cache}).register("other")
        finally:
            service.close()


class TestIterationCachePersistence:
    def test_save_load_roundtrip(self, tmp_path):
        config = small_config(enable_iteration_reuse=True)
        cache = IterationReuseCache()
        cache.store(("a",), _entry(1.5))
        cache.store(("b",), _entry(2.5))
        path = iteration_cache_file(tmp_path, config)
        assert path.parent == tmp_path and path.suffix == ".pkl"
        save_iteration_cache(cache, path, config)
        fresh = IterationReuseCache()
        assert load_iteration_cache(fresh, path, config) == 2
        assert fresh.peek(("a",)).latency == 1.5
        assert fresh.peek(("b",)).latency == 2.5
        assert fresh.stats.lookups == 0, "warm-start must not touch counters"

    def test_distinct_configs_get_distinct_files(self, tmp_path):
        small = small_config()
        large = small_config(npu_num=4)
        assert (iteration_cache_file(tmp_path, small)
                != iteration_cache_file(tmp_path, large))

    def test_config_mismatch_loads_nothing(self, tmp_path):
        config = small_config()
        cache = IterationReuseCache()
        cache.store(("a",), _entry())
        path = save_iteration_cache(cache, tmp_path / "cache.pkl", config)
        fresh = IterationReuseCache()
        assert load_iteration_cache(fresh, path, small_config(npu_num=4)) == 0
        assert len(fresh) == 0

    def test_corrupt_or_missing_file_degrades_to_cold_start(self, tmp_path):
        fresh = IterationReuseCache()
        assert load_iteration_cache(fresh, tmp_path / "absent.pkl",
                                    small_config()) == 0
        corrupt = tmp_path / "corrupt.pkl"
        corrupt.write_bytes(b"not a pickle")
        assert load_iteration_cache(fresh, corrupt, small_config()) == 0
        wrong_schema = tmp_path / "schema.pkl"
        wrong_schema.write_bytes(pickle.dumps({"schema": "other/v9"}))
        assert load_iteration_cache(fresh, wrong_schema, small_config()) == 0

    def test_cluster_cache_dir_warm_starts_sweeps(self, tmp_path):
        from repro import ClusterConfig, ClusterSimulator
        from repro.workload import Request

        config = ClusterConfig(
            num_replicas=2, routing="round-robin",
            replica=small_config(enable_iteration_reuse=True),
            cache_dir=str(tmp_path))
        workload = lambda: [Request(i, 24, 16, arrival_time=2.0 * i)
                            for i in range(4)]
        cold = ClusterSimulator(config).run(workload())
        warm = ClusterSimulator(config).run(workload())
        assert sum(r.iteration_cache_misses for r in cold.replica_results) > 0
        assert sum(r.iteration_cache_misses for r in warm.replica_results) == 0
        for a, b in zip(cold.replica_results, warm.replica_results):
            assert a.iterations == b.iterations, "warm-start changed results"


class TestSimulatorMemoization:
    def test_on_off_produce_identical_latencies(self):
        on = LLMServingSim(small_config(enable_iteration_reuse=True)).run(
            steady_requests(5))
        off = LLMServingSim(small_config()).run(steady_requests(5))
        assert [r.latency for r in on.iterations] == [r.latency for r in off.iterations]
        assert [(r.start_time, r.end_time) for r in on.iterations] == \
               [(r.start_time, r.end_time) for r in off.iterations]
        assert on.iteration_cache_hits > 0
        assert off.iteration_cache_hits == 0 and off.iteration_cache_misses == 0
        assert off.iteration_cache_hit_rate == 0.0

    def test_steady_decode_hit_rate_over_half(self):
        result = LLMServingSim(small_config(enable_iteration_reuse=True)).run(
            steady_requests(6))
        assert result.iteration_cache_hit_rate >= 0.5

    def test_modeled_simulation_time_shrinks_with_reuse(self):
        on = LLMServingSim(small_config(enable_iteration_reuse=True)).run(
            steady_requests(5))
        off = LLMServingSim(small_config()).run(steady_requests(5))
        assert on.modeled_simulation_time.total < off.modeled_simulation_time.total

    def test_simtime_tracker_counts_cached_iterations(self):
        simulator = LLMServingSim(small_config(enable_iteration_reuse=True))
        result = simulator.run(steady_requests(4))
        assert simulator.simtime.iteration_cache_hits == result.iteration_cache_hits
        assert simulator.simtime.iterations == len(result.iterations)

    def test_hit_flags_last_engine_report(self):
        simulator = LLMServingSim(small_config(enable_iteration_reuse=True))
        simulator.run(steady_requests(3))
        # The final iterations replay request 2's decode trace from cache.
        assert simulator.last_engine_report.served_from_iteration_cache

    def test_cache_shared_between_same_config_simulators(self):
        cache = IterationReuseCache()
        config = small_config(enable_iteration_reuse=True)
        first = LLMServingSim(config, iteration_cache=cache)
        first.run(steady_requests(1))
        second = LLMServingSim(dataclasses.replace(config), iteration_cache=cache)
        result = second.run(steady_requests(1))
        # Every iteration of the second simulator replays the first's trace.
        assert result.iteration_cache_misses == 0
        assert result.iteration_cache_hits == len(result.iterations)

    def test_private_cache_created_only_when_enabled(self):
        assert LLMServingSim(small_config()).iteration_cache is None
        assert LLMServingSim(small_config(enable_iteration_reuse=True)
                             ).iteration_cache is not None
