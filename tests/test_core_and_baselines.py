"""Integration tests for the end-to-end simulator, results, baselines, analysis and CLI."""

import pytest

from repro import (LLMServingSim, ParallelismStrategy, ServingSimConfig,
                   SimTimeCalibration, generate_trace)
from repro.analysis import (format_table, geometric_mean_error, mean_absolute_percentage_error,
                            relative_error, series_error)
from repro.baselines import (NeuPIMsConfig, NeuPIMsReference, VLLMReferenceConfig,
                             VLLMReferenceSystem, baseline_simulators)
from repro.cli import main as cli_main
from repro.core.simtime import ComponentTimes, SimTimeTracker
from repro.models import BatchComposition, Phase, SequenceSpec, get_model
from repro.workload import BurstArrivalGenerator


def small_config(**overrides):
    defaults = dict(model_name="gpt2", npu_num=2, npu_group=1, npu_mem_gb=4.0)
    defaults.update(overrides)
    return ServingSimConfig(**defaults)


def small_trace(count=6, seed=0):
    return generate_trace("alpaca", count, arrival="poisson", rate_per_second=5.0, seed=seed)


class TestServingSimConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServingSimConfig(npu_num=0)
        with pytest.raises(ValueError):
            ServingSimConfig(npu_num=4, npu_group=3)
        with pytest.raises(ValueError):
            ServingSimConfig(pim_type="hbm")
        with pytest.raises(ValueError):
            ServingSimConfig(sub_batch=True, pim_type="none")

    def test_string_coercion(self):
        config = ServingSimConfig(parallel="tensor", graph_granularity="block", npu_num=4)
        assert config.parallel is ParallelismStrategy.TENSOR
        assert config.graph_granularity.value == "block"

    def test_effective_groups(self):
        assert ServingSimConfig(npu_num=8, parallel="tensor").effective_groups == 1
        assert ServingSimConfig(npu_num=8, parallel="pipeline").effective_groups == 8
        assert ServingSimConfig(npu_num=8, npu_group=2, parallel="hybrid").effective_groups == 2


class TestLLMServingSimEndToEnd:
    def test_all_requests_finish(self):
        result = LLMServingSim(small_config()).run(small_trace())
        assert len(result.finished_requests) == 6
        assert all(r.is_finished for r in result.requests)
        assert result.makespan > 0
        assert result.generation_throughput > 0
        assert result.prompt_throughput > 0

    def test_iteration_records_consistent(self):
        result = LLMServingSim(small_config()).run(small_trace())
        for record in result.iterations:
            assert record.latency > 0
            assert record.end_time >= record.start_time
            assert record.num_requests >= 1
        # Simulated time advances monotonically.
        ends = [r.end_time for r in result.iterations]
        assert ends == sorted(ends)

    def test_generated_tokens_match_workload(self):
        trace = small_trace()
        expected = sum(r.output_tokens for r in trace)
        result = LLMServingSim(small_config()).run(trace)
        assert result.total_generated_tokens == expected

    def test_max_iterations_cap(self):
        result = LLMServingSim(small_config()).run(small_trace(), max_iterations=3)
        assert len(result.iterations) == 3

    def test_deterministic_across_runs(self):
        a = LLMServingSim(small_config()).run(small_trace(seed=5))
        b = LLMServingSim(small_config()).run(small_trace(seed=5))
        assert a.makespan == pytest.approx(b.makespan)
        assert len(a.iterations) == len(b.iterations)

    def test_reuse_does_not_change_serving_results(self):
        """Computation reuse is a simulation-speed optimization only."""
        with_reuse = LLMServingSim(small_config()).run(small_trace(seed=2))
        without = LLMServingSim(small_config(enable_block_reuse=False,
                                             enable_computation_reuse=False)).run(small_trace(seed=2))
        assert with_reuse.makespan == pytest.approx(without.makespan, rel=1e-9)

    def test_reuse_reduces_modeled_simulation_time(self):
        with_reuse = LLMServingSim(small_config()).run(small_trace(seed=2))
        without = LLMServingSim(small_config(enable_block_reuse=False,
                                             enable_computation_reuse=False)).run(small_trace(seed=2))
        assert with_reuse.modeled_simulation_time.engine < \
            without.modeled_simulation_time.engine

    def test_more_devices_not_slower(self):
        small = LLMServingSim(small_config(npu_num=1)).run(small_trace(seed=3))
        large = LLMServingSim(small_config(npu_num=4)).run(small_trace(seed=3))
        assert large.makespan <= small.makespan * 1.05

    def test_heterogeneous_pim_run(self):
        config = small_config(pim_type="local")
        result = LLMServingSim(config).run(small_trace(seed=4))
        assert len(result.finished_requests) == 6

    def test_pim_pool_run(self):
        config = small_config(pim_type="pool")
        result = LLMServingSim(config).run(small_trace(seed=4))
        assert len(result.finished_requests) == 6

    def test_throughput_series_and_tsv(self, tmp_path):
        result = LLMServingSim(small_config()).run(small_trace())
        series = result.throughput_series(bin_seconds=1.0)
        assert series
        assert sum(p.generation_throughput for p in series) > 0
        tput = result.write_throughput_tsv(tmp_path / "out-throughput.tsv", bin_seconds=1.0)
        simtime = result.write_simulation_time_tsv(tmp_path / "out-simulation-time.tsv")
        assert tput.exists() and simtime.exists()
        assert "prompt_throughput" in tput.read_text().splitlines()[0]

    def test_single_batch_entry_point(self):
        sim = LLMServingSim(small_config())
        batch = BatchComposition([SequenceSpec(0, 0, 64, Phase.INITIATION)])
        latency = sim.simulate_single_batch(batch)
        assert latency > 0
        assert sim.simtime.modeled.total > 0

    def test_plug_in_engine_registration(self):
        from repro.engine import GPUEngine
        sim = LLMServingSim(small_config())
        sim.engine_stack.register_engine(GPUEngine())
        assert len(sim.engine_stack.engines) == 2


class TestSimTimeTracker:
    def test_measure_context_manager(self):
        tracker = SimTimeTracker()
        with tracker.measure("engine"):
            pass
        assert tracker.measured.engine >= 0
        with pytest.raises(ValueError):
            with tracker.measure("gpu"):
                pass

    def test_component_times_add(self):
        a = ComponentTimes(scheduler=1, engine=2, graph_converter=3, system_sim=4)
        b = ComponentTimes(scheduler=1, engine=1, graph_converter=1, system_sim=1)
        a.add(b)
        assert a.total == 14
        assert a.as_dict()["engine"] == 3

    def test_calibration_is_configurable(self):
        calibration = SimTimeCalibration(scheduler_seconds_per_iteration=5.0)
        tracker = SimTimeTracker(calibration)
        from repro.engine.stack import EngineStackReport
        from repro.graph.converter import ConversionStats
        times = tracker.account_iteration(EngineStackReport(), ConversionStats(), num_requests=0)
        assert times.scheduler == pytest.approx(5.0)


class TestBaselines:
    def test_vllm_reference_serves_everything(self):
        ref = VLLMReferenceSystem(VLLMReferenceConfig(model_name="gpt2", num_gpus=1))
        result = ref.run(small_trace(seed=6))
        assert len(result.finished_requests) == 6
        assert result.generation_throughput > 0

    def test_vllm_reference_faster_with_more_gpus(self):
        one = VLLMReferenceSystem(VLLMReferenceConfig(model_name="gpt3-7b", num_gpus=1))
        four = VLLMReferenceSystem(VLLMReferenceConfig(model_name="gpt3-7b", num_gpus=4))
        batch = BatchComposition([SequenceSpec(0, 0, 512, Phase.INITIATION)])
        assert four.iteration_latency(batch) < one.iteration_latency(batch)

    def test_neupims_throughput_positive_and_scales(self):
        requests = BurstArrivalGenerator("alpaca", seed=1).generate(16).requests
        small = NeuPIMsReference(NeuPIMsConfig(model_name="gpt3-7b", tensor_parallel=2))
        large = NeuPIMsReference(NeuPIMsConfig(model_name="gpt3-7b", tensor_parallel=8))
        t_small = small.throughput(list(requests), max_batch_size=16)
        requests = BurstArrivalGenerator("alpaca", seed=1).generate(16).requests
        t_large = large.throughput(list(requests), max_batch_size=16)
        assert 0 < t_small < t_large

    def test_baseline_simulator_ordering(self):
        model = get_model("gpt3-7b")
        times = {b.name: b.iteration_time(model) for b in baseline_simulators()}
        assert times["mNPUsim"] > times["NeuPIMs"] > times["GeneSys"]

    def test_baseline_simulator_scales_with_model(self):
        sim = baseline_simulators()[0]
        assert sim.iteration_time(get_model("gpt3-30b")) > sim.iteration_time(get_model("gpt3-7b"))


class TestAnalysis:
    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(0, 0) == 0.0
        assert relative_error(5, 0) == 1.0

    def test_mape(self):
        assert mean_absolute_percentage_error([1, 2], [1, 4]) == pytest.approx(0.25)
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([1], [1, 2])

    def test_geometric_mean_error(self):
        assert geometric_mean_error([0.1, 0.1]) == pytest.approx(0.1)
        assert geometric_mean_error([]) == 0.0

    def test_series_error_alignment(self):
        a = [(1.0, 10.0), (2.0, 20.0), (3.0, 5.0)]
        b = [(1.0, 10.0), (2.0, 10.0)]
        assert series_error(a, b) == pytest.approx(0.5)

    def test_series_error_skips_zero_reference(self):
        a = [(1.0, 10.0), (2.0, 10.0)]
        b = [(1.0, 10.0), (2.0, 0.0)]
        assert series_error(a, b) == 0.0

    def test_format_table(self):
        text = format_table("T", ["a", "b"], [[1, 2.5], ["x", "y"]])
        assert "== T ==" in text
        assert "2.500" in text


class TestCLI:
    def test_cli_end_to_end(self, tmp_path, capsys):
        exit_code = cli_main([
            "--model-name", "gpt2", "--npu-num", "2", "--npu-mem", "4",
            "--dataset", "alpaca", "--num-requests", "4", "--rate", "5.0",
            "--output", str(tmp_path / "run"),
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "generation throughput" in captured
        assert (tmp_path / "run-throughput.tsv").exists()
        assert (tmp_path / "run-simulation-time.tsv").exists()

    def test_cli_replays_trace_file(self, tmp_path, capsys):
        from repro.workload import write_trace
        trace = small_trace(count=3)
        path = write_trace(trace, tmp_path / "trace.tsv")
        exit_code = cli_main(["--model-name", "gpt2", "--npu-num", "1", "--npu-mem", "4",
                              "--trace-file", str(path)])
        assert exit_code == 0
        assert "3/3 finished" in capsys.readouterr().out
