"""Generic style hygiene: the tree must be clean under the committed ruff config.

Ruff is a CI dependency, not a runtime one — the container this repo
develops in may not have it, so the check skips (rather than fails) when
the tool is missing.  CI installs ruff explicitly in the lint job, where
this test is the enforcement point.
"""

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

ruff = shutil.which("ruff")


@pytest.mark.skipif(ruff is None, reason="ruff is not installed (CI-only check)")
def test_ruff_reports_no_findings():
    result = subprocess.run(
        [ruff, "check", "src", "tests", "benchmarks"],
        cwd=REPO_ROOT, capture_output=True, text=True)
    assert result.returncode == 0, (
        "ruff findings:\n" + result.stdout + result.stderr)


def test_ruff_config_is_committed_and_scoped():
    """The config must exist and stay scoped away from REP-rule territory."""
    config = (REPO_ROOT / "pyproject.toml").read_text()
    assert "[tool.ruff]" in config
    # Scope guard: only the generic families; no determinism-adjacent
    # plugin families that would overlap repro lint's REP rules.
    assert '"F"' in config and '"E9"' in config
    for overlapping in ("DTZ",   # flake8-datetimez — REP001's territory
                        "NPY002",  # numpy legacy random — REP002's territory
                        "PT", "ASYNC"):
        assert f'"{overlapping}"' not in config
