"""Unit tests for the operator model (repro.models.layers)."""

import pytest
from hypothesis import given, strategies as st

from repro.models import DTYPE_BYTES, Operator, OpType, Phase
from repro.models.layers import gemm_flops, gemv_flops


def make_op(**overrides):
    defaults = dict(name="op", op_type=OpType.GEMM, flops=1000.0, input_bytes=100.0,
                    weight_bytes=200.0, output_bytes=50.0, phase=Phase.INITIATION,
                    m=4, k=8, n=16)
    defaults.update(overrides)
    return Operator(**defaults)


class TestOperator:
    def test_total_bytes_sums_components(self):
        op = make_op(input_bytes=10, weight_bytes=20, output_bytes=30)
        assert op.total_bytes == 60

    def test_arithmetic_intensity(self):
        op = make_op(flops=600.0, input_bytes=100, weight_bytes=100, output_bytes=100)
        assert op.arithmetic_intensity == pytest.approx(2.0)

    def test_arithmetic_intensity_zero_bytes(self):
        op = make_op(input_bytes=0, weight_bytes=0, output_bytes=0)
        assert op.arithmetic_intensity == 0.0

    def test_memory_bound_classes(self):
        assert make_op(op_type=OpType.GEMV).is_memory_bound_class
        assert make_op(op_type=OpType.SOFTMAX).is_memory_bound_class
        assert make_op(op_type=OpType.LAYERNORM).is_memory_bound_class
        assert not make_op(op_type=OpType.GEMM).is_memory_bound_class

    def test_signature_equal_for_identical_shapes(self):
        a = make_op(name="a", request_id=1)
        b = make_op(name="b", request_id=7)
        assert a.signature() == b.signature()

    def test_signature_differs_with_dimensions(self):
        assert make_op(m=4).signature() != make_op(m=8).signature()

    def test_signature_differs_with_phase(self):
        assert make_op(phase=Phase.INITIATION).signature() != \
            make_op(phase=Phase.GENERATION).signature()

    def test_scaled_divides_flops_and_bytes(self):
        op = make_op(flops=1000, input_bytes=100, weight_bytes=200, output_bytes=50)
        scaled = op.scaled(0.5)
        assert scaled.flops == 500
        assert scaled.input_bytes == 50
        assert scaled.weight_bytes == 100
        assert scaled.output_bytes == 25

    def test_scaled_with_separate_bytes_factor(self):
        op = make_op(flops=1000, input_bytes=100)
        scaled = op.scaled(0.25, bytes_factor=1.0)
        assert scaled.flops == 250
        assert scaled.input_bytes == 100

    def test_dtype_bytes_is_fp16(self):
        assert DTYPE_BYTES == 2


class TestFlopHelpers:
    def test_gemm_flops(self):
        assert gemm_flops(2, 3, 4) == 48

    def test_gemv_flops(self):
        assert gemv_flops(3, 4) == 24

    @given(m=st.integers(1, 512), k=st.integers(1, 512), n=st.integers(1, 512))
    def test_gemm_flops_positive_and_symmetric_in_mn(self, m, k, n):
        assert gemm_flops(m, k, n) > 0
        assert gemm_flops(m, k, n) == gemm_flops(n, k, m)

    @given(m=st.integers(1, 256), k=st.integers(1, 256), n=st.integers(1, 256))
    def test_gemv_is_gemm_with_unit_m(self, m, k, n):
        assert gemv_flops(k, n) == gemm_flops(1, k, n)
