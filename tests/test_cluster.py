"""Unit tests for the multi-replica cluster serving layer and SLO metrics."""

import pytest

from repro import (AutoscaleConfig, ClusterConfig, ClusterSimulator, ReplicaSpec,
                   ServingSimConfig, generate_trace)
from repro.analysis import (percentile, request_slo_metrics, slo_attainment, slo_summary,
                            time_between_tokens)
from repro.cli import main as cli_main
from repro.cluster import (ClusterResult, LeastKVUtilizationRouter,
                           LeastOutstandingRouter, ReplicaLifecycle, RequestRouter,
                           RoundRobinRouter, SLOTTFTRouter, WeightedCapacityRouter,
                           available_routers, build_router, register_router,
                           routable_indices)
from repro.workload import Request


def replica_config(**overrides):
    defaults = dict(model_name="gpt2", npu_num=1, npu_mem_gb=4.0)
    defaults.update(overrides)
    return ServingSimConfig(**defaults)


class FakeReplicaView:
    def __init__(self, outstanding, kv, latency=0.0, capability=0.0, routable=True):
        self.outstanding_requests = outstanding
        self.kv_utilization = kv
        self.mean_iteration_latency = latency
        self.device_throughput_tflops = capability
        self.is_routable = routable


class TestRouters:
    def test_round_robin_cycles(self):
        router = RoundRobinRouter()
        views = [FakeReplicaView(0, 0.0)] * 3
        request = Request(0, 8, 2)
        picks = [router.select(views, request) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_outstanding_picks_emptiest(self):
        router = LeastOutstandingRouter()
        views = [FakeReplicaView(5, 0.1), FakeReplicaView(2, 0.9), FakeReplicaView(2, 0.5)]
        assert router.select(views, Request(0, 8, 2)) == 1  # ties break to lowest index

    def test_least_kv_picks_most_free_memory(self):
        router = LeastKVUtilizationRouter()
        views = [FakeReplicaView(1, 0.8), FakeReplicaView(9, 0.2), FakeReplicaView(1, 0.5)]
        assert router.select(views, Request(0, 8, 2)) == 1

    def test_round_robin_no_reskew_when_active_set_changes(self):
        # Regression: a `cursor % len(replicas)` round-robin silently re-skews
        # (and can pick a non-routable replica) when the active-replica count
        # changes mid-run under autoscaling.
        router = RoundRobinRouter()
        views = [FakeReplicaView(0, 0.0) for _ in range(3)]
        request = Request(0, 8, 2)
        assert [router.select(views, request) for _ in range(3)] == [0, 1, 2]
        views[1].is_routable = False  # autoscaler drained replica 1
        picks = [router.select(views, request) for _ in range(4)]
        assert picks == [0, 2, 0, 2]  # fair over the active set, 1 never chosen
        views[1].is_routable = True   # replica 1 comes back
        assert [router.select(views, request) for _ in range(3)] == [0, 1, 2]

    def test_all_builtin_routers_skip_non_routable_replicas(self):
        request = Request(0, 8, 2)
        for name in available_routers():
            router = build_router(name)
            views = [FakeReplicaView(0, 0.0, routable=False),
                     FakeReplicaView(9, 0.9, latency=5.0, capability=0.1)]
            assert router.select(views, request) == 1, name

    def test_routable_indices_defaults_and_empty_error(self):
        views = [FakeReplicaView(0, 0.0), FakeReplicaView(0, 0.0, routable=False)]
        assert routable_indices(views) == [0]
        assert routable_indices([object(), object()]) == [0, 1]  # no lifecycle attr
        with pytest.raises(ValueError):
            routable_indices([FakeReplicaView(0, 0.0, routable=False)] * 2)

    def test_slo_ttft_prefers_lowest_predicted_ttft(self):
        router = SLOTTFTRouter()
        # Replica 0: short queue but slow iterations; replica 1: deeper queue,
        # fast iterations -> lower predicted TTFT wins.
        views = [FakeReplicaView(2, 0.0, latency=1.0),
                 FakeReplicaView(5, 0.0, latency=0.1)]
        assert router.select(views, Request(0, 8, 2)) == 1
        assert SLOTTFTRouter.predicted_ttft(views[0]) == pytest.approx(3.0)
        assert SLOTTFTRouter.predicted_ttft(views[1]) == pytest.approx(0.6)

    def test_slo_ttft_cold_replicas_ranked_by_capability(self):
        router = SLOTTFTRouter()
        views = [FakeReplicaView(0, 0.0, capability=1.0),
                 FakeReplicaView(0, 0.0, capability=4.0)]
        assert router.select(views, Request(0, 8, 2)) == 1

    def test_weighted_capacity_is_capability_proportional(self):
        router = WeightedCapacityRouter()
        views = [FakeReplicaView(0, 0.0, capability=1.0),
                 FakeReplicaView(0, 0.0, capability=3.0)]
        picks = [router.select(views, Request(i, 8, 2)) for i in range(40)]
        assert picks.count(1) == 30 and picks.count(0) == 10

    def test_weighted_capacity_defaults_to_uniform_without_capability(self):
        router = WeightedCapacityRouter()
        views = [FakeReplicaView(0, 0.0), FakeReplicaView(0, 0.0)]
        picks = [router.select(views, Request(i, 8, 2)) for i in range(10)]
        assert picks.count(0) == picks.count(1) == 5

    def test_build_router_dispatch(self):
        assert isinstance(build_router("round-robin"), RoundRobinRouter)
        assert isinstance(build_router("least-outstanding"), LeastOutstandingRouter)
        assert isinstance(build_router("least-kv"), LeastKVUtilizationRouter)
        assert isinstance(build_router("slo-ttft"), SLOTTFTRouter)
        assert isinstance(build_router("weighted-capacity"), WeightedCapacityRouter)
        with pytest.raises(ValueError):
            build_router("random")

    def test_register_custom_router(self):
        class AlwaysFirstRouter(RequestRouter):
            name = "always-first"

            def select(self, replicas, request):
                return 0

        register_router("always-first", AlwaysFirstRouter)
        try:
            assert "always-first" in available_routers()
            config = ClusterConfig(num_replicas=2, routing="always-first",
                                   replica=replica_config())
            trace = generate_trace("alpaca", 4, arrival="burst", seed=0)
            result = ClusterSimulator(config).run(trace)
            assert result.requests_per_replica() == [4, 0]
        finally:
            from repro.cluster.router import _ROUTER_FACTORIES
            _ROUTER_FACTORIES.pop("always-first", None)


class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_replicas=0)
        with pytest.raises(ValueError):
            ClusterConfig(routing="")

    def test_unknown_routing_rejected_at_build(self):
        with pytest.raises(ValueError):
            ClusterSimulator(ClusterConfig(routing="magic", replica=replica_config()))

    def test_single_template_expands_to_one_spec(self):
        config = ClusterConfig(num_replicas=3, replica=replica_config())
        specs = config.replica_specs()
        assert len(specs) == 1 and specs[0].count == 3
        expanded = config.expanded_replicas()
        assert len(expanded) == 3
        assert all(name == specs[0].name for name, _ in expanded)

    def test_heterogeneous_specs_drive_num_replicas(self):
        config = ClusterConfig(
            num_replicas=99,  # overridden by the explicit spec list
            replicas=[ReplicaSpec(replica_config(), count=2, name="small"),
                      ReplicaSpec(replica_config(npu_num=4), count=1, name="large")])
        assert config.num_replicas == 3
        assert [name for name, _ in config.expanded_replicas()] == ["small", "small", "large"]
        assert config.expanded_replicas()[2][1].npu_num == 4

    def test_replica_spec_default_name_from_hardware(self):
        assert ReplicaSpec(replica_config()).name == "gpt2-npu1"
        assert ReplicaSpec(replica_config(npu_num=2, pim_type="pool")).name == "gpt2-npu2-pim-pool"

    def test_replica_spec_validation(self):
        with pytest.raises(ValueError):
            ReplicaSpec(replica_config(), count=0)
        with pytest.raises(ValueError):
            ClusterConfig(replicas=[])

    def test_autoscale_bounds_validation(self):
        with pytest.raises(ValueError):
            AutoscaleConfig(min_replicas=0)
        with pytest.raises(ValueError):
            AutoscaleConfig(min_replicas=3, max_replicas=2)
        with pytest.raises(ValueError):
            AutoscaleConfig(target_rate_per_replica=0.0)
        with pytest.raises(ValueError):
            ClusterConfig(num_replicas=2, replica=replica_config(),
                          autoscale=AutoscaleConfig(min_replicas=3))
        with pytest.raises(ValueError):
            ClusterConfig(num_replicas=2, replica=replica_config(),
                          autoscale=AutoscaleConfig(min_replicas=1, max_replicas=4))

    def test_slo_target_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(replica=replica_config(), ttft_slo=0.0)
        with pytest.raises(ValueError):
            ClusterConfig(replica=replica_config(), e2e_slo=-1.0)


class TestClusterSimulator:
    def _run(self, routing, num_requests=12, num_replicas=2, arrival="poisson-burst",
             rate=6.0, seed=3):
        config = ClusterConfig(num_replicas=num_replicas, routing=routing,
                               replica=replica_config())
        trace = generate_trace("alpaca", num_requests, arrival=arrival,
                               rate_per_second=rate, seed=seed)
        return ClusterSimulator(config).run(trace)

    @pytest.mark.parametrize("routing", ["round-robin", "least-outstanding", "least-kv"])
    def test_all_requests_finish_under_every_policy(self, routing):
        result = self._run(routing)
        assert len(result.finished_requests) == 12
        assert result.num_replicas == 2
        assert sum(result.requests_per_replica()) == 12
        assert result.makespan > 0
        assert result.generation_throughput > 0

    def test_assignment_covers_every_request(self):
        result = self._run("least-outstanding")
        assert sorted(result.assignments) == sorted(r.request_id for r in result.requests)
        assert set(result.assignments.values()) <= {0, 1}

    def test_round_robin_balances_counts(self):
        result = self._run("round-robin", num_requests=10)
        assert result.requests_per_replica() == [5, 5]
        assert result.assignment_imbalance() == pytest.approx(1.0)

    def test_replica_results_are_independent(self):
        result = self._run("round-robin")
        for replica_result, count in zip(result.replica_results,
                                         result.requests_per_replica()):
            assert len(replica_result.requests) == count
            assert all(r.is_finished for r in replica_result.requests)

    def test_policies_differ_under_bursty_load(self):
        # Round-robin alternates blindly while least-outstanding reacts to
        # queue depth, so on a bursty trace the two must route at least some
        # requests differently (they'd coincide only on perfectly smooth load).
        rr = self._run("round-robin", num_requests=24, rate=12.0, seed=11)
        lo = self._run("least-outstanding", num_requests=24, rate=12.0, seed=11)
        assert rr.assignments != lo.assignments
        assert len(lo.finished_requests) == 24

    def test_slo_metrics_structure(self):
        result = self._run("least-kv")
        slos = result.slo_metrics()
        assert set(slos) == {"ttft", "tbt", "e2e"}
        for summary in slos.values():
            assert summary.count > 0
            assert summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum
        # E2E latency dominates TTFT by construction.
        assert slos["e2e"].p50 >= slos["ttft"].p50

    def test_summary_rows_render(self):
        result = self._run("round-robin", num_requests=6)
        rows = result.summary_rows()
        labels = [row[0] for row in rows]
        assert "TTFT p50/p95/p99 (s)" in labels
        assert "E2E latency p50/p95/p99 (s)" in labels

    def test_single_replica_matches_standalone_simulator(self):
        from repro import LLMServingSim
        trace = generate_trace("alpaca", 8, arrival="poisson", rate_per_second=2.0, seed=5)
        cluster = ClusterSimulator(ClusterConfig(num_replicas=1, routing="round-robin",
                                                 replica=replica_config()))
        cluster_result = cluster.run(trace)
        standalone = LLMServingSim(replica_config()).run(
            generate_trace("alpaca", 8, arrival="poisson", rate_per_second=2.0, seed=5))
        assert cluster_result.makespan == pytest.approx(standalone.makespan)
        assert cluster_result.total_generated_tokens == standalone.total_generated_tokens

    def test_max_iterations_cap(self):
        config = ClusterConfig(num_replicas=2, routing="round-robin",
                               replica=replica_config())
        trace = generate_trace("alpaca", 8, arrival="burst", seed=1)
        result = ClusterSimulator(config).run(trace, max_iterations_per_replica=2)
        assert all(len(res.iterations) <= 2 for res in result.replica_results)

    def test_empty_cluster_result_metrics(self):
        result = ClusterResult(routing="round-robin")
        assert result.makespan == 0.0
        assert result.generation_throughput == 0.0
        assert result.assignment_imbalance() == 1.0


class TestReplicaCapabilitySignals:
    def test_capability_scales_with_npu_num(self):
        sim = ClusterSimulator(ClusterConfig(
            replicas=[ReplicaSpec(replica_config(), count=1, name="small"),
                      ReplicaSpec(replica_config(npu_num=4), count=1, name="large")]))
        small, large = sim.replicas
        assert small.device_throughput_tflops > 0
        assert large.device_throughput_tflops > small.device_throughput_tflops
        assert large.estimated_iteration_latency < small.estimated_iteration_latency
        assert small.kv_budget_bytes > 0
        assert small.engine_kind == "npu"
        assert small.class_name == "small" and large.class_name == "large"

    def test_engine_kind_reports_pim(self):
        sim = ClusterSimulator(ClusterConfig(
            num_replicas=1, replica=replica_config(pim_type="local")))
        assert sim.replicas[0].engine_kind == "npu+pim"

    def test_throughput_estimate_built_once_per_replica_class(self, monkeypatch):
        import repro.cluster.simulator as cluster_simulator

        calls = []
        original = cluster_simulator.build_iteration_graph

        def counting(model, batch):
            calls.append(model.name)
            return original(model, batch)

        monkeypatch.setattr(cluster_simulator, "build_iteration_graph", counting)
        cluster_simulator._THROUGHPUT_ESTIMATES.clear()
        ClusterSimulator(ClusterConfig(num_replicas=4, replica=replica_config()))
        assert len(calls) == 1  # one roofline graph build for 4 identical replicas
        ClusterSimulator(ClusterConfig(
            replicas=[ReplicaSpec(replica_config(), count=2, name="small"),
                      ReplicaSpec(replica_config(npu_num=4), count=2, name="large")]))
        assert len(calls) == 2  # the small class reuses the memoized estimate

    def test_mean_iteration_latency_measured(self):
        sim = ClusterSimulator(ClusterConfig(num_replicas=1, replica=replica_config()))
        replica = sim.replicas[0]
        assert replica.mean_iteration_latency == 0.0
        sim.run(generate_trace("alpaca", 2, arrival="burst", seed=0))
        assert replica.mean_iteration_latency > 0.0


class TestHeterogeneousRouting:
    """A 2-class fleet where capability-aware routing must pay off."""

    @staticmethod
    def _fleet():
        small = ServingSimConfig(model_name="gpt3-7b", npu_num=1, max_batch=4,
                                 graph_granularity="block")
        large = ServingSimConfig(model_name="gpt3-7b", npu_num=4, max_batch=4,
                                 graph_granularity="block")
        return [ReplicaSpec(config=small, count=2, name="small"),
                ReplicaSpec(config=large, count=2, name="large")]

    @staticmethod
    def _trace():
        return generate_trace("alpaca", 32, arrival="poisson-burst",
                              rate_per_second=24.0, burst_size_mean=6.0, seed=23)

    def test_weighted_capacity_beats_round_robin_on_p95_ttft(self):
        results = {}
        for routing in ("round-robin", "weighted-capacity"):
            config = ClusterConfig(routing=routing, replicas=self._fleet())
            results[routing] = ClusterSimulator(config).run(self._trace())
        rr = results["round-robin"].slo_metrics()["ttft"].p95
        wc = results["weighted-capacity"].slo_metrics()["ttft"].p95
        assert wc < rr
        # The win comes from shifting load to the large replicas.
        split = results["weighted-capacity"].requests_per_replica()
        assert sum(split[2:]) > sum(split[:2])
        assert results["round-robin"].requests_per_replica() == [8, 8, 8, 8]

    def test_per_class_slo_views(self):
        config = ClusterConfig(routing="weighted-capacity", replicas=self._fleet(),
                               ttft_slo=5.0, e2e_slo=60.0)
        result = ClusterSimulator(config).run(self._trace())
        per_class = result.per_class_slo_metrics()
        assert set(per_class) == {"small", "large"}
        assert per_class["large"]["ttft"].count > per_class["small"]["ttft"].count
        attained = result.slo_attainment()
        assert set(attained) == {"small", "large", "cluster"}
        for attainment in attained.values():
            assert attainment.ttft_rate is not None and 0.0 <= attainment.ttft_rate <= 1.0
            assert attainment.e2e_rate is not None and 0.0 <= attainment.e2e_rate <= 1.0


def autoscaled_cluster(routing="round-robin", min_replicas=1, max_replicas=4,
                       window=2.0, target_rate=1.0, warmup=0.5, cooldown=0.5,
                       replicas=None):
    config = ClusterConfig(
        num_replicas=4, routing=routing, replica=replica_config(),
        replicas=replicas,
        autoscale=AutoscaleConfig(min_replicas=min_replicas, max_replicas=max_replicas,
                                  window_seconds=window,
                                  target_rate_per_replica=target_rate,
                                  warmup_seconds=warmup, cooldown_seconds=cooldown))
    return ClusterSimulator(config)


class TestAutoscaler:
    def test_starts_with_min_replicas_active(self):
        sim = autoscaled_cluster(min_replicas=2)
        states = [r.lifecycle for r in sim.replicas]
        assert states == [ReplicaLifecycle.ACTIVE, ReplicaLifecycle.ACTIVE,
                          ReplicaLifecycle.STOPPED, ReplicaLifecycle.STOPPED]

    def test_warming_replica_accepts_no_routes_until_warm(self):
        sim = autoscaled_cluster(min_replicas=1, warmup=2.0)
        replica = sim.replicas[1]
        replica.activate(now=10.0, warmup_seconds=2.0)
        assert replica.lifecycle is ReplicaLifecycle.WARMING
        assert not replica.is_routable
        replica.update_lifecycle(11.9)
        assert not replica.is_routable
        replica.update_lifecycle(12.0)
        assert replica.lifecycle is ReplicaLifecycle.ACTIVE
        assert replica.is_routable

    def test_deactivated_replica_drains_then_stops(self):
        sim = autoscaled_cluster(min_replicas=2)
        replica = sim.replicas[0]
        replica.submit(Request(0, 8, 2, arrival_time=0.0))
        replica.deactivate()
        assert replica.lifecycle is ReplicaLifecycle.DRAINING
        assert not replica.is_routable
        while replica.has_work:
            assert replica.step()
        replica.update_lifecycle(replica.clock)
        assert replica.lifecycle is ReplicaLifecycle.STOPPED

    def test_reactivating_draining_replica_skips_warmup(self):
        sim = autoscaled_cluster(min_replicas=2)
        replica = sim.replicas[0]
        replica.submit(Request(0, 8, 2, arrival_time=0.0))
        replica.deactivate()
        replica.activate(now=1.0, warmup_seconds=5.0)
        assert replica.lifecycle is ReplicaLifecycle.ACTIVE

    def test_scaling_timeline_follows_diurnal_load_up_and_down(self):
        sim = autoscaled_cluster(min_replicas=1, window=4.0, target_rate=1.0,
                                 warmup=0.5, cooldown=1.0)
        # A hand-written diurnal day: sparse trough, dense midday peak,
        # sparse evening tail.
        arrivals = ([1.0, 4.0, 7.0]                                  # ~0.3 req/s
                    + [10.0 + 0.25 * i for i in range(16)]           # ~4 req/s peak
                    + [25.0, 32.0, 39.0, 46.0])                      # back to trough
        requests = [Request(i, 8, 2, arrival_time=t) for i, t in enumerate(arrivals)]
        result = sim.run(requests)
        assert len(result.finished_requests) == len(requests)
        actions = [event.action for event in result.scaling_timeline]
        assert "scale-up" in actions and "scale-down" in actions
        assert result.peak_provisioned_replicas() >= 2
        # The fleet returns to the trough size by the end of the day.
        assert result.scaling_timeline[-1].action == "scale-down"
        assert result.scaling_timeline[-1].provisioned_after == 1
        series = result.provisioned_series()
        assert series[0] == (0.0, 1)
        counts = [count for _, count in series]
        assert max(counts) == result.peak_provisioned_replicas()

    def test_peak_provisioned_accounts_for_initial_count(self):
        from repro import ScalingEvent
        # A run that starts at 3 provisioned and only scales down: the peak
        # is the initial count, not the largest event value.
        result = ClusterResult(
            routing="round-robin",
            scaling_timeline=[ScalingEvent(5.0, "scale-down", 2, "default", 2),
                              ScalingEvent(9.0, "scale-down", 1, "default", 1)],
            initial_provisioned=3)
        assert result.peak_provisioned_replicas() == 3
        assert result.provisioned_series() == [(0.0, 3), (5.0, 2), (9.0, 1)]
        # An autoscaled run that never scaled: the peak is min_replicas, not
        # the parked fleet size.
        sim = autoscaled_cluster(min_replicas=1, window=100.0, target_rate=100.0)
        run = sim.run(generate_trace("alpaca", 4, arrival="poisson",
                                     rate_per_second=2.0, seed=1))
        assert run.peak_provisioned_replicas() == 1

    def test_router_never_routes_to_parked_replicas(self):
        sim = autoscaled_cluster(min_replicas=1, routing="round-robin",
                                 window=100.0, target_rate=100.0)  # never scales up
        trace = generate_trace("alpaca", 8, arrival="poisson", rate_per_second=2.0, seed=1)
        result = sim.run(trace)
        assert set(result.assignments.values()) == {0}
        assert result.scaling_timeline == []

    def test_draining_replica_stops_after_final_drain(self):
        # Regression: a replica scaled down while it still holds outstanding
        # requests enters DRAINING; once the arrival loop ends, only the
        # final drain phase finishes its work — without a lifecycle refresh
        # there, the run ends with the replica stuck in DRAINING and the
        # terminal state under-reported.
        config = ClusterConfig(
            num_replicas=2, routing="least-outstanding",
            replica=replica_config(),
            autoscale=AutoscaleConfig(min_replicas=1, max_replicas=2,
                                      window_seconds=1.0,
                                      target_rate_per_replica=1.0,
                                      warmup_seconds=0.0, cooldown_seconds=0.0))
        # An opening burst scales up to 2 replicas and the long outputs keep
        # both busy; a lone late arrival drops the window rate to 1 req/s,
        # scaling replica 1 down mid-flight.
        requests = [Request(i, 16, 64, arrival_time=0.05 * i) for i in range(4)]
        requests.append(Request(99, 16, 8, arrival_time=5.0))
        sim = ClusterSimulator(config)
        result = sim.run(requests)
        actions = [(event.action, event.replica_id) for event in result.scaling_timeline]
        assert ("scale-up", 1) in actions and ("scale-down", 1) in actions
        assert len(result.finished_requests) == len(requests)
        # The drained replica finished its outstanding work during the final
        # drain phase and must be recorded as STOPPED, not DRAINING.
        assert sim.replicas[1].lifecycle is ReplicaLifecycle.STOPPED
        assert all(r.lifecycle is not ReplicaLifecycle.DRAINING
                   for r in sim.replicas)
        # The timeline agrees with the terminal state: after the last
        # scale-down only replica 0 is provisioned.
        assert result.scaling_timeline[-1].action == "scale-down"
        assert result.scaling_timeline[-1].provisioned_after == 1

    def test_heterogeneous_slo_ttft_autoscaled_fleet(self):
        # The acceptance scenario: a 4-replica 2-class fleet under slo-ttft
        # routing with autoscaling bounds must produce a populated scaling
        # timeline and per-class SLO attainment.
        fleet = [ReplicaSpec(replica_config(max_batch=8), count=2, name="small"),
                 ReplicaSpec(replica_config(npu_num=4, max_batch=8), count=2, name="large")]
        config = ClusterConfig(
            routing="slo-ttft", replicas=fleet,
            autoscale=AutoscaleConfig(min_replicas=2, max_replicas=4,
                                      window_seconds=5.0, target_rate_per_replica=1.25,
                                      warmup_seconds=2.0, cooldown_seconds=3.0),
            ttft_slo=2.0, e2e_slo=30.0)
        trace = generate_trace("alpaca", 90, arrival="diurnal", rate_per_second=3.0,
                               amplitude=0.85, period_seconds=30.0, seed=42)
        result = ClusterSimulator(config).run(trace)
        assert len(result.finished_requests) == 90
        assert result.scaling_timeline, "diurnal load must trigger scaling"
        assert {event.replica_class for event in result.scaling_timeline} <= {"small", "large"}
        attained = result.slo_attainment()
        assert set(attained) == {"small", "large", "cluster"}
        assert attained["cluster"].total == 90
        assert attained["cluster"].ttft_rate is not None
        assert attained["cluster"].e2e_rate is not None
        rows = dict((row[0], row[1]) for row in result.summary_rows())
        assert "scaling events" in rows
        assert "SLO attainment [small]" in rows


class TestSLOAttainment:
    def test_counts_and_rates(self):
        done = Request(0, 8, 2, arrival_time=0.0)
        done.record_prompt_done(0.5)
        done.record_generated_token(1.0)
        slow = Request(1, 8, 2, arrival_time=0.0)
        slow.record_prompt_done(3.0)
        slow.record_generated_token(9.0)
        attained = slo_attainment([done, slow], ttft_target=1.0, e2e_target=5.0)
        assert attained.total == 2
        assert attained.ttft_met == 1 and attained.ttft_rate == pytest.approx(0.5)
        assert attained.e2e_met == 1 and attained.e2e_rate == pytest.approx(0.5)

    def test_unserved_requests_count_as_misses(self):
        waiting = Request(0, 8, 2, arrival_time=0.0)
        attained = slo_attainment([waiting], ttft_target=10.0, e2e_target=10.0)
        assert attained.ttft_rate == 0.0 and attained.e2e_rate == 0.0

    def test_untargeted_metrics_are_none(self):
        attained = slo_attainment([], ttft_target=1.0)
        assert attained.total == 0
        assert attained.ttft_rate == 1.0  # vacuously met
        assert attained.e2e_met is None and attained.e2e_rate is None

    def test_invalid_targets_raise(self):
        with pytest.raises(ValueError):
            slo_attainment([], ttft_target=0.0)
        with pytest.raises(ValueError):
            slo_attainment([], e2e_target=-1.0)


class TestSLOMetrics:
    def test_percentile_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile(values, 120)

    def test_slo_summary_statistics(self):
        summary = slo_summary([0.1] * 99 + [10.0])
        assert summary.count == 100
        assert summary.p50 == pytest.approx(0.1)
        assert summary.p99 < summary.maximum == 10.0

    def test_slo_summary_empty(self):
        summary = slo_summary([])
        assert summary.count == 0
        assert summary.p99 == 0.0

    def test_time_between_tokens(self):
        request = Request(0, 8, 5, arrival_time=0.0)
        request.record_prompt_done(1.0)
        for t in (1.5, 2.0, 2.5, 3.0):
            request.record_generated_token(t)
        assert time_between_tokens(request) == pytest.approx(0.5)

    def test_time_between_tokens_undefined_for_single_token(self):
        request = Request(0, 8, 1)
        request.record_prompt_done(1.0)
        assert time_between_tokens(request) is None

    def test_request_slo_metrics_excludes_unfinished(self):
        done = Request(0, 8, 2, arrival_time=0.0)
        done.record_prompt_done(1.0)
        done.record_generated_token(1.5)
        waiting = Request(1, 8, 2, arrival_time=0.0)
        slos = request_slo_metrics([done, waiting])
        assert slos["ttft"].count == 1
        assert slos["e2e"].count == 1
        assert slos["e2e"].p50 == pytest.approx(1.5)


class TestClusterCLI:
    def test_cluster_subcommand_end_to_end(self, capsys):
        exit_code = cli_main([
            "cluster", "--replicas", "2", "--routing", "least-kv",
            "--model-name", "gpt2", "--npu-num", "1", "--npu-mem", "4",
            "--dataset", "alpaca", "--num-requests", "6", "--rate", "4.0",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "least-kv" in captured
        assert "6/6" in captured
        assert "TTFT p50/p95/p99" in captured

    def test_flat_interface_still_works(self, capsys):
        exit_code = cli_main(["--model-name", "gpt2", "--npu-num", "1", "--npu-mem", "4",
                              "--dataset", "alpaca", "--num-requests", "2", "--rate", "5.0"])
        assert exit_code == 0
        assert "generation throughput" in capsys.readouterr().out

    def test_replica_spec_and_autoscale_flags(self, capsys):
        exit_code = cli_main([
            "cluster", "--routing", "slo-ttft",
            "--model-name", "gpt2", "--npu-mem", "4", "--dataset", "alpaca",
            "--replica-spec", "count=1,npu_num=1,name=small",
            "--replica-spec", "count=1,npu_num=4,name=large",
            "--autoscale", "1:2", "--autoscale-window", "2",
            "--autoscale-target-rate", "2", "--autoscale-warmup", "0.5",
            "--autoscale-cooldown", "0.5", "--ttft-slo", "2.0",
            "--num-requests", "8", "--rate", "8.0", "--arrival", "poisson-burst",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "1x small, 1x large" in captured
        assert "8/8" in captured
        assert "SLO attainment [cluster]" in captured

    def test_replica_spec_parsing(self):
        import argparse
        from repro.cli import parse_autoscale_bounds, parse_replica_spec
        base = replica_config()
        spec = parse_replica_spec("count=3,npu-num=4,name=big,scheduling=static", base)
        assert spec.count == 3 and spec.name == "big"
        assert spec.config.npu_num == 4 and spec.config.scheduling == "static"
        assert spec.config.model_name == base.model_name  # inherited
        assert base.npu_num == 1  # base untouched
        with pytest.raises(argparse.ArgumentTypeError):
            parse_replica_spec("bogus_field=1", base)
        with pytest.raises(argparse.ArgumentTypeError):
            parse_replica_spec("npu_num", base)
        with pytest.raises(argparse.ArgumentTypeError):
            parse_replica_spec("count=abc", base)
        with pytest.raises(argparse.ArgumentTypeError):
            parse_replica_spec("npu_num=four", base)
        with pytest.raises(argparse.ArgumentTypeError):
            parse_replica_spec("npu_num=0", base)  # rejected by config validation
        with pytest.raises(argparse.ArgumentTypeError):
            parse_autoscale_bounds("3")
        assert parse_autoscale_bounds("1:4") == (1, 4)

    def test_bad_replica_spec_is_clean_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["cluster", "--model-name", "gpt2", "--npu-mem", "4",
                      "--replica-spec", "bogus=1"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "bogus" in err and "Traceback" not in err
