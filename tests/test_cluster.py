"""Unit tests for the multi-replica cluster serving layer and SLO metrics."""

import pytest

from repro import ClusterConfig, ClusterSimulator, ServingSimConfig, generate_trace
from repro.analysis import percentile, request_slo_metrics, slo_summary, time_between_tokens
from repro.cli import main as cli_main
from repro.cluster import (ClusterResult, LeastKVUtilizationRouter, LeastOutstandingRouter,
                           RequestRouter, RoundRobinRouter, available_routers, build_router,
                           register_router)
from repro.workload import Request


def replica_config(**overrides):
    defaults = dict(model_name="gpt2", npu_num=1, npu_mem_gb=4.0)
    defaults.update(overrides)
    return ServingSimConfig(**defaults)


class FakeReplicaView:
    def __init__(self, outstanding, kv):
        self.outstanding_requests = outstanding
        self.kv_utilization = kv


class TestRouters:
    def test_round_robin_cycles(self):
        router = RoundRobinRouter()
        views = [FakeReplicaView(0, 0.0)] * 3
        request = Request(0, 8, 2)
        picks = [router.select(views, request) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_outstanding_picks_emptiest(self):
        router = LeastOutstandingRouter()
        views = [FakeReplicaView(5, 0.1), FakeReplicaView(2, 0.9), FakeReplicaView(2, 0.5)]
        assert router.select(views, Request(0, 8, 2)) == 1  # ties break to lowest index

    def test_least_kv_picks_most_free_memory(self):
        router = LeastKVUtilizationRouter()
        views = [FakeReplicaView(1, 0.8), FakeReplicaView(9, 0.2), FakeReplicaView(1, 0.5)]
        assert router.select(views, Request(0, 8, 2)) == 1

    def test_build_router_dispatch(self):
        assert isinstance(build_router("round-robin"), RoundRobinRouter)
        assert isinstance(build_router("least-outstanding"), LeastOutstandingRouter)
        assert isinstance(build_router("least-kv"), LeastKVUtilizationRouter)
        with pytest.raises(ValueError):
            build_router("random")

    def test_register_custom_router(self):
        class AlwaysFirstRouter(RequestRouter):
            name = "always-first"

            def select(self, replicas, request):
                return 0

        register_router("always-first", AlwaysFirstRouter)
        try:
            assert "always-first" in available_routers()
            config = ClusterConfig(num_replicas=2, routing="always-first",
                                   replica=replica_config())
            trace = generate_trace("alpaca", 4, arrival="burst", seed=0)
            result = ClusterSimulator(config).run(trace)
            assert result.requests_per_replica() == [4, 0]
        finally:
            from repro.cluster.router import _ROUTER_FACTORIES
            _ROUTER_FACTORIES.pop("always-first", None)


class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_replicas=0)
        with pytest.raises(ValueError):
            ClusterConfig(routing="")

    def test_unknown_routing_rejected_at_build(self):
        with pytest.raises(ValueError):
            ClusterSimulator(ClusterConfig(routing="magic", replica=replica_config()))


class TestClusterSimulator:
    def _run(self, routing, num_requests=12, num_replicas=2, arrival="poisson-burst",
             rate=6.0, seed=3):
        config = ClusterConfig(num_replicas=num_replicas, routing=routing,
                               replica=replica_config())
        trace = generate_trace("alpaca", num_requests, arrival=arrival,
                               rate_per_second=rate, seed=seed)
        return ClusterSimulator(config).run(trace)

    @pytest.mark.parametrize("routing", ["round-robin", "least-outstanding", "least-kv"])
    def test_all_requests_finish_under_every_policy(self, routing):
        result = self._run(routing)
        assert len(result.finished_requests) == 12
        assert result.num_replicas == 2
        assert sum(result.requests_per_replica()) == 12
        assert result.makespan > 0
        assert result.generation_throughput > 0

    def test_assignment_covers_every_request(self):
        result = self._run("least-outstanding")
        assert sorted(result.assignments) == sorted(r.request_id for r in result.requests)
        assert set(result.assignments.values()) <= {0, 1}

    def test_round_robin_balances_counts(self):
        result = self._run("round-robin", num_requests=10)
        assert result.requests_per_replica() == [5, 5]
        assert result.assignment_imbalance() == pytest.approx(1.0)

    def test_replica_results_are_independent(self):
        result = self._run("round-robin")
        for replica_result, count in zip(result.replica_results,
                                         result.requests_per_replica()):
            assert len(replica_result.requests) == count
            assert all(r.is_finished for r in replica_result.requests)

    def test_policies_differ_under_bursty_load(self):
        # Round-robin alternates blindly while least-outstanding reacts to
        # queue depth, so on a bursty trace the two must route at least some
        # requests differently (they'd coincide only on perfectly smooth load).
        rr = self._run("round-robin", num_requests=24, rate=12.0, seed=11)
        lo = self._run("least-outstanding", num_requests=24, rate=12.0, seed=11)
        assert rr.assignments != lo.assignments
        assert len(lo.finished_requests) == 24

    def test_slo_metrics_structure(self):
        result = self._run("least-kv")
        slos = result.slo_metrics()
        assert set(slos) == {"ttft", "tbt", "e2e"}
        for summary in slos.values():
            assert summary.count > 0
            assert summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum
        # E2E latency dominates TTFT by construction.
        assert slos["e2e"].p50 >= slos["ttft"].p50

    def test_summary_rows_render(self):
        result = self._run("round-robin", num_requests=6)
        rows = result.summary_rows()
        labels = [row[0] for row in rows]
        assert "TTFT p50/p95/p99 (s)" in labels
        assert "E2E latency p50/p95/p99 (s)" in labels

    def test_single_replica_matches_standalone_simulator(self):
        from repro import LLMServingSim
        trace = generate_trace("alpaca", 8, arrival="poisson", rate_per_second=2.0, seed=5)
        cluster = ClusterSimulator(ClusterConfig(num_replicas=1, routing="round-robin",
                                                 replica=replica_config()))
        cluster_result = cluster.run(trace)
        standalone = LLMServingSim(replica_config()).run(
            generate_trace("alpaca", 8, arrival="poisson", rate_per_second=2.0, seed=5))
        assert cluster_result.makespan == pytest.approx(standalone.makespan)
        assert cluster_result.total_generated_tokens == standalone.total_generated_tokens

    def test_max_iterations_cap(self):
        config = ClusterConfig(num_replicas=2, routing="round-robin",
                               replica=replica_config())
        trace = generate_trace("alpaca", 8, arrival="burst", seed=1)
        result = ClusterSimulator(config).run(trace, max_iterations_per_replica=2)
        assert all(len(res.iterations) <= 2 for res in result.replica_results)

    def test_empty_cluster_result_metrics(self):
        result = ClusterResult(routing="round-robin")
        assert result.makespan == 0.0
        assert result.generation_throughput == 0.0
        assert result.assignment_imbalance() == 1.0


class TestSLOMetrics:
    def test_percentile_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile(values, 120)

    def test_slo_summary_statistics(self):
        summary = slo_summary([0.1] * 99 + [10.0])
        assert summary.count == 100
        assert summary.p50 == pytest.approx(0.1)
        assert summary.p99 < summary.maximum == 10.0

    def test_slo_summary_empty(self):
        summary = slo_summary([])
        assert summary.count == 0
        assert summary.p99 == 0.0

    def test_time_between_tokens(self):
        request = Request(0, 8, 5, arrival_time=0.0)
        request.record_prompt_done(1.0)
        for t in (1.5, 2.0, 2.5, 3.0):
            request.record_generated_token(t)
        assert time_between_tokens(request) == pytest.approx(0.5)

    def test_time_between_tokens_undefined_for_single_token(self):
        request = Request(0, 8, 1)
        request.record_prompt_done(1.0)
        assert time_between_tokens(request) is None

    def test_request_slo_metrics_excludes_unfinished(self):
        done = Request(0, 8, 2, arrival_time=0.0)
        done.record_prompt_done(1.0)
        done.record_generated_token(1.5)
        waiting = Request(1, 8, 2, arrival_time=0.0)
        slos = request_slo_metrics([done, waiting])
        assert slos["ttft"].count == 1
        assert slos["e2e"].count == 1
        assert slos["e2e"].p50 == pytest.approx(1.5)


class TestClusterCLI:
    def test_cluster_subcommand_end_to_end(self, capsys):
        exit_code = cli_main([
            "cluster", "--replicas", "2", "--routing", "least-kv",
            "--model-name", "gpt2", "--npu-num", "1", "--npu-mem", "4",
            "--dataset", "alpaca", "--num-requests", "6", "--rate", "4.0",
        ])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "least-kv" in captured
        assert "6/6" in captured
        assert "TTFT p50/p95/p99" in captured

    def test_flat_interface_still_works(self, capsys):
        exit_code = cli_main(["--model-name", "gpt2", "--npu-num", "1", "--npu-mem", "4",
                              "--dataset", "alpaca", "--num-requests", "2", "--rate", "5.0"])
        assert exit_code == 0
        assert "generation throughput" in capsys.readouterr().out
