"""Unit tests for execution graphs, parallelism plans and the graph converter."""

import pytest

from repro.engine import ExecutionEngineStack, HeterogeneousMapper, NPUEngine, PIMEngine
from repro.graph import (CollectiveSizing, ExecutionGraph, GraphConverter, GraphGranularity,
                         GraphNodeType, ParallelismPlan, ParallelismStrategy, make_plan)
from repro.models import BatchComposition, Phase, SequenceSpec, build_iteration_graph, get_model
from repro.scheduler.kv_cache import KVMemoryEvent, KVMemoryEventType
from repro.system import DeviceType, PIMMode, build_topology

MODEL = get_model("gpt2")


def block_trace_for(batch, pim=False):
    """Run the engine stack once and return the per-sub-batch traces."""
    engines = {DeviceType.NPU: NPUEngine()}
    mapper = None
    if pim:
        engines[DeviceType.PIM] = PIMEngine()
        mapper = HeterogeneousMapper()
    stack = ExecutionEngineStack(engines=engines, mapper=mapper)
    graph = build_iteration_graph(MODEL, batch)
    result = stack.simulate_iteration(graph)
    return result, graph


class TestExecutionGraph:
    def test_dependency_validation(self):
        graph = ExecutionGraph()
        node = graph.add_compute("a", device=1, duration=1.0, deps=[42])
        with pytest.raises(ValueError, match="missing node"):
            graph.validate()

    def test_cycle_detection(self):
        graph = ExecutionGraph()
        a = graph.add_compute("a", device=1, duration=1.0)
        b = graph.add_compute("b", device=1, duration=1.0, deps=[a.node_id])
        a.deps.add(b.node_id)
        with pytest.raises(ValueError, match="cycle"):
            graph.topological_order()

    def test_topological_order_respects_deps(self):
        graph = ExecutionGraph()
        a = graph.add_compute("a", device=1, duration=1.0)
        b = graph.add_compute("b", device=2, duration=1.0, deps=[a.node_id])
        c = graph.add_compute("c", device=1, duration=1.0, deps=[b.node_id])
        order = [n.node_id for n in graph.topological_order()]
        assert order.index(a.node_id) < order.index(b.node_id) < order.index(c.node_id)

    def test_devices_include_peers_and_groups(self):
        graph = ExecutionGraph()
        graph.add_p2p("p", src=1, dst=2, comm_bytes=1.0)
        graph.add_collective("ar", devices=[3, 4], comm_bytes=1.0)
        assert graph.devices() == {1, 2, 3, 4}

    def test_memory_direction_validation(self):
        graph = ExecutionGraph()
        with pytest.raises(ValueError):
            graph.add_memory("bad", device=1, comm_bytes=1.0, direction="sideways")

    def test_critical_path(self):
        graph = ExecutionGraph()
        a = graph.add_compute("a", device=1, duration=1.0)
        graph.add_compute("b", device=2, duration=5.0)
        graph.add_compute("c", device=1, duration=1.0, deps=[a.node_id])
        assert graph.critical_path_compute_time() == pytest.approx(5.0)
        assert graph.total_compute_time == pytest.approx(7.0)


class TestParallelismPlan:
    def test_make_plan_tensor(self):
        topology = build_topology(8, 1)
        plan = make_plan(ParallelismStrategy.TENSOR, topology, num_blocks=12)
        assert plan.tensor_parallel == 8
        assert plan.pipeline_parallel == 1

    def test_make_plan_pipeline(self):
        topology = build_topology(4, 4)
        plan = make_plan(ParallelismStrategy.PIPELINE, topology, num_blocks=12)
        assert plan.tensor_parallel == 1
        assert plan.pipeline_parallel == 4

    def test_make_plan_hybrid_uses_topology_groups(self):
        topology = build_topology(8, 2)
        plan = make_plan(ParallelismStrategy.HYBRID, topology, num_blocks=12)
        assert plan.tensor_parallel == 4
        assert plan.pipeline_parallel == 2

    def test_tensor_plan_rejects_multi_group_topology(self):
        with pytest.raises(ValueError):
            make_plan(ParallelismStrategy.TENSOR, build_topology(8, 2), 12)

    def test_pipeline_plan_rejects_wide_groups(self):
        with pytest.raises(ValueError):
            make_plan(ParallelismStrategy.PIPELINE, build_topology(8, 2), 12)

    def test_block_assignment_covers_all_blocks(self):
        plan = ParallelismPlan(ParallelismStrategy.HYBRID, tensor_parallel=2,
                               pipeline_parallel=3, num_blocks=10)
        covered = []
        for stage in range(3):
            start, end = plan.blocks_for_stage(stage)
            covered.extend(range(start, end))
        assert covered == list(range(10))
        assert sum(plan.blocks_per_stage()) == 10

    def test_stage_of_block_consistent(self):
        plan = ParallelismPlan(ParallelismStrategy.HYBRID, 2, 4, num_blocks=12)
        for block in range(12):
            stage = plan.stage_of_block(block)
            start, end = plan.blocks_for_stage(stage)
            assert start <= block < end

    def test_more_stages_than_blocks_allowed(self):
        plan = ParallelismPlan(ParallelismStrategy.PIPELINE, 1, 16, num_blocks=12)
        assert sum(plan.blocks_per_stage()) == 12
        assert plan.blocks_per_stage().count(0) == 4


class TestCollectiveSizing:
    def test_payloads(self):
        sizing = CollectiveSizing(MODEL)
        assert sizing.allreduce_bytes(10) == 10 * MODEL.hidden_size * MODEL.dtype_bytes
        assert sizing.allreduces_per_block(1) == 0
        assert sizing.allreduces_per_block(4) == 2
        assert sizing.iteration_allreduce_bytes(10, 4, 12) == \
            2 * 12 * sizing.allreduce_bytes(10)


class TestGraphConverter:
    def _convert(self, batch, devices=4, groups=1, granularity=GraphGranularity.OPERATOR,
                 pim_mode=PIMMode.NONE, memory_events=()):
        topology = build_topology(devices, groups, pim_mode=pim_mode)
        strategy = ParallelismStrategy.HYBRID
        plan = make_plan(strategy, topology, MODEL.num_layers)
        converter = GraphConverter(topology, plan, granularity)
        stack_result, graph = block_trace_for(batch, pim=pim_mode is not PIMMode.NONE)
        exec_graph = converter.convert(
            model=MODEL,
            sub_batch_block_traces=stack_result.sub_batch_traces,
            embedding_trace=list(stack_result.embedding_and_head_trace)[:1],
            head_trace=list(stack_result.embedding_and_head_trace)[1:],
            memory_events=memory_events,
            total_new_tokens=batch.total_new_tokens)
        return exec_graph, converter

    def _batch(self, n_gen=4, ctx=64):
        return BatchComposition([SequenceSpec(i, ctx, 1, Phase.GENERATION) for i in range(n_gen)])

    def test_graph_is_valid_dag(self):
        exec_graph, _ = self._convert(self._batch())
        exec_graph.validate()
        assert len(exec_graph) > 0

    def test_tensor_parallel_inserts_two_allreduces_per_block(self):
        exec_graph, converter = self._convert(self._batch(), devices=4, groups=1)
        collectives = [n for n in exec_graph if n.node_type is GraphNodeType.COLLECTIVE]
        assert len(collectives) == 2 * MODEL.num_layers
        assert converter.stats.collective_participants == 2 * MODEL.num_layers * 4

    def test_single_device_has_no_collectives(self):
        exec_graph, _ = self._convert(self._batch(), devices=1, groups=1)
        assert all(n.node_type is not GraphNodeType.COLLECTIVE for n in exec_graph)

    def test_pipeline_parallel_inserts_stage_transfers(self):
        exec_graph, _ = self._convert(self._batch(), devices=4, groups=4)
        p2p = [n for n in exec_graph if n.node_type is GraphNodeType.P2P]
        # 3 stage hand-offs per sub-batch (1 sub-batch here).
        assert len(p2p) == 3

    def test_selective_batching_spreads_attention_across_devices(self):
        exec_graph, _ = self._convert(self._batch(n_gen=8), devices=4, groups=1)
        attention_devices = {n.device for n in exec_graph
                             if n.node_type is GraphNodeType.COMPUTE and ".score" in n.name}
        assert len(attention_devices) == 4

    def test_memory_events_become_memory_nodes(self):
        events = [KVMemoryEvent(KVMemoryEventType.EVICT, request_id=1, num_bytes=1e6),
                  KVMemoryEvent(KVMemoryEventType.RELOAD, request_id=2, num_bytes=2e6)]
        exec_graph, converter = self._convert(self._batch(), memory_events=events)
        memory_nodes = [n for n in exec_graph if n.node_type is GraphNodeType.MEMORY]
        assert len(memory_nodes) == 2
        assert converter.stats.memory_nodes == 2
        directions = {n.metadata["direction"] for n in memory_nodes}
        assert directions == {"store", "load"}

    def test_local_pim_places_attention_on_pim_devices(self):
        exec_graph, _ = self._convert(self._batch(), devices=2, groups=1, pim_mode=PIMMode.LOCAL)
        topology_pim_devices = {n.device for n in exec_graph
                                if n.node_type is GraphNodeType.COMPUTE and ".score" in n.name}
        # NPU devices are 1..2, their PIM partners have higher ids.
        assert all(d > 2 for d in topology_pim_devices)

    def test_pool_pim_inserts_pool_transfers(self):
        exec_graph, _ = self._convert(self._batch(), devices=2, groups=1, pim_mode=PIMMode.POOL)
        pool_p2p = [n for n in exec_graph if n.node_type is GraphNodeType.P2P
                    and n.metadata.get("pool_transfer")]
        assert pool_p2p, "expected NPU<->PIM pool transfer operators"

    def test_block_granularity_produces_smaller_graph(self):
        fine, _ = self._convert(self._batch(), granularity=GraphGranularity.OPERATOR)
        coarse, _ = self._convert(self._batch(), granularity=GraphGranularity.BLOCK)
        assert len(coarse) < len(fine)
        coarse.validate()

    def test_mismatched_plan_rejected(self):
        topology = build_topology(4, 2)
        plan = ParallelismPlan(ParallelismStrategy.HYBRID, tensor_parallel=4,
                               pipeline_parallel=1, num_blocks=MODEL.num_layers)
        with pytest.raises(ValueError):
            GraphConverter(topology, plan)

    def test_stats_total_nodes_matches_graph(self):
        exec_graph, converter = self._convert(self._batch())
        assert converter.stats.total_nodes == len(exec_graph)
