"""Unit tests for the execution engines, compiler model, cache and mapping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import (CompilerModel, GPUEngine, GreedyOperatorScheduler, HeterogeneousMapper,
                          HomogeneousMapper, NPUConfig, NPUEngine, PIMEngine, SimulationCache,
                          Trace, TraceEntry, build_mapper)
from repro.models import BatchComposition, Operator, OpType, Phase, SequenceSpec, \
    build_iteration_graph, get_model
from repro.system import DeviceType, PIMMode


def gemm_op(m=64, k=4096, n=4096, phase=Phase.INITIATION, attention=False, op_type=OpType.GEMM):
    return Operator(name="gemm", op_type=op_type, flops=2.0 * m * k * n,
                    input_bytes=m * k * 2.0, weight_bytes=k * n * 2.0, output_bytes=m * n * 2.0,
                    phase=phase, m=m, k=k, n=n, is_attention=attention)


class TestNPUEngine:
    def test_estimate_positive(self):
        estimate = NPUEngine().estimate(gemm_op())
        assert estimate.latency > 0
        assert estimate.simulated_cycles > 0

    def test_latency_is_max_of_compute_and_memory_plus_overhead(self):
        engine = NPUEngine()
        estimate = engine.estimate(gemm_op())
        assert estimate.latency == pytest.approx(
            max(estimate.compute_time, estimate.memory_time) + engine.config.launch_overhead_s)

    def test_bigger_gemm_takes_longer(self):
        engine = NPUEngine()
        small = engine.estimate(gemm_op(m=32))
        large = engine.estimate(gemm_op(m=2048))
        assert large.latency > small.latency

    def test_decode_gemm_memory_bound(self):
        """Small-M GEMMs (decode) are dominated by streaming the weights."""
        estimate = NPUEngine().estimate(gemm_op(m=8, k=4096, n=16384))
        assert estimate.is_memory_bound

    def test_prefill_gemm_compute_bound(self):
        estimate = NPUEngine().estimate(gemm_op(m=4096, k=4096, n=16384))
        assert not estimate.is_memory_bound

    def test_peak_flops_matches_array(self):
        config = NPUConfig(systolic_rows=64, systolic_cols=64, frequency_hz=2e9)
        assert config.peak_flops == 2 * 64 * 64 * 2e9

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            NPUConfig(systolic_rows=0)
        with pytest.raises(ValueError):
            NPUConfig(memory_bandwidth_gbs=-1)

    def test_vector_op_uses_vector_unit(self):
        op = Operator(name="ln", op_type=OpType.LAYERNORM, flops=1e6, input_bytes=1e5,
                      weight_bytes=0, output_bytes=1e5, phase=Phase.GENERATION, m=16, k=1, n=4096)
        assert NPUEngine().estimate(op).latency > 0

    @given(m=st.integers(1, 4096), k=st.integers(1, 8192), n=st.integers(1, 8192))
    @settings(max_examples=30, deadline=None)
    def test_compute_time_never_below_ideal(self, m, k, n):
        """The tiling model can never beat the array's peak throughput."""
        engine = NPUEngine()
        estimate = engine.estimate(gemm_op(m=m, k=k, n=n))
        ideal = (2.0 * m * k * n) / engine.config.peak_flops
        assert estimate.compute_time >= ideal * 0.99


class TestPIMEngine:
    def test_supports_memory_bound_only_classes(self):
        engine = PIMEngine()
        assert engine.supports(gemm_op(op_type=OpType.GEMV))
        assert engine.supports(gemm_op(op_type=OpType.SOFTMAX))
        assert not engine.supports(Operator(name="e", op_type=OpType.EMBEDDING, flops=1,
                                            input_bytes=1, weight_bytes=1, output_bytes=1,
                                            phase=Phase.GENERATION))

    def test_gemv_faster_than_npu_external_bandwidth(self):
        """PIM's internal bandwidth beats the NPU's external bandwidth on GEMV."""
        op = gemm_op(m=1, k=4096, n=2048, op_type=OpType.GEMV, phase=Phase.GENERATION)
        pim = PIMEngine().estimate(op)
        npu = NPUEngine().estimate(op)
        assert pim.memory_time < npu.memory_time

    def test_estimate_fields(self):
        estimate = PIMEngine().estimate(gemm_op(op_type=OpType.GEMV, m=1))
        assert estimate.latency > 0
        assert estimate.memory_time > 0


class TestGPUEngine:
    def test_attention_gets_bandwidth_boost(self):
        op_regular = gemm_op(m=1, k=4096, n=512, op_type=OpType.GEMV, phase=Phase.GENERATION)
        op_attention = gemm_op(m=1, k=4096, n=512, op_type=OpType.GEMV,
                               phase=Phase.GENERATION, attention=True)
        engine = GPUEngine()
        assert engine.estimate(op_attention).memory_time < engine.estimate(op_regular).memory_time

    def test_device_type(self):
        assert GPUEngine().device_type is DeviceType.GPU

    def test_npu_and_gpu_comparable_on_prefill(self):
        """The Table-I NPU is configured to track the RTX 3090 (Section VI-A)."""
        op = gemm_op(m=2048, k=4096, n=4096)
        npu = NPUEngine().estimate(op).latency
        gpu = GPUEngine().estimate(op).latency
        assert 0.4 < npu / gpu < 2.5


class TestCompilerModel:
    @pytest.fixture
    def graph(self):
        model = get_model("gpt2")
        batch = BatchComposition([SequenceSpec(0, 0, 64, Phase.INITIATION)])
        return build_iteration_graph(model, batch)

    def test_block_reuse_compiles_single_block(self, graph):
        compiler = CompilerModel(enable_block_reuse=True, enable_cross_iteration_cache=False)
        report = compiler.compile_iteration(graph)
        assert report.compiled_operators == len(graph.block_operators) + 2
        assert report.replicated_operators == len(graph.block_operators) * (graph.num_blocks - 1)

    def test_no_reuse_compiles_every_block(self, graph):
        compiler = CompilerModel(enable_block_reuse=False, enable_cross_iteration_cache=False)
        report = compiler.compile_iteration(graph)
        assert report.compiled_operators == len(graph.block_operators) * graph.num_blocks + 2
        assert report.replicated_operators == 0

    def test_cross_iteration_cache_skips_second_compile(self, graph):
        compiler = CompilerModel(enable_block_reuse=True, enable_cross_iteration_cache=True)
        first = compiler.compile_iteration(graph)
        second = compiler.compile_iteration(graph)
        assert first.compiled_operators > 0
        assert second.compiled_operators == 0
        assert second.cached_operators > 0

    def test_reset_clears_cache(self, graph):
        compiler = CompilerModel()
        compiler.compile_iteration(graph)
        compiler.reset()
        assert compiler.compile_iteration(graph).compiled_operators > 0

    def test_modeled_time_proportional(self, graph):
        compiler = CompilerModel(seconds_per_operator=1.0, enable_cross_iteration_cache=False)
        report = compiler.compile_iteration(graph)
        assert report.modeled_time_s == report.compiled_operators


class TestSimulationCache:
    def test_hit_after_store(self):
        cache = SimulationCache()
        op = gemm_op()
        estimate = NPUEngine().estimate(op)
        assert cache.lookup(DeviceType.NPU, op) is None
        cache.store(DeviceType.NPU, op, estimate)
        assert cache.lookup(DeviceType.NPU, op) == estimate
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_disabled_cache_never_hits(self):
        cache = SimulationCache(enabled=False)
        op = gemm_op()
        cache.store(DeviceType.NPU, op, NPUEngine().estimate(op))
        assert cache.lookup(DeviceType.NPU, op) is None
        assert len(cache) == 0

    def test_different_device_is_a_miss(self):
        cache = SimulationCache()
        op = gemm_op(op_type=OpType.GEMV, m=1)
        cache.store(DeviceType.NPU, op, NPUEngine().estimate(op))
        assert cache.lookup(DeviceType.PIM, op) is None

    def test_attention_and_non_attention_stats_separate(self):
        cache = SimulationCache()
        cache.lookup(DeviceType.NPU, gemm_op(attention=True))
        cache.lookup(DeviceType.NPU, gemm_op(attention=False))
        assert cache.stats.attention_misses == 1
        assert cache.stats.non_attention_misses == 1
        assert cache.stats.hit_rate == 0.0

    def test_eviction_respects_max_entries(self):
        cache = SimulationCache(max_entries=2)
        ops = [gemm_op(m=m) for m in (1, 2, 3)]
        estimate = NPUEngine().estimate(ops[0])
        for op in ops:
            cache.store(DeviceType.NPU, op, estimate)
        assert len(cache) == 2
        assert cache.lookup(DeviceType.NPU, ops[0]) is None

    def test_clear(self):
        cache = SimulationCache()
        op = gemm_op()
        cache.store(DeviceType.NPU, op, NPUEngine().estimate(op))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0


class TestMapping:
    def test_homogeneous_maps_everything_to_primary(self):
        mapper = HomogeneousMapper(DeviceType.NPU)
        assert mapper.map_operator(gemm_op(attention=True, phase=Phase.GENERATION)) is DeviceType.NPU

    def test_heterogeneous_maps_decode_attention_to_pim(self):
        mapper = HeterogeneousMapper()
        decode_attention = gemm_op(op_type=OpType.GEMV, attention=True, phase=Phase.GENERATION)
        prefill_attention = gemm_op(attention=True, phase=Phase.INITIATION)
        ffn = gemm_op(attention=False)
        assert mapper.map_operator(decode_attention) is DeviceType.PIM
        assert mapper.map_operator(prefill_attention) is DeviceType.NPU
        assert mapper.map_operator(ffn) is DeviceType.NPU

    def test_layernorm_offload_option(self):
        ln = Operator(name="ln", op_type=OpType.LAYERNORM, flops=1, input_bytes=1,
                      weight_bytes=0, output_bytes=1, phase=Phase.GENERATION)
        assert HeterogeneousMapper(map_layernorm_to_pim=True).map_operator(ln) is DeviceType.PIM
        assert HeterogeneousMapper().map_operator(ln) is DeviceType.NPU

    def test_build_mapper_by_pim_mode(self):
        assert isinstance(build_mapper(PIMMode.NONE), HomogeneousMapper)
        assert isinstance(build_mapper(PIMMode.LOCAL), HeterogeneousMapper)
        assert isinstance(build_mapper(PIMMode.POOL), HeterogeneousMapper)

    def test_split_by_engine(self):
        mapper = HeterogeneousMapper()
        ops = [gemm_op(op_type=OpType.GEMV, attention=True, phase=Phase.GENERATION), gemm_op()]
        plan = mapper.split_by_engine(ops)
        assert len(plan[DeviceType.PIM]) == 1
        assert len(plan[DeviceType.NPU]) == 1


class TestOperatorScheduler:
    def _entry(self, latency, engine=DeviceType.NPU, sub_batch=0):
        return TraceEntry(operator=gemm_op(), engine=engine, latency=latency, sub_batch=sub_batch)

    def test_empty_schedule(self):
        schedule = GreedyOperatorScheduler().schedule([])
        assert schedule.makespan == 0.0
        assert schedule.trace.entries == []

    def test_serial_within_sub_batch(self):
        schedule = GreedyOperatorScheduler().schedule([[self._entry(1.0), self._entry(2.0)]])
        assert schedule.makespan == pytest.approx(3.0)

    def test_overlap_across_sub_batches_on_different_engines(self):
        sb0 = [self._entry(2.0, DeviceType.NPU, 0)]
        sb1 = [self._entry(2.0, DeviceType.PIM, 1)]
        schedule = GreedyOperatorScheduler().schedule([sb0, sb1])
        assert schedule.makespan == pytest.approx(2.0)
        assert schedule.overlap_efficiency() == pytest.approx(2.0)

    def test_same_engine_serializes(self):
        sb0 = [self._entry(2.0, DeviceType.NPU, 0)]
        sb1 = [self._entry(2.0, DeviceType.NPU, 1)]
        schedule = GreedyOperatorScheduler().schedule([sb0, sb1])
        assert schedule.makespan == pytest.approx(4.0)

    def test_all_entries_scheduled_once(self):
        sub_batches = [[self._entry(0.5) for _ in range(3)], [self._entry(0.25) for _ in range(2)]]
        schedule = GreedyOperatorScheduler().schedule(sub_batches)
        assert len(schedule.scheduled) == 5

    @given(latencies=st.lists(st.floats(0.001, 10.0), min_size=1, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_makespan_bounds(self, latencies):
        """Makespan is at least the longest op and at most the serial sum."""
        entries = [[self._entry(l, sub_batch=i) for i, l in enumerate(latencies)]]
        schedule = GreedyOperatorScheduler().schedule(entries)
        assert schedule.makespan <= sum(latencies) + 1e-9
        assert schedule.makespan >= max(latencies) - 1e-9


class TestTrace:
    def test_aggregations(self):
        trace = Trace()
        trace.append(TraceEntry(operator=gemm_op(), engine=DeviceType.NPU, latency=1.0))
        trace.append(TraceEntry(operator=gemm_op(), engine=DeviceType.PIM, latency=2.0, cached=True))
        assert trace.total_latency == 3.0
        assert trace.cache_hits == 1
        assert trace.cache_misses == 1
        assert trace.latency_by_engine()[DeviceType.PIM] == 2.0
        assert len(trace.by_engine()) == 2

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            TraceEntry(operator=gemm_op(), engine=DeviceType.NPU, latency=-1.0)
